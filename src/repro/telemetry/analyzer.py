"""Offline trace analysis — the engine behind ``repro trace <file>``.

Loads a trace exported by :class:`~repro.telemetry.tracing.SessionTrace`
(or a ``repro compare`` bundle of several) and answers the questions an
operator actually asks of a finished run:

* **Where did the time go?** Per-phase latency breakdown aggregated over
  every operation span (count, total, mean, p95, max, share of the summed
  trial time).
* **Which trials hurt?** The slowest trials with their outcome, retries,
  and dominant phase.
* **How did trials end?** Outcome × count table with example errors, plus
  the structured event log rolled up by kind/severity.

Everything here works on plain dicts (the exported JSON), so the analyzer
never needs the process that produced the trace.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

__all__ = [
    "load_trace",
    "trace_runs",
    "phase_stats",
    "slowest_trials",
    "outcome_table",
    "event_summary",
    "format_report",
]


def load_trace(path: str) -> dict[str, Any]:
    """Load a trace JSON file (single trace or a ``compare`` bundle)."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def trace_runs(data: Mapping[str, Any]) -> list[tuple[str, Mapping[str, Any]]]:
    """Normalise to ``[(label, trace_dict)]`` — handles compare bundles."""
    if "runs" in data and "spans" not in data:
        return [
            (f"{run.get('optimizer', run.get('label', 'run'))}/seed{run.get('seed', '?')}", run["trace"])
            for run in data["runs"]
        ]
    return [(str(data.get("name", "trace")), data)]


def _all_ops(trace: Mapping[str, Any]) -> list[dict[str, Any]]:
    ops = [dict(op) for op in trace.get("ops", ())]
    for span in trace.get("spans", ()):
        ops.extend(dict(op) for op in span.get("children", ()))
    return ops


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[idx]


def phase_stats(trace: Mapping[str, Any]) -> list[dict[str, Any]]:
    """Aggregate operation spans by name; sorted by total time, descending."""
    groups: dict[str, list[float]] = {}
    errors: dict[str, int] = {}
    for op in _all_ops(trace):
        groups.setdefault(op["name"], []).append(float(op.get("duration_s", 0.0)))
        if op.get("status") == "error":
            errors[op["name"]] = errors.get(op["name"], 0) + 1
    total_all = sum(sum(v) for v in groups.values()) or 1.0
    rows = []
    for name, durations in groups.items():
        total = sum(durations)
        rows.append({
            "phase": name,
            "count": len(durations),
            "total_s": total,
            "mean_s": total / len(durations),
            "p95_s": _percentile(durations, 0.95),
            "max_s": max(durations),
            "share": total / total_all,
            "errors": errors.get(name, 0),
        })
    rows.sort(key=lambda r: r["total_s"], reverse=True)
    return rows


def slowest_trials(trace: Mapping[str, Any], n: int = 5) -> list[dict[str, Any]]:
    """The ``n`` slowest trials with their dominant phase."""
    rows = []
    for span in trace.get("spans", ()):
        children = span.get("children", ())
        dominant = max(children, key=lambda op: op.get("duration_s", 0.0), default=None)
        rows.append({
            "trial_id": span.get("trial_id"),
            "duration_s": float(span.get("duration_s", 0.0)),
            "queue_s": float(span.get("queue_s", 0.0)),
            "outcome": span.get("outcome"),
            "retries": span.get("retries", 0),
            "dominant_phase": dominant["name"] if dominant else "-",
            "error": span.get("error"),
        })
    rows.sort(key=lambda r: r["duration_s"], reverse=True)
    return rows[:n]


def outcome_table(trace: Mapping[str, Any]) -> list[dict[str, Any]]:
    """Outcome → count, total retries, and one example error message."""
    groups: dict[str, dict[str, Any]] = {}
    for span in trace.get("spans", ()):
        outcome = span.get("outcome", "unknown")
        row = groups.setdefault(outcome, {"outcome": outcome, "count": 0, "retries": 0, "example_error": None})
        row["count"] += 1
        row["retries"] += int(span.get("retries", 0) or 0)
        if row["example_error"] is None and span.get("error"):
            row["example_error"] = str(span["error"])
    return sorted(groups.values(), key=lambda r: r["count"], reverse=True)


def event_summary(trace: Mapping[str, Any]) -> list[dict[str, Any]]:
    """Event kind → count and worst severity."""
    order = {"debug": 0, "info": 1, "warning": 2, "error": 3}
    groups: dict[str, dict[str, Any]] = {}
    for event in trace.get("events", ()):
        kind = event.get("kind", "event")
        row = groups.setdefault(kind, {"kind": kind, "count": 0, "severity": "debug"})
        row["count"] += 1
        if order.get(event.get("severity", "info"), 1) > order[row["severity"]]:
            row["severity"] = event["severity"]
    return sorted(groups.values(), key=lambda r: r["count"], reverse=True)


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1e3:.2f}ms"


def _table(headers: list[str], rows: Iterable[tuple], title: str) -> str:
    # Deferred import: the analyzer must stay loadable from a bare trace
    # file context, but reuses the repo's table formatter when available.
    from ..analysis.reporting import format_table

    return format_table(headers, list(rows), title=title)


def format_report(data: Mapping[str, Any], top: int = 5, show_events: bool = False) -> str:
    """Human-readable report for one trace or a compare bundle."""
    sections: list[str] = []
    for label, trace in trace_runs(data):
        header = (
            f"trace {label!r}: {trace.get('n_spans', len(trace.get('spans', ())))} trials, "
            f"{trace.get('n_ops', 0)} ops, {len(trace.get('events', ()))} events, "
            f"elapsed {float(trace.get('elapsed_s', 0.0)):.3f}s"
        )
        sections.append(header)

        phases = phase_stats(trace)
        if phases:
            sections.append(_table(
                ["phase", "count", "total", "mean", "p95", "max", "share", "errors"],
                [
                    (r["phase"], r["count"], _fmt_s(r["total_s"]), _fmt_s(r["mean_s"]),
                     _fmt_s(r["p95_s"]), _fmt_s(r["max_s"]), f"{r['share'] * 100:.1f}%", r["errors"])
                    for r in phases
                ],
                title="per-phase latency breakdown",
            ))

        slow = slowest_trials(trace, n=top)
        if slow:
            sections.append(_table(
                ["trial", "duration", "queue", "outcome", "retries", "dominant phase", "error"],
                [
                    (r["trial_id"], _fmt_s(r["duration_s"]), _fmt_s(r["queue_s"]), r["outcome"],
                     r["retries"], r["dominant_phase"], (r["error"] or "")[:40])
                    for r in slow
                ],
                title=f"slowest {len(slow)} trials",
            ))

        outcomes = outcome_table(trace)
        if outcomes:
            sections.append(_table(
                ["outcome", "count", "retries", "example error"],
                [(r["outcome"], r["count"], r["retries"], (r["example_error"] or "")[:48]) for r in outcomes],
                title="trial outcomes",
            ))

        events = event_summary(trace)
        if events:
            sections.append(_table(
                ["event kind", "count", "worst severity"],
                [(r["kind"], r["count"], r["severity"]) for r in events],
                title="structured events",
            ))
        if show_events and trace.get("events"):
            lines = ["event log:"]
            for e in trace["events"]:
                attrs = " ".join(f"{k}={v}" for k, v in (e.get("attributes") or {}).items())
                trial = f" trial={e['trial_id']}" if e.get("trial_id") is not None else ""
                lines.append(f"  [{e.get('severity', 'info'):7s}] {e.get('kind')}{trial} {e.get('message', '')} {attrs}".rstrip())
            sections.append("\n".join(lines))
    return "\n\n".join(sections)
