"""Structured event log: severities, attributes, bounded ring buffer.

Spans answer "where did the time go"; events answer "what noteworthy
things happened" — retries, timeouts, safety-guardrail trips, GP jitter
escalations, workload-shift alarms. Each :class:`Event` carries a machine
``kind`` (dotted, e.g. ``executor.retry``), a severity, dual timestamps
(epoch + monotonic), an optional trial binding, and free-form attributes.

The log is a fixed-size ring buffer (:class:`collections.deque` with
``maxlen``): a pathological run that times out every trial cannot grow
memory without bound — old events are dropped and counted, never errors.

Event kinds emitted by the library today:

================================  =========  ===================================
kind                              severity   emitted by
================================  =========  ===================================
``executor.retry``                warning    retry with backoff scheduled
``executor.timeout``              warning    trial hit its wall-clock deadline
``benchmark.early_abort``         info       early-abort policy censored a trial
``guardrail.violation``           warning    online guardrail flagged regression
``agent.rollback``                warning    agent restored last safe config
``agent.crash``                   error      online step crashed the system
``surrogate.jitter_escalation``   warning    GP Cholesky needed extra jitter
``workload.shift``                warning    shift detector fired an alarm
================================  =========  ===================================
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .spans import TrialRef

__all__ = ["Event", "EventLog", "SEVERITIES"]

SEVERITIES = ("debug", "info", "warning", "error")


class Event:
    """One structured occurrence; timestamps on both clocks."""

    __slots__ = ("kind", "severity", "message", "ts", "t_s", "attributes", "ref")

    def __init__(
        self,
        kind: str,
        severity: str = "info",
        message: str = "",
        ref: "TrialRef | None" = None,
        attributes: dict[str, Any] | None = None,
    ) -> None:
        if severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}, got {severity!r}")
        self.kind = kind
        self.severity = severity
        self.message = message
        self.ts = time.time()  # epoch — survives export across machines
        self.t_s = time.monotonic()  # monotonic — orders within the trace
        self.attributes = attributes if attributes is not None else {}
        self.ref = ref

    @property
    def trial_id(self) -> int | None:
        return self.ref.trial_id if self.ref is not None else None

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "message": self.message,
            "ts": self.ts,
            "t_s": self.t_s,
            "trial_id": self.trial_id,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Event({self.kind!r}, severity={self.severity!r}, trial={self.trial_id})"


class EventLog:
    """Thread-safe bounded ring buffer of :class:`Event`.

    Parameters
    ----------
    maxlen:
        Buffer capacity; the oldest events are dropped (and counted in
        :attr:`dropped`) once exceeded.
    """

    def __init__(self, maxlen: int = 4096) -> None:
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self.maxlen = int(maxlen)
        self._events: deque[Event] = deque(maxlen=self.maxlen)
        self._lock = threading.Lock()
        self.emitted = 0

    @property
    def dropped(self) -> int:
        return self.emitted - len(self._events)

    def emit(
        self,
        kind: str,
        severity: str = "info",
        message: str = "",
        ref: "TrialRef | None" = None,
        **attributes: Any,
    ) -> Event:
        event = Event(kind, severity=severity, message=message, ref=ref, attributes=attributes)
        with self._lock:
            self._events.append(event)
            self.emitted += 1
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.snapshot())

    def snapshot(self) -> list[Event]:
        with self._lock:
            return list(self._events)

    def filter(self, kind: str | None = None, severity: str | None = None) -> list[Event]:
        """Events matching a kind prefix and/or minimum severity."""
        floor = SEVERITIES.index(severity) if severity is not None else 0
        return [
            e
            for e in self.snapshot()
            if (kind is None or e.kind == kind or e.kind.startswith(kind + "."))
            and SEVERITIES.index(e.severity) >= floor
        ]

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.snapshot():
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def to_dicts(self) -> list[dict[str, Any]]:
        return [e.to_dict() for e in self.snapshot()]

    def write_jsonl(self, path: str) -> None:
        """One JSON object per line — greppable, streamable."""
        with open(path, "w", encoding="utf-8") as fh:
            for event in self.snapshot():
                fh.write(json.dumps(event.to_dict(), default=str) + "\n")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventLog(n={len(self)}, emitted={self.emitted}, maxlen={self.maxlen})"
