"""Counters, gauges, and fixed-bucket latency histograms with exposition.

Replaces the ad-hoc ``dict`` counters/gauges that used to live on
:class:`~repro.telemetry.tracing.SessionTrace` with a proper
:class:`MetricsRegistry`:

* **counters** accumulate, **gauges** hold the latest value — unchanged
  semantics, now behind one thread-safe store;
* **histograms** use fixed upper-bound buckets (Prometheus ``le``
  semantics: a value lands in the first bucket whose bound is ≥ it) and
  estimate quantiles by linear interpolation inside the selected bucket —
  the standard fixed-bucket estimator, exact at bucket boundaries;
* two expositions: :meth:`MetricsRegistry.to_dict` (JSON) and
  :meth:`MetricsRegistry.to_prometheus` (text format, ``repro_``-prefixed
  and name-sanitised, with ``_bucket``/``_sum``/``_count`` series).

Naming convention: dotted lower-case paths, ``<subsystem>.<thing>`` for
counters/gauges (``trials.total``, ``surrogate.cholesky_ms``) and
``<what>.seconds`` for latency histograms (``trial.seconds``,
``suggest.seconds``, ``queue.seconds``).
"""

from __future__ import annotations

import json
import math
import re
import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping

__all__ = ["Histogram", "MetricsRegistry", "DEFAULT_LATENCY_BUCKETS"]

#: Upper bucket bounds (seconds) sized for tuner operations: sub-millisecond
#: span bookkeeping up to five-minute benchmark runs.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, prefix: str) -> str:
    sanitized = _NAME_RE.sub("_", name)
    return prefix + sanitized if not sanitized.startswith(prefix) else sanitized


class Histogram:
    """Fixed-bucket histogram with quantile estimation.

    Parameters
    ----------
    buckets:
        Strictly increasing finite upper bounds; an implicit ``+Inf``
        bucket is appended (so no observation is ever dropped).
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be non-empty and strictly increasing, got {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # trailing +Inf bucket
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        # Prometheus `le` semantics: first bucket whose bound >= value.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0 ≤ q ≤ 1) from the bucket counts.

        Linear interpolation inside the bucket containing the target rank;
        observations at a bucket boundary are counted in that bucket (``le``
        semantics), so a quantile falling exactly on accumulated boundary
        mass returns the boundary itself. The overflow bucket is clamped to
        the maximum observed value.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0.0
        lower = min(0.0, self.min)
        for i, c in enumerate(self.counts):
            upper = self.bounds[i] if i < len(self.bounds) else max(self.max, lower)
            if c and cumulative + c >= rank:
                fraction = max(0.0, (rank - cumulative) / c)
                return lower + (upper - lower) * fraction
            cumulative += c
            lower = upper
        return self.max

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram (same buckets) into this one."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": [[b, c] for b, c in zip(self.bounds, self.counts)] + [["+Inf", self.counts[-1]]],
        }


class MetricsRegistry:
    """Thread-safe store of counters, gauges, and histograms.

    All mutation goes through :meth:`inc`/:meth:`set_gauge`/:meth:`observe`;
    names are created on first use (no registration step), matching how the
    old ``SessionTrace`` dicts were used.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- recording ----------------------------------------------------------
    def inc(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + float(value)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float, buckets: Iterable[float] | None = None) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(buckets or DEFAULT_LATENCY_BUCKETS)
            hist.observe(value)

    # -- reading ------------------------------------------------------------
    @property
    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    @property
    def gauges(self) -> dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def histogram(self, name: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name)

    def quantile(self, name: str, q: float) -> float:
        hist = self.histogram(name)
        return hist.quantile(q) if hist is not None else 0.0

    def quantiles(self, name: str, qs: Iterable[float] = (0.5, 0.95, 0.99)) -> dict[str, float]:
        hist = self.histogram(name)
        return {f"p{int(round(q * 100))}": (hist.quantile(q) if hist else 0.0) for q in qs}

    # -- merging (multi-run aggregation, e.g. `repro compare`) ---------------
    def merge(self, other: "MetricsRegistry") -> None:
        with self._lock, other._lock:
            for name, value in other._counters.items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            self._gauges.update(other._gauges)
            for name, hist in other._histograms.items():
                mine = self._histograms.get(name)
                if mine is None:
                    mine = self._histograms[name] = Histogram(hist.bounds)
                mine.merge(hist)

    # -- exposition ---------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {name: h.to_dict() for name, h in self._histograms.items()},
            }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def to_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            lines: list[str] = []
            for name in sorted(self._counters):
                metric = _prom_name(name, prefix)
                lines.append(f"# TYPE {metric} counter")
                lines.append(f"{metric} {self._counters[name]:g}")
            for name in sorted(self._gauges):
                metric = _prom_name(name, prefix)
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {self._gauges[name]:g}")
            for name in sorted(self._histograms):
                hist = self._histograms[name]
                metric = _prom_name(name, prefix)
                lines.append(f"# TYPE {metric} histogram")
                cumulative = 0
                for bound, count in zip(hist.bounds, hist.counts):
                    cumulative += count
                    lines.append(f'{metric}_bucket{{le="{bound:g}"}} {cumulative}')
                lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
                lines.append(f"{metric}_sum {hist.sum:g}")
                lines.append(f"{metric}_count {hist.count}")
            return "\n".join(lines) + "\n"

    def write(self, path: str) -> None:
        """Write metrics to ``path``: Prometheus text for ``.prom``/``.txt``,
        JSON otherwise."""
        text = self.to_prometheus() if path.endswith((".prom", ".txt")) else self.to_json()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)

    def absorb(self, snapshot: Mapping[str, float], prefix: str) -> None:
        """Record a stats snapshot (e.g. ``SurrogateStats``) as gauges."""
        for key, value in snapshot.items():
            self.set_gauge(f"{prefix}.{key}", float(value))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
            )
