"""Tuning-run observability: spans, metrics, events, JSON export.

Taming noisy cloud trials (TUNA) and tuning the tuner itself both start
from the same prerequisite: *knowing what happened inside every trial*.
This module gives tuning runs a lightweight, dependency-free trace model
in the OpenTelemetry spirit:

* :class:`TrialSpan` — one trial (or online step): when it ran (monotonic
  *and* wall-clock epoch), how long the suggest and evaluate phases took,
  how many retries it burned, and how it ended (``success`` / ``crash`` /
  ``abort`` / ``censored`` / ``timeout``);
* nested **operation spans** (:mod:`repro.telemetry.spans`) — where the
  time went *inside* a trial: ``optimizer.suggest``, ``surrogate.fit``,
  ``acquisition.optimize``, ``executor.run``/``executor.attempt``,
  ``benchmark.measure`` … recorded into the active trace and attached to
  their trial at export;
* :class:`SessionTrace` — spans + a
  :class:`~repro.telemetry.metrics.MetricsRegistry` (counters, gauges,
  latency histograms with p50/p95/p99) + a bounded
  :class:`~repro.telemetry.events.EventLog`, exportable as JSON for the
  ``repro trace`` analyzer or as Chrome trace-event JSON
  (:mod:`repro.telemetry.export`) for Perfetto.

Not to be confused with :mod:`repro.sysim.telemetry`, which generates the
*system* utilisation time series that workload identification embeds; this
module observes the *tuner*.
"""

from __future__ import annotations

import json
import threading
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable

from . import spans as _spans
from .events import EventLog
from .metrics import MetricsRegistry
from .spans import OpSpan, TrialRef

__all__ = ["TrialSpan", "SessionTrace"]


@dataclass
class TrialSpan:
    """One trial's execution record — the root of that trial's span tree.

    ``started_s``/``ended_s`` are on the session's (monotonic) clock and
    give durations; ``started_at``/``ended_at`` are wall-clock epoch
    seconds so a saved trace can be correlated with other sessions,
    machines, and system logs.
    """

    trial_id: int
    status: str = "succeeded"
    outcome: str = "success"  # success | crash | abort | censored | timeout
    started_s: float = 0.0
    ended_s: float = 0.0
    started_at: float = 0.0  # wall-clock epoch
    ended_at: float = 0.0  # wall-clock epoch
    suggest_latency_s: float = 0.0
    evaluate_s: float = 0.0
    queue_s: float = 0.0
    retries: int = 0
    cost: float = 0.0
    error: str | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return max(0.0, self.ended_s - self.started_s)

    def to_dict(self) -> dict[str, Any]:
        return {
            "trial_id": self.trial_id,
            "status": self.status,
            "outcome": self.outcome,
            "started_s": self.started_s,
            "ended_s": self.ended_s,
            "started_at": self.started_at,
            "ended_at": self.ended_at,
            "duration_s": self.duration_s,
            "suggest_latency_s": self.suggest_latency_s,
            "evaluate_s": self.evaluate_s,
            "queue_s": self.queue_s,
            "retries": self.retries,
            "cost": self.cost,
            "error": self.error,
            "attributes": dict(self.attributes),
        }


class SessionTrace:
    """Spans + metrics + events for one tuning run.

    Counters accumulate (``incr``), gauges hold the latest value
    (``gauge``), histograms aggregate latencies (``observe``) — all backed
    by a :class:`MetricsRegistry`; the historic ``trace.counters`` /
    ``trace.gauges`` dict reads keep working as snapshots. Operation spans
    and structured events arrive through the context-variable machinery in
    :mod:`repro.telemetry.spans` while the trace is :meth:`activated`.
    """

    def __init__(
        self,
        name: str = "tuning-session",
        clock: Callable[[], float] = time.monotonic,
        max_ops: int = 100_000,
        max_events: int = 4096,
        trace_id: str | None = None,
    ) -> None:
        self.name = name
        self.clock = clock
        self.started_s = clock()
        self.started_at = time.time()  # wall-clock epoch
        #: Distributed trace id (W3C shape). Spans recorded while this trace
        #: is active default to it unless an inbound context is already
        #: bound — the server binds the client's ``traceparent`` first, so
        #: cross-process spans stitch under the *caller's* id.
        self.trace_id = trace_id if trace_id is not None else _spans.new_trace_id()
        self.spans: list[TrialSpan] = []
        self.metrics = MetricsRegistry()
        self.events = EventLog(maxlen=max_events)
        self.ops: list[OpSpan] = []
        self.max_ops = int(max_ops)
        self.ops_dropped = 0
        self._lock = threading.Lock()

    # -- activation ----------------------------------------------------------
    def activated(self):
        """Context manager making this trace the ambient span/event sink.

        Also binds the trace's ``trace_id`` as the distributed trace
        context — unless one is already bound (an inbound ``traceparent``
        takes precedence so propagated traces stitch).
        """

        trace = self

        class _Activation:
            def __enter__(self) -> "SessionTrace":
                self._token = _spans.activate(trace)
                if _spans.current_trace_context() is None:
                    self._trace_binding = _spans.bind_trace(trace.trace_id)
                    self._trace_binding.__enter__()
                else:
                    self._trace_binding = None
                return trace

            def __exit__(self, *exc_info: object) -> bool:
                if self._trace_binding is not None:
                    self._trace_binding.__exit__(*exc_info)
                _spans.deactivate(self._token)
                return False

        return _Activation()

    # -- recording ----------------------------------------------------------
    def add_span(self, span: TrialSpan) -> TrialSpan:
        with self._lock:
            self.spans.append(span)
        return span

    def record_op(self, op: OpSpan) -> None:
        """Sink for :func:`repro.telemetry.spans.span` (bounded)."""
        with self._lock:
            if len(self.ops) < self.max_ops:
                self.ops.append(op)
            else:
                self.ops_dropped += 1

    def record_event(
        self, kind: str, severity: str, message: str, ref: TrialRef | None, attributes: dict
    ) -> None:
        """Sink for :func:`repro.telemetry.spans.emit_event`."""
        self.events.emit(kind, severity=severity, message=message, ref=ref, **attributes)
        self.metrics.inc(f"events.{kind}")

    def incr(self, name: str, value: float = 1.0) -> None:
        self.metrics.inc(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    # -- reading ------------------------------------------------------------
    @property
    def counters(self) -> dict[str, float]:
        counters: dict[str, float] = defaultdict(float)
        counters.update(self.metrics.counters)
        return counters

    @property
    def gauges(self) -> dict[str, float]:
        return self.metrics.gauges

    def span_for(self, trial_id: int) -> TrialSpan | None:
        for span in self.spans:
            if span.trial_id == trial_id:
                return span
        return None

    def ops_for(self, trial_id: int) -> list[OpSpan]:
        """All operation spans attributed to one trial."""
        with self._lock:
            return [op for op in self.ops if op.trial_id == trial_id]

    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = defaultdict(int)
        for span in self.spans:
            counts[span.outcome] += 1
        return dict(counts)

    def summary(self) -> dict[str, Any]:
        """One-line-able digest: trial count, best value, tail latencies."""
        return {
            "trials": len(self.spans),
            "best_value": self.metrics.gauges.get("best.value"),
            "p95_trial_s": self.metrics.quantile("trial.seconds", 0.95),
            "p95_suggest_s": self.metrics.quantile("suggest.seconds", 0.95),
            "outcomes": self.outcome_counts(),
            "events": len(self.events),
        }

    # -- export -------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            spans = list(self.spans)
            ops = list(self.ops)
        by_trial: dict[int | None, list[dict]] = defaultdict(list)
        for op in ops:
            by_trial[op.trial_id].append(op.to_dict())
        span_dicts = []
        for span in spans:
            d = span.to_dict()
            d["children"] = by_trial.pop(span.trial_id, [])
            span_dicts.append(d)
        loose_ops = [d for group in by_trial.values() for d in group]
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "started_s": self.started_s,
            "started_at": self.started_at,
            "elapsed_s": self.clock() - self.started_s,
            "n_spans": len(spans),
            "n_ops": len(ops),
            "ops_dropped": self.ops_dropped,
            "outcomes": self.outcome_counts(),
            "counters": self.metrics.counters,
            "gauges": self.metrics.gauges,
            "metrics": self.metrics.to_dict(),
            "spans": span_dicts,
            "ops": loose_ops,
            "events": self.events.to_dicts(),
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False, default=str)

    def export(self, path: str) -> None:
        """Write the trace as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(indent=2))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SessionTrace({self.name!r}, n_spans={len(self.spans)}, n_ops={len(self.ops)})"
