"""Tuning-run observability: per-trial spans, counters/gauges, JSON export.

Taming noisy cloud trials (TUNA) and tuning the tuner itself both start
from the same prerequisite: *knowing what happened inside every trial*.
This module gives tuning runs a lightweight, dependency-free trace model
in the OpenTelemetry spirit:

* :class:`TrialSpan` — one trial (or online step): when it ran, how long
  the suggest and evaluate phases took, how many retries it burned, and
  how it ended (``success`` / ``crash`` / ``abort`` / ``censored`` /
  ``timeout``);
* :class:`SessionTrace` — the spans plus session-level counters and
  gauges, exportable as JSON for offline analysis or dashboards.

Not to be confused with :mod:`repro.sysim.telemetry`, which generates the
*system* utilisation time series that workload identification embeds; this
module observes the *tuner*.
"""

from __future__ import annotations

import json
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["TrialSpan", "SessionTrace"]


@dataclass
class TrialSpan:
    """One trial's execution record."""

    trial_id: int
    status: str = "succeeded"
    outcome: str = "success"  # success | crash | abort | censored | timeout
    started_s: float = 0.0
    ended_s: float = 0.0
    suggest_latency_s: float = 0.0
    evaluate_s: float = 0.0
    retries: int = 0
    cost: float = 0.0
    error: str | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return max(0.0, self.ended_s - self.started_s)

    def to_dict(self) -> dict[str, Any]:
        return {
            "trial_id": self.trial_id,
            "status": self.status,
            "outcome": self.outcome,
            "started_s": self.started_s,
            "ended_s": self.ended_s,
            "duration_s": self.duration_s,
            "suggest_latency_s": self.suggest_latency_s,
            "evaluate_s": self.evaluate_s,
            "retries": self.retries,
            "cost": self.cost,
            "error": self.error,
            "attributes": dict(self.attributes),
        }


class SessionTrace:
    """Spans + counters + gauges for one tuning run.

    Counters accumulate (``incr``), gauges hold the latest value (``gauge``).
    The trace is deliberately schema-light: anything a callback, runner, or
    agent wants to record fits in a counter, a gauge, or a span attribute.
    """

    def __init__(self, name: str = "tuning-session", clock: Callable[[], float] = time.monotonic) -> None:
        self.name = name
        self.clock = clock
        self.started_s = clock()
        self.spans: list[TrialSpan] = []
        self.counters: dict[str, float] = defaultdict(float)
        self.gauges: dict[str, float] = {}

    # -- recording ----------------------------------------------------------
    def add_span(self, span: TrialSpan) -> TrialSpan:
        self.spans.append(span)
        return span

    def incr(self, name: str, value: float = 1.0) -> None:
        self.counters[name] += value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    # -- reading ------------------------------------------------------------
    def span_for(self, trial_id: int) -> TrialSpan | None:
        for span in self.spans:
            if span.trial_id == trial_id:
                return span
        return None

    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = defaultdict(int)
        for span in self.spans:
            counts[span.outcome] += 1
        return dict(counts)

    # -- export -------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "started_s": self.started_s,
            "elapsed_s": self.clock() - self.started_s,
            "n_spans": len(self.spans),
            "outcomes": self.outcome_counts(),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "spans": [span.to_dict() for span in self.spans],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False, default=str)

    def export(self, path: str) -> None:
        """Write the trace as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(indent=2))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SessionTrace({self.name!r}, n_spans={len(self.spans)})"
