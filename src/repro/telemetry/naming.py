"""The documented span/event naming registry.

Telemetry only composes across the stack when every layer agrees on what
operations are called: the trace analyzer groups by span name, dashboards
aggregate ``executor.attempt`` timings across services, and the replay
tooling keys provenance off event kinds. A typo'd span name silently
creates a new series instead of extending an existing one — so the set of
legal names is *closed* and enforced statically by
``repro.staticcheck.astlint`` (rule ``AST401``): every string literal
passed to :func:`repro.telemetry.spans.span` or
:func:`~repro.telemetry.spans.emit_event` must appear here.

Adding an instrumentation point is a two-line change: add the name below
(keep the ``<subsystem>.<operation>`` shape, lowercase, dot-separated) and
document it in ``docs/static-analysis.md``'s naming table.
"""

from __future__ import annotations

__all__ = ["SPAN_NAMES", "EVENT_KINDS", "is_valid_span_name", "is_valid_event_kind"]

#: Operation-span names (``with span(name): ...``), one per instrumented
#: operation. Grouping key for the trace analyzer and latency histograms.
SPAN_NAMES: frozenset[str] = frozenset(
    {
        # session / optimizer layer
        "optimizer.suggest",      # one suggest() call (any optimizer)
        "surrogate.fit",          # surrogate model (re)fit
        "acquisition.optimize",   # acquisition search over candidates
        "gp.hyperopt",            # GP hyperparameter optimization (NLL minimisation)
        # execution layer
        "executor.run",           # whole attempt loop of one trial
        "executor.attempt",       # a single evaluation attempt
        "executor.backoff",       # retry backoff sleep
        # benchmarking / online layer
        "benchmark.measure",      # one benchmark measurement (incl. warmup)
        "policy.propose",         # online policy proposing a config
        "system.run",             # simulated system executing a workload
        # static analysis
        "staticcheck.run",        # one lint pass (space or AST prong)
        # service wire (distributed tracing)
        "service.request",        # client-side HTTP call (route, status, retry)
        "http.request",           # server-side request handling (route, status)
        # provenance / replay
        "session.replay",         # one repro replay pass over a journaled session
    }
)

#: Structured event kinds (``emit_event(kind, ...)``) — the vocabulary of
#: the bounded event log.
EVENT_KINDS: frozenset[str] = frozenset(
    {
        "executor.timeout",
        "executor.retry",
        "benchmark.early_abort",
        "guardrail.violation",
        "agent.crash",
        "agent.rollback",
        "surrogate.jitter_escalation",
        "workload.shift",
        "staticcheck.finding",    # a lint finding surfaced at session create
        "replay.divergence",      # first point where a replayed session departs the journal
        # robustness / chaos engineering
        "chaos.fault",            # an injected fault fired (site, key, index, kind)
        "optimizer.degraded",     # surrogate fit failed/slow; suggestion degraded to random
        "store.spill",            # transient store failure: trial held in the spill buffer
        "store.spill_flush",      # spilled trials flushed to durable storage
        "breaker.state_change",   # circuit breaker closed/open/half_open transition
        "service.overload",       # admission control shed a request (429/503)
        "service.drain",          # server entered graceful drain
    }
)


def is_valid_span_name(name: str) -> bool:
    return name in SPAN_NAMES


def is_valid_event_kind(kind: str) -> bool:
    return kind in EVENT_KINDS
