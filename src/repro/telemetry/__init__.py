"""Tuner observability: hierarchical spans, metrics, events, trace analysis.

Layers:

* :mod:`~repro.telemetry.spans` — contextvar-backed operation spans
  (``span``, ``trial_scope``, ``emit_event``) with a strict no-op fast
  path when no trace is active;
* :mod:`~repro.telemetry.metrics` — counters/gauges/latency histograms
  with JSON and Prometheus exposition;
* :mod:`~repro.telemetry.events` — bounded structured event log;
* :mod:`~repro.telemetry.tracing` — per-trial :class:`TrialSpan` +
  :class:`SessionTrace` aggregation and JSON export;
* :mod:`~repro.telemetry.export` — Chrome trace-event conversion (open in
  Perfetto);
* :mod:`~repro.telemetry.analyzer` — offline analysis for ``repro trace``;
* :mod:`~repro.telemetry.callback` — session wiring.

See ``docs/observability.md`` for the span hierarchy, metric naming
conventions, event schema, and overhead guarantees.
"""

from .events import Event, EventLog
from .metrics import DEFAULT_LATENCY_BUCKETS, Histogram, MetricsRegistry
from .naming import EVENT_KINDS, SPAN_NAMES
from .spans import (
    OpSpan,
    TraceContext,
    TrialRef,
    active_trace,
    bind_trace,
    current_op,
    current_trace_id,
    emit_event,
    format_traceparent,
    parse_traceparent,
    span,
    trial_scope,
)
from .tracing import SessionTrace, TrialSpan
from .export import chrome_trace, export_chrome_trace, stitch_chrome_trace
from .callback import TelemetryCallback

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "EVENT_KINDS",
    "Event",
    "EventLog",
    "SPAN_NAMES",
    "Histogram",
    "MetricsRegistry",
    "OpSpan",
    "SessionTrace",
    "TelemetryCallback",
    "TraceContext",
    "TrialRef",
    "TrialSpan",
    "active_trace",
    "bind_trace",
    "chrome_trace",
    "current_op",
    "current_trace_id",
    "emit_event",
    "export_chrome_trace",
    "format_traceparent",
    "parse_traceparent",
    "span",
    "stitch_chrome_trace",
    "trial_scope",
]
