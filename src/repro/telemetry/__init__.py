"""Tuner observability: trial spans, session counters/gauges, JSON export."""

from .callback import TelemetryCallback
from .tracing import SessionTrace, TrialSpan

__all__ = ["SessionTrace", "TelemetryCallback", "TrialSpan"]
