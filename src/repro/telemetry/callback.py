"""Telemetry wiring for tuning sessions, via the Callback mechanism.

:class:`TelemetryCallback` turns the hook stream of a
:class:`~repro.core.session.TuningSession` into a
:class:`~repro.telemetry.tracing.SessionTrace`: exactly one
:class:`~repro.telemetry.tracing.TrialSpan` per trial (success *or*
failure), latency histograms (trial / suggest / evaluate / queue seconds,
so p50/p95/p99 come for free), counters for starts/outcomes/errors/
retries/batches, and gauges for the incumbent.

On ``on_session_start`` the callback *activates* its trace
(:mod:`repro.telemetry.spans`), so every instrumented layer below — the
session's ``optimizer.suggest`` span, the optimizer's ``surrogate.fit``
and ``acquisition.optimize``, the executor's ``executor.run`` /
``executor.attempt`` spans and retry/timeout events, the benchmark
runner's ``benchmark.measure`` — lands in the same trace and is attached
to the right trial, including across :class:`~repro.execution
.ThreadedExecutor` worker threads. Execution-side numbers (evaluate
wall-clock, queue wait, retry count, per-attempt durations, outcome tag,
suggest latency) additionally arrive through ``Trial.context``, so the
flat per-trial record stays complete even for process-pool executors
whose child processes cannot contribute spans.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Mapping, Sequence

from ..core.callbacks import Callback
from ..core.optimizer import Trial
from .tracing import SessionTrace, TrialSpan

if TYPE_CHECKING:  # pragma: no cover
    from ..core.session import TuningSession

__all__ = ["TelemetryCallback"]


class TelemetryCallback(Callback):
    """Records a :class:`SessionTrace` for a tuning session.

    Parameters
    ----------
    trace:
        Trace to append to; a fresh one is created when omitted.
    export_path:
        When set, the trace is written there as JSON at session end.
    metrics_path:
        When set, the metrics registry is written there at session end
        (Prometheus text for ``.prom``/``.txt``, JSON otherwise).
    span_attributes:
        Attributes stamped on every trial span (e.g. ``{"optimizer":
        "bo", "seed": 3}`` when several runs share one trace).
    """

    def __init__(
        self,
        trace: SessionTrace | None = None,
        export_path: str | None = None,
        metrics_path: str | None = None,
        span_attributes: Mapping[str, object] | None = None,
    ) -> None:
        self.trace = trace if trace is not None else SessionTrace()
        self.export_path = export_path
        self.metrics_path = metrics_path
        self.span_attributes = dict(span_attributes) if span_attributes else {}
        self._activation = None

    # -- hooks ---------------------------------------------------------------
    def on_session_start(self, session: "TuningSession") -> None:
        self.trace.incr("sessions.started")
        # Activate: nested spans/events from every layer below now land in
        # this trace for the duration of the run.
        self._activation = self.trace.activated()
        self._activation.__enter__()

    def on_trial_start(self, session: "TuningSession", trial_index: int) -> None:
        self.trace.incr("trials.started")

    def on_trial_error(self, session: "TuningSession", trial: Trial, exc: BaseException | None) -> None:
        self.trace.incr("trials.errors")
        if exc is not None:
            self.trace.incr(f"trials.errors.{type(exc).__name__}")

    def on_trial_end(self, session: "TuningSession", trial: Trial) -> None:
        ctx = trial.context
        now = self.trace.clock()
        evaluate_s = float(ctx.get("evaluate_s", 0.0))
        suggest_s = float(ctx.get("suggest_latency_s", 0.0))
        queue_s = float(ctx.get("queue_s", 0.0))
        retries = int(ctx.get("retries", 0))
        outcome = str(ctx.get("outcome", "success" if trial.ok else trial.status.value))
        span = TrialSpan(
            trial_id=trial.trial_id,
            status=trial.status.value,
            outcome=outcome,
            started_s=now - evaluate_s - suggest_s - queue_s,
            ended_s=now,
            suggest_latency_s=suggest_s,
            evaluate_s=evaluate_s,
            queue_s=queue_s,
            retries=retries,
            cost=trial.cost,
            error=ctx.get("error"),
        )
        # Tighten the window to the recorded operation spans when they exist
        # (they share the monotonic clock): the trial span then provably
        # brackets its children, and nested durations sum to <= the parent.
        if self.trace.clock is time.monotonic:
            ops = self.trace.ops_for(trial.trial_id)
            if ops:
                span.started_s = min(min(op.t0 for op in ops), span.started_s)
                span.ended_s = max(max(op.t1 for op in ops), span.started_s)
        span.ended_at = time.time()
        span.started_at = span.ended_at - span.duration_s
        if ctx.get("attempt_s"):
            span.attributes["attempt_s"] = list(ctx["attempt_s"])
        if ctx.get("attempts"):
            span.attributes["attempts"] = list(ctx["attempts"])
        if self.span_attributes:
            span.attributes.update(self.span_attributes)
        self.trace.add_span(span)
        # Surrogate hot-path counters (cholesky_ms, nll_evals, cache hits …):
        # optimizers exposing `surrogate_stats()` get a cumulative snapshot on
        # every span, so traces show where optimizer time goes.
        stats_fn = getattr(session.optimizer, "surrogate_stats", None)
        if callable(stats_fn):
            try:
                snapshot = stats_fn()
            except Exception:
                snapshot = None
            if snapshot:
                span.attributes["surrogate"] = dict(snapshot)
                self.trace.metrics.absorb(snapshot, "surrogate")
        self.trace.incr("trials.total")
        self.trace.incr(f"trials.{trial.status.value}")
        if retries:
            self.trace.incr("trials.retries", retries)
        self.trace.incr("suggest.seconds", suggest_s)
        self.trace.incr("evaluate.seconds", evaluate_s)
        self.trace.incr("cost.total", trial.cost)
        # Latency distributions: the p50/p95/p99 the CLI summary reports.
        self.trace.observe("trial.seconds", span.duration_s)
        self.trace.observe("suggest.seconds", suggest_s)
        self.trace.observe("evaluate.seconds", evaluate_s)
        if queue_s:
            self.trace.observe("queue.seconds", queue_s)

    def on_batch_end(self, session: "TuningSession", trials: Sequence[Trial]) -> None:
        self.trace.incr("batches.total")
        self.trace.gauge("batch.size.last", float(len(trials)))

    def on_session_end(self, session: "TuningSession") -> None:
        obj = session.optimizer.objective
        try:
            self.trace.gauge("best.value", float(session.optimizer.history.best_value(obj)))
        except Exception:
            pass  # every trial failed — there is no incumbent to report
        self.trace.gauge("trials.history", float(len(session.optimizer.history)))
        if self._activation is not None:
            self._activation.__exit__(None, None, None)
            self._activation = None
        if self.export_path is not None:
            self.trace.export(self.export_path)
        if self.metrics_path is not None:
            self.trace.metrics.write(self.metrics_path)
