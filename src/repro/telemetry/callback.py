"""Telemetry wiring for tuning sessions, via the Callback mechanism.

:class:`TelemetryCallback` turns the hook stream of a
:class:`~repro.core.session.TuningSession` into a
:class:`~repro.telemetry.tracing.SessionTrace`: exactly one
:class:`~repro.telemetry.tracing.TrialSpan` per trial (success *or*
failure), counters for starts/outcomes/errors/retries/batches, and gauges
for the incumbent. Execution-side instrumentation (evaluate wall-clock,
retry count, outcome tag, suggest latency) arrives through
``Trial.context`` — the session records it there when observing executor
results, so this callback needs no knowledge of which executor ran the
trial.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..core.callbacks import Callback
from ..core.optimizer import Trial
from .tracing import SessionTrace, TrialSpan

if TYPE_CHECKING:  # pragma: no cover
    from ..core.session import TuningSession

__all__ = ["TelemetryCallback"]


class TelemetryCallback(Callback):
    """Records a :class:`SessionTrace` for a tuning session.

    Parameters
    ----------
    trace:
        Trace to append to; a fresh one is created when omitted.
    export_path:
        When set, the trace is written there as JSON at session end.
    """

    def __init__(self, trace: SessionTrace | None = None, export_path: str | None = None) -> None:
        self.trace = trace if trace is not None else SessionTrace()
        self.export_path = export_path

    # -- hooks ---------------------------------------------------------------
    def on_trial_start(self, session: "TuningSession", trial_index: int) -> None:
        self.trace.incr("trials.started")

    def on_trial_error(self, session: "TuningSession", trial: Trial, exc: BaseException | None) -> None:
        self.trace.incr("trials.errors")
        if exc is not None:
            self.trace.incr(f"trials.errors.{type(exc).__name__}")

    def on_trial_end(self, session: "TuningSession", trial: Trial) -> None:
        ctx = trial.context
        now = self.trace.clock()
        evaluate_s = float(ctx.get("evaluate_s", 0.0))
        retries = int(ctx.get("retries", 0))
        outcome = str(ctx.get("outcome", "success" if trial.ok else trial.status.value))
        span = self.trace.add_span(
            TrialSpan(
                trial_id=trial.trial_id,
                status=trial.status.value,
                outcome=outcome,
                started_s=now - evaluate_s,
                ended_s=now,
                suggest_latency_s=float(ctx.get("suggest_latency_s", 0.0)),
                evaluate_s=evaluate_s,
                retries=retries,
                cost=trial.cost,
                error=ctx.get("error"),
            )
        )
        # Surrogate hot-path counters (cholesky_ms, nll_evals, cache hits …):
        # optimizers exposing `surrogate_stats()` get a cumulative snapshot on
        # every span, so traces show where optimizer time goes.
        stats_fn = getattr(session.optimizer, "surrogate_stats", None)
        if callable(stats_fn):
            try:
                snapshot = stats_fn()
            except Exception:
                snapshot = None
            if snapshot:
                span.attributes["surrogate"] = dict(snapshot)
                for key, value in snapshot.items():
                    self.trace.gauge(f"surrogate.{key}", float(value))
        self.trace.incr("trials.total")
        self.trace.incr(f"trials.{trial.status.value}")
        if retries:
            self.trace.incr("trials.retries", retries)
        self.trace.incr("suggest.seconds", float(ctx.get("suggest_latency_s", 0.0)))
        self.trace.incr("evaluate.seconds", evaluate_s)
        self.trace.incr("cost.total", trial.cost)

    def on_batch_end(self, session: "TuningSession", trials: Sequence[Trial]) -> None:
        self.trace.incr("batches.total")
        self.trace.gauge("batch.size.last", float(len(trials)))

    def on_session_end(self, session: "TuningSession") -> None:
        obj = session.optimizer.objective
        try:
            self.trace.gauge("best.value", float(session.optimizer.history.best_value(obj)))
        except Exception:
            pass  # every trial failed — there is no incumbent to report
        self.trace.gauge("trials.history", float(len(session.optimizer.history)))
        if self.export_path is not None:
            self.trace.export(self.export_path)
