"""Chrome trace-event export — open tuning runs in Perfetto / chrome://tracing.

Converts a :class:`~repro.telemetry.tracing.SessionTrace` (or its exported
JSON dict — the converter works offline on saved traces) into the Chrome
trace-event format: one complete (``ph="X"``) event per trial span and per
operation span, instant (``ph="i"``) events for the structured event log,
and metadata records naming the tracks. Each trial gets its own track
(``tid`` = trial id), so concurrent trials from a thread-pool executor
render as parallel lanes with their nested operations stacked inside.

Timestamps are microseconds relative to the session's wall-clock start
(``started_at``), falling back to the monotonic clock for traces saved
before epoch timestamps existed.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

__all__ = ["chrome_trace", "export_chrome_trace", "stitch_chrome_trace"]

_SESSION_TID = 0


def _as_dict(trace: Any) -> Mapping[str, Any]:
    return trace.to_dict() if hasattr(trace, "to_dict") else trace


def chrome_trace(trace: Any) -> dict[str, Any]:
    """Build a Chrome trace-event dict from a trace (object or dict)."""
    data = _as_dict(trace)
    wall_base = float(data.get("started_at") or 0.0)
    mono_base = float(data.get("started_s") or 0.0)

    def us_wall(wall: float | None, mono: float | None) -> int:
        if wall_base and wall:
            return max(0, int(round((wall - wall_base) * 1e6)))
        return max(0, int(round(((mono or 0.0) - mono_base) * 1e6)))

    events: list[dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": _SESSION_TID,
         "args": {"name": f"repro {data.get('name', 'trace')}"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": _SESSION_TID,
         "args": {"name": "session"}},
    ]
    seen_tids: set[int] = set()

    def op_events(ops: list[dict[str, Any]], tid: int) -> None:
        for op in ops:
            events.append({
                "name": op["name"],
                "cat": "op",
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": us_wall(op.get("started_at"), op.get("t0_s")),
                "dur": max(1, int(round(float(op.get("duration_s", 0.0)) * 1e6))),
                "args": {
                    "status": op.get("status"),
                    "thread": op.get("thread"),
                    "error": op.get("error"),
                    **(op.get("attributes") or {}),
                },
            })

    for span in data.get("spans", ()):
        tid = int(span.get("trial_id", 0)) + 1  # track per trial; 0 = session
        if tid not in seen_tids:
            seen_tids.add(tid)
            events.append({"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                           "args": {"name": f"trial {span.get('trial_id')}"}})
        events.append({
            "name": f"trial[{span.get('trial_id')}] {span.get('outcome', '')}".strip(),
            "cat": "trial",
            "ph": "X",
            "pid": 1,
            "tid": tid,
            "ts": us_wall(span.get("started_at"), span.get("started_s")),
            "dur": max(1, int(round(float(span.get("duration_s", 0.0)) * 1e6))),
            "args": {
                "status": span.get("status"),
                "outcome": span.get("outcome"),
                "retries": span.get("retries"),
                "cost": span.get("cost"),
                "error": span.get("error"),
                **(span.get("attributes") or {}),
            },
        })
        op_events(span.get("children", ()), tid)

    op_events(list(data.get("ops", ())), _SESSION_TID)

    for event in data.get("events", ()):
        tid = _SESSION_TID if event.get("trial_id") is None else int(event["trial_id"]) + 1
        events.append({
            "name": event.get("kind", "event"),
            "cat": "event",
            "ph": "i",
            "s": "g",  # global scope: draw the marker across all tracks
            "pid": 1,
            "tid": tid,
            "ts": us_wall(event.get("ts"), event.get("t_s")),
            "args": {
                "severity": event.get("severity"),
                "message": event.get("message"),
                **(event.get("attributes") or {}),
            },
        })

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def stitch_chrome_trace(traces: "list[Any]") -> dict[str, Any]:
    """Merge several traces into one Chrome trace, one process track each.

    The cross-wire story: a client ``run_session`` trace and the server's
    service trace share a ``trace_id`` (propagated via the ``traceparent``
    header), so stitching them gives the full picture — client wire time on
    one pid, server handling and optimizer work on another, on a shared
    wall-clock timeline. Traces keep their own relative timebases only if
    they lack epoch timestamps; with ``started_at`` present (the normal
    case) events align on the common wall clock.
    """
    merged: list[dict[str, Any]] = []
    base: float | None = None
    datas = [_as_dict(t) for t in traces]
    for data in datas:
        started = float(data.get("started_at") or 0.0)
        if started:
            base = started if base is None else min(base, started)
    for pid, data in enumerate(datas, start=1):
        shift_us = 0
        started = float(data.get("started_at") or 0.0)
        if base is not None and started:
            shift_us = int(round((started - base) * 1e6))
        for event in chrome_trace(data)["traceEvents"]:
            event = dict(event)
            event["pid"] = pid
            if "ts" in event:
                event["ts"] = event["ts"] + shift_us
            if event.get("ph") == "M" and event.get("name") == "process_name":
                name = data.get("name", f"trace {pid}")
                trace_id = data.get("trace_id")
                event["args"] = {"name": f"repro {name}" + (f" [{trace_id[:8]}]" if trace_id else "")}
            merged.append(event)
    return {"traceEvents": merged, "displayTimeUnit": "ms"}


def export_chrome_trace(trace: Any, path: str) -> None:
    """Write Chrome trace-event JSON to ``path`` (open in ui.perfetto.dev)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(trace), fh, indent=None, default=str)
