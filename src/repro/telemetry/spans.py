"""Hierarchical operation spans over ``contextvars`` — the tracing core.

The flat per-trial :class:`~repro.telemetry.tracing.TrialSpan` tells you
*that* a trial took 1.2 s; it cannot tell you whether that was surrogate
fitting, acquisition maximisation, executor queue wait, or the workload
run. This module adds the missing dimension: lightweight *operation
spans*, opened anywhere in the stack with::

    with span("surrogate.fit", n_observations=40):
        model.fit(X, y)

and recorded into whichever :class:`~repro.telemetry.tracing.SessionTrace`
is *active* in the current context. Three context variables carry the
state:

* the **active trace** — set by :meth:`SessionTrace.activated` (the
  :class:`~repro.telemetry.TelemetryCallback` does this for sessions, the
  online agent for its runs). With no active trace, :func:`span`,
  :func:`trial_scope`, and :func:`emit_event` are strict no-ops: one
  ``ContextVar.get`` plus a ``None`` check, no allocation — cheap enough
  to leave the instrumentation permanently in hot paths (measured by
  ``benchmarks/test_e25_observability_overhead.py``).
* the **current parent span** — nested ``span()`` blocks form a tree via
  ``parent_id``; exceptions propagate but the span is always closed (with
  ``status="error"``), so no orphans survive a crash.
* the **trial reference** — a tiny mutable cell opened by
  :func:`trial_scope` around everything belonging to one trial. Its
  ``trial_id`` starts unknown (executors run before the optimizer assigns
  ids) and is bound once the trial is observed; every span and event
  recorded inside the scope resolves through it at export time.

Thread-safety: :class:`~repro.execution.ThreadedExecutor` copies the
submitting context into each worker task (``contextvars.copy_context``),
so spans opened inside a worker attach to the right trial even though
pool threads are reused across trials. Process pools cross a pickle
boundary — spans opened in child processes are silently dropped (the
context variables are unset there), which degrades to the flat PR-1
behavior rather than corrupting the tree.
"""

from __future__ import annotations

import itertools
import re
import threading
import time
import uuid
from contextvars import ContextVar
from typing import Any, Protocol

__all__ = [
    "OpSpan",
    "TrialRef",
    "TraceContext",
    "span",
    "trial_scope",
    "emit_event",
    "activate",
    "deactivate",
    "active_trace",
    "current_op",
    "current_trial_ref",
    "bind_trace",
    "current_trace_id",
    "current_trace_context",
    "new_trace_id",
    "new_span_id",
    "format_traceparent",
    "parse_traceparent",
]

_ids = itertools.count(1)


class SpanSink(Protocol):  # pragma: no cover - typing only
    """What :func:`span`/:func:`emit_event` need from an active trace."""

    def record_op(self, op: "OpSpan") -> None: ...

    def record_event(self, kind: str, severity: str, message: str, ref: "TrialRef | None", attributes: dict) -> None: ...


_ACTIVE: ContextVar[SpanSink | None] = ContextVar("repro_active_trace", default=None)
_PARENT: ContextVar["OpSpan | None"] = ContextVar("repro_current_span", default=None)
_TRIAL: ContextVar["TrialRef | None"] = ContextVar("repro_trial_ref", default=None)
_TRACE_CTX: ContextVar["TraceContext | None"] = ContextVar("repro_trace_ctx", default=None)


# -- distributed trace context (W3C traceparent) ------------------------------

_TRACEPARENT_RE = re.compile(r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")


class TraceContext:
    """The distributed identity of the current request/session.

    ``trace_id`` names the whole end-to-end trace (shared by the client
    driving a session and every server handler it touches); ``span_id``
    names the hop that propagated it. Both follow the W3C Trace Context
    sizes (16 / 8 bytes, lowercase hex) so they serialise straight into a
    ``traceparent`` header.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str | None = None) -> None:
        self.trace_id = trace_id
        self.span_id = span_id if span_id is not None else new_span_id()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceContext(trace_id={self.trace_id!r}, span_id={self.span_id!r})"


def new_trace_id() -> str:
    """A fresh 32-hex-char (16-byte) trace id."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-char (8-byte) propagation span id."""
    return uuid.uuid4().hex[:16]


def format_traceparent(trace_id: str, span_id: str | None = None) -> str:
    """Render a W3C ``traceparent`` header value (version 00, sampled)."""
    return f"00-{trace_id}-{span_id or new_span_id()}-01"


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Parse a ``traceparent`` header; ``None`` on anything malformed.

    Strict on shape (version ``00``-``fe``, 32+16 lowercase hex, non-zero
    ids) and deliberately forgiving on failure: a bad header degrades to
    "start a new trace", never to an error — propagation is advisory.
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    version, trace_id, span_id, _flags = match.groups()
    if version == "ff" or set(trace_id) == {"0"} or set(span_id) == {"0"}:
        return None
    return TraceContext(trace_id, span_id)


class _TraceBinding:
    """Context manager installing a :class:`TraceContext` for the block."""

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: "TraceContext") -> None:
        self._ctx = ctx

    def __enter__(self) -> TraceContext:
        self._token = _TRACE_CTX.set(self._ctx)
        return self._ctx

    def __exit__(self, *exc_info: object) -> bool:
        _TRACE_CTX.reset(self._token)
        return False


def bind_trace(context: "TraceContext | str") -> _TraceBinding:
    """Bind a trace context (or bare trace id) for the enclosed block.

    Spans opened inside carry its ``trace_id``; the server binds the
    inbound ``traceparent`` here so handler spans stitch into the caller's
    trace.
    """
    if isinstance(context, str):
        context = TraceContext(context)
    return _TraceBinding(context)


def current_trace_context() -> TraceContext | None:
    """The bound distributed trace context, if any."""
    return _TRACE_CTX.get()


def current_trace_id() -> str | None:
    """The bound distributed trace id, if any (for provenance / errors)."""
    ctx = _TRACE_CTX.get()
    return ctx.trace_id if ctx is not None else None


class TrialRef:
    """Mutable trial-id cell shared by every span/event of one trial.

    Created before the trial id exists (executors see configurations, not
    trials); the session binds ``trial_id`` when the optimizer records the
    trial, and exports resolve through the reference afterwards.
    """

    __slots__ = ("trial_id",)

    def __init__(self) -> None:
        self.trial_id: int | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrialRef(trial_id={self.trial_id})"


class OpSpan:
    """One timed operation: name, tree linkage, clocks, and attributes.

    Times are dual-recorded: ``t0``/``t1`` on the monotonic clock (for
    durations and intra-trace ordering) and ``wall0`` on the epoch clock
    (so exported traces remain meaningful across sessions and machines).
    """

    __slots__ = ("name", "span_id", "parent_id", "trace_id", "t0", "t1", "wall0", "status", "error", "thread", "attributes", "ref")

    def __init__(self, name: str, parent_id: int | None, ref: TrialRef | None, attributes: dict[str, Any]) -> None:
        self.name = name
        self.span_id = next(_ids)
        self.parent_id = parent_id
        ctx = _TRACE_CTX.get()
        self.trace_id = ctx.trace_id if ctx is not None else None
        self.t0 = time.monotonic()
        self.t1 = self.t0
        self.wall0 = time.time()
        self.status = "ok"
        self.error: str | None = None
        self.thread = threading.current_thread().name
        self.attributes = attributes
        self.ref = ref

    @property
    def trial_id(self) -> int | None:
        return self.ref.trial_id if self.ref is not None else None

    @property
    def duration_s(self) -> float:
        return max(0.0, self.t1 - self.t0)

    def set(self, **attrs: Any) -> "OpSpan":
        """Attach attributes to a live span; chainable."""
        self.attributes.update(attrs)
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "trial_id": self.trial_id,
            "t0_s": self.t0,
            "started_at": self.wall0,
            "duration_s": self.duration_s,
            "status": self.status,
            "error": self.error,
            "thread": self.thread,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OpSpan({self.name!r}, id={self.span_id}, parent={self.parent_id}, trial={self.trial_id})"


class _NullSpan:
    """Shared no-op context manager — the disabled-telemetry fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager recording one :class:`OpSpan` into the active trace."""

    __slots__ = ("_sink", "_name", "_attrs", "_op", "_token")

    def __init__(self, sink: SpanSink, name: str, attrs: dict[str, Any]) -> None:
        self._sink = sink
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> OpSpan:
        parent = _PARENT.get()
        op = OpSpan(
            self._name,
            parent_id=parent.span_id if parent is not None else None,
            ref=_TRIAL.get(),
            attributes=self._attrs,
        )
        self._op = op
        self._token = _PARENT.set(op)
        return op

    def __exit__(self, exc_type, exc, tb) -> bool:
        _PARENT.reset(self._token)
        op = self._op
        op.t1 = time.monotonic()
        if exc_type is not None:
            op.status = "error"
            op.error = f"{exc_type.__name__}: {exc}"
        self._sink.record_op(op)
        return False


def span(name: str, **attributes: Any):
    """Open a timed operation span; no-op when no trace is active.

    Yields the live :class:`OpSpan` (or ``None`` when inactive), so call
    sites can attach late attributes with ``op.set(...)`` guarded by
    ``if op is not None``.
    """
    sink = _ACTIVE.get()
    if sink is None:
        return _NULL_SPAN
    return _LiveSpan(sink, name, attributes)


class _NullScope:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class _TrialScope:
    """Establishes (or joins) the trial reference for the current context."""

    __slots__ = ("_ref", "_token")

    def __enter__(self) -> TrialRef:
        current = _TRIAL.get()
        if current is not None:
            # Join the enclosing trial (e.g. the session opened the scope
            # around suggest + dispatch for a batch of one).
            self._ref = current
            self._token = None
        else:
            self._ref = TrialRef()
            self._token = _TRIAL.set(self._ref)
        return self._ref

    def __exit__(self, *exc_info: object) -> bool:
        if self._token is not None:
            _TRIAL.reset(self._token)
        return False


def trial_scope():
    """Scope spans/events to one trial; joins an enclosing scope if present.

    No-op (yields ``None``) when no trace is active.
    """
    if _ACTIVE.get() is None:
        return _NULL_SCOPE
    return _TrialScope()


def emit_event(kind: str, severity: str = "info", message: str = "", **attributes: Any) -> None:
    """Record a structured event into the active trace's event log.

    Strict no-op when no trace is active. The event inherits the current
    trial reference, so per-trial error tables resolve automatically.
    """
    sink = _ACTIVE.get()
    if sink is None:
        return
    sink.record_event(kind, severity, message, _TRIAL.get(), attributes)


# -- activation ---------------------------------------------------------------

def activate(trace: SpanSink):
    """Make ``trace`` the span/event sink for the current context.

    Returns a token for :func:`deactivate`. Prefer the managed form
    :meth:`SessionTrace.activated`.
    """
    return _ACTIVE.set(trace)


def deactivate(token=None) -> None:
    """Undo :func:`activate` (with its token) or force-clear the sink."""
    if token is not None:
        _ACTIVE.reset(token)
    else:
        _ACTIVE.set(None)


def active_trace() -> SpanSink | None:
    """The trace currently receiving spans/events, if any."""
    return _ACTIVE.get()


def current_op() -> OpSpan | None:
    """The innermost open span in this context, if any."""
    return _PARENT.get()


def current_trial_ref() -> TrialRef | None:
    """The trial reference of the enclosing :func:`trial_scope`, if any."""
    return _TRIAL.get()
