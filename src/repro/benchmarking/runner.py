"""Benchmark execution strategies: repeats, aggregation, early abort.

The "To Learn More … Run More Trials!" slide: repeats fight noise at a
cost; *early abort* "reports a bad score sooner — works well for
elapsed-time-based benchmarks, e.g. TPC-H": once a trial is provably worse
than the best known, stop paying for it.
"""

from __future__ import annotations

from typing import Callable

from typing import TYPE_CHECKING

from ..core import Objective
from ..exceptions import ReproError, TrialAbortedError
from ..telemetry.spans import emit_event, span
from ..space import Configuration
from ..workloads import Workload
from .measurement import Measurement, aggregate_measurements

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from ..sysim.system import SimulatedSystem

__all__ = ["BenchmarkRunner", "EarlyAbortPolicy"]


class EarlyAbortPolicy:
    """Abort elapsed-time trials once they exceed ``factor ×`` the best time.

    For a runtime-style metric (lower is better, metric == cost), the
    benchmark can be stopped at the bound: we then know a *lower bound* on
    the true value and have only paid the bound. The censored value reported
    is the bound itself.
    """

    def __init__(self, factor: float = 2.0) -> None:
        if factor <= 1.0:
            raise ReproError(f"abort factor must be > 1, got {factor}")
        self.factor = float(factor)
        self.best: float | None = None
        self.aborts = 0
        self.saved_cost = 0.0

    def bound(self) -> float | None:
        return None if self.best is None else self.best * self.factor

    def register(self, value: float) -> None:
        if self.best is None or value < self.best:
            self.best = float(value)

    def check(self, value: float, metric_name: str) -> float:
        """Returns the (possibly censored) value; raises on abort."""
        bound = self.bound()
        self.register(min(value, bound) if bound is not None else value)
        if bound is not None and value > bound:
            self.aborts += 1
            self.saved_cost += value - bound
            error = TrialAbortedError(
                f"aborted at {bound:.4g} (true value {value:.4g})"
            )
            error.censored_metrics = {metric_name: bound}
            error.cost = bound
            raise error
        return value


class BenchmarkRunner:
    """Evaluator factory over a simulated system with noise strategies.

    Parameters
    ----------
    system, workload:
        What to benchmark.
    objective:
        The metric being optimized (used by early abort).
    duration_s:
        Benchmark length per run.
    repeats:
        Naive noise strategy: run N times and aggregate (slide 70's
        "costly" baseline).
    aggregate:
        "mean" or "median" across repeats.
    early_abort:
        Optional :class:`EarlyAbortPolicy` (only sensible for runtime-like
        metrics where metric ≈ cost).
    runtime_metric:
        When True, trial cost is the measured metric value itself (TPC-H
        style) rather than the fixed duration.
    trace:
        Optional :class:`~repro.telemetry.SessionTrace`; when given, the
        runner counts benchmark runs/seconds/aborts into it, so the JSON
        trace shows where the benchmark budget actually went.
    """

    def __init__(
        self,
        system: SimulatedSystem,
        workload: Workload,
        objective: Objective,
        duration_s: float = 60.0,
        repeats: int = 1,
        aggregate: str = "median",
        early_abort: EarlyAbortPolicy | None = None,
        runtime_metric: bool = False,
        trace=None,
    ) -> None:
        if repeats < 1:
            raise ReproError(f"repeats must be >= 1, got {repeats}")
        self.system = system
        self.workload = workload
        self.objective = objective
        self.duration_s = duration_s
        self.repeats = int(repeats)
        self.aggregate = aggregate
        self.early_abort = early_abort
        self.runtime_metric = runtime_metric
        self.total_benchmark_seconds = 0.0
        self.trace = trace

    def _count(self, name: str, value: float = 1.0) -> None:
        if self.trace is not None:
            self.trace.incr(f"benchmark.{name}", value)

    def measure(self, config: Configuration) -> Measurement:
        with span("benchmark.measure", repeats=self.repeats, workload=self.workload.name):
            runs = [
                self.system.run(self.workload, duration_s=self.duration_s, config=config)
                for _ in range(self.repeats)
            ]
            return aggregate_measurements(runs, how=self.aggregate)

    def __call__(self, config: Configuration):
        """Evaluator: returns (metrics dict, cost)."""
        m = self.measure(config)
        value = m.metric(self.objective.name)
        cost = value * self.repeats if self.runtime_metric else m.elapsed_s
        self._count("runs", self.repeats)
        if self.early_abort is not None:
            try:
                value = self.early_abort.check(value, self.objective.name)
            except TrialAbortedError as abort:
                paid = getattr(abort, "cost", cost)
                self.total_benchmark_seconds += paid
                self._count("aborts")
                self._count("seconds", paid)
                emit_event(
                    "benchmark.early_abort", severity="info", message=str(abort),
                    workload=self.workload.name, paid_cost=float(paid),
                    true_value=float(value),
                )
                if self.trace is not None:
                    self.trace.gauge("benchmark.seconds_saved", self.early_abort.saved_cost)
                raise
        self.total_benchmark_seconds += cost
        self._count("seconds", cost)
        metrics = dict(m.metrics())
        metrics[self.objective.name] = value
        return metrics, cost


def evaluator_from_callable(
    fn: Callable[[Configuration], float],
    cost: float = 1.0,
):
    """Wrap a plain ``config -> value`` function as a session evaluator."""

    def evaluate(config: Configuration):
        return fn(config), cost

    return evaluate
