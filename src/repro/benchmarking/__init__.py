"""Benchmark execution: measurements, repeats, early abort, duet, TUNA."""

from .duet import DuetBenchmarkRunner, DuetOutcome
from .measurement import LATENCY_PERCENTILES, Measurement, aggregate_measurements
from .runner import BenchmarkRunner, EarlyAbortPolicy, evaluator_from_callable
from .tuna import TunaObservation, TunaRunner

__all__ = [
    "DuetBenchmarkRunner",
    "DuetOutcome",
    "LATENCY_PERCENTILES",
    "Measurement",
    "aggregate_measurements",
    "BenchmarkRunner",
    "EarlyAbortPolicy",
    "evaluator_from_callable",
    "TunaObservation",
    "TunaRunner",
]
