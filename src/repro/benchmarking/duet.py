"""Duet benchmarking — "lean in to the noise" (slide 71).

Run the baseline and the trial configuration *side by side on the same
machine at the same time*, so both experience the same co-tenant
interference, and report the normalised relative difference. Originally
built for CI performance regressions (ICPE 2020); here it is a noise
strategy for cloud tuning: the relative score is far more stable than
either absolute measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from ..core import Objective
from ..exceptions import ReproError
from ..space import Configuration
from ..workloads import Workload
from .measurement import Measurement

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from ..sysim.cloud import Machine
    from ..sysim.system import SimulatedSystem

__all__ = ["DuetBenchmarkRunner", "DuetOutcome"]


@dataclass(frozen=True)
class DuetOutcome:
    """Paired measurement of (baseline, candidate) under shared noise."""

    baseline: Measurement
    candidate: Measurement
    metric: str

    @property
    def relative(self) -> float:
        """candidate / baseline on the chosen metric (1.0 = no change)."""
        b = self.baseline.metric(self.metric)
        if b == 0:
            raise ReproError(f"baseline metric {self.metric!r} is zero")
        return self.candidate.metric(self.metric) / b


class DuetBenchmarkRunner:
    """Paired-run evaluator reporting noise-cancelled relative scores.

    The evaluator returns ``relative × calibration`` where ``calibration``
    is the baseline's quiet-environment metric value — so scores stay on
    the metric's natural scale while inheriting the duet's variance
    reduction.
    """

    def __init__(
        self,
        system: SimulatedSystem,
        workload: Workload,
        objective: Objective,
        baseline: Configuration | None = None,
        duration_s: float = 60.0,
    ) -> None:
        self.system = system
        self.workload = workload
        self.objective = objective
        self.baseline = baseline if baseline is not None else system.space.default_configuration()
        self.duration_s = duration_s
        self._calibration: float | None = None

    def run_pair(self, candidate: Configuration, machine: Machine | None = None) -> DuetOutcome:
        """One duet: both configs measured under one shared transient draw."""
        system = self.system
        if not system.space.is_feasible(candidate):
            from ..exceptions import SystemCrashError

            raise SystemCrashError(f"infeasible configuration: {candidate}")
        machine = machine or system._home_machine
        system.env.advance(machine)
        shared = system.env.transient_draw()
        profile_b = system.performance(self.baseline, self.workload)
        profile_c = system.performance(candidate, self.workload)
        m_b = system._measure(profile_b, self.workload, self.duration_s, machine, shared_draw=shared)
        m_c = system._measure(profile_c, self.workload, self.duration_s, machine, shared_draw=shared)
        return DuetOutcome(m_b, m_c, self.objective.name)

    def _calibrate(self) -> float:
        if self._calibration is None:
            profile = self.system.performance(self.baseline, self.workload)
            from ..sysim.cloud import Machine

            quiet = Machine("calib", self.system.env.vm, speed_factor=1.0)
            m = self.system._measure(profile, self.workload, self.duration_s, quiet, shared_draw=1.0)
            self._calibration = m.metric(self.objective.name)
        return self._calibration

    def __call__(self, candidate: Configuration):
        """Evaluator: duet-normalised metric on the baseline's scale.

        Cost is 2× duration — the duet's price is running the baseline
        alongside every candidate.
        """
        outcome = self.run_pair(candidate)
        value = outcome.relative * self._calibrate()
        return {self.objective.name: value}, 2.0 * self.duration_s
