"""TUNA — Tuning Unstable and Noisy cloud Applications (Eurosys 2025, slide 71).

The slide's recipe:

* **Successive halving** — "progressively run on multiple VMs iff the
  config looks good", sampling noise across a cluster;
* **outlier elimination** — drop measurements from machines whose noise
  makes them unrepresentative;
* **sideband signals + a model** — regress the score on an observable
  machine-load signal and report the load-corrected residual, registering
  more *stable* scores with the optimizer.

Result (reproduced in E16): faster learning and more robust configs than
naively repeating measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from typing import TYPE_CHECKING

from ..core import Objective
from ..exceptions import ReproError
from ..space import Configuration
from ..workloads import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from ..sysim.cloud import Machine
    from ..sysim.system import SimulatedSystem

__all__ = ["TunaRunner", "TunaObservation"]


@dataclass
class TunaObservation:
    """One raw (machine, load, score) sample collected by TUNA."""

    machine_id: str
    load: float
    value: float


@dataclass
class _LoadModel:
    """Online linear model of metric value vs sideband load signal."""

    n: int = 0
    sum_x: float = 0.0
    sum_y: float = 0.0
    sum_xx: float = 0.0
    sum_xy: float = 0.0
    samples: list[tuple[float, float]] = field(default_factory=list)

    def add(self, load: float, value: float) -> None:
        self.n += 1
        self.sum_x += load
        self.sum_y += value
        self.sum_xx += load * load
        self.sum_xy += load * value
        self.samples.append((load, value))

    @property
    def slope(self) -> float:
        if self.n < 3:
            return 0.0
        denom = self.n * self.sum_xx - self.sum_x**2
        if abs(denom) < 1e-12:
            return 0.0
        return (self.n * self.sum_xy - self.sum_x * self.sum_y) / denom

    @property
    def mean_load(self) -> float:
        return self.sum_x / self.n if self.n else 0.0

    def corrected(self, load: float, value: float) -> float:
        """Value adjusted to the reference (mean) load level."""
        return value - self.slope * (load - self.mean_load)


class TunaRunner:
    """Noise-robust evaluator: halving across machines + load correction.

    Parameters
    ----------
    machines:
        The VM pool noise is sampled across.
    rungs:
        Machines used per rung, e.g. ``(1, 3)``: every config runs on one
        machine; only configs looking better than ``promote_tolerance ×``
        the incumbent graduate to the wider rung.
    outlier_z:
        Measurements more than this many MADs from the rung median are
        discarded before aggregation.
    """

    def __init__(
        self,
        system: SimulatedSystem,
        workload: Workload,
        objective: Objective,
        machines: list[Machine],
        rungs: tuple[int, ...] = (1, 3),
        promote_tolerance: float = 1.15,
        outlier_z: float = 3.0,
        duration_s: float = 60.0,
        seed: int | None = None,
    ) -> None:
        if not machines:
            raise ReproError("TUNA needs a machine pool")
        if any(r < 1 for r in rungs) or list(rungs) != sorted(rungs):
            raise ReproError(f"rungs must be ascending positive counts, got {rungs}")
        if rungs[-1] > len(machines):
            raise ReproError(f"largest rung {rungs[-1]} exceeds pool size {len(machines)}")
        self.system = system
        self.workload = workload
        self.objective = objective
        self.machines = list(machines)
        self.rungs = tuple(rungs)
        self.promote_tolerance = float(promote_tolerance)
        self.outlier_z = float(outlier_z)
        self.duration_s = duration_s
        self.rng = np.random.default_rng(seed)
        self.load_model = _LoadModel()
        self.best_score: float | None = None
        self.observations: list[TunaObservation] = []

    def _run_on(self, config: Configuration, machine: Machine) -> TunaObservation:
        m = self.system.run(self.workload, duration_s=self.duration_s, machine=machine, config=config)
        load = self.system.env.sideband_signal(machine)
        value = m.metric(self.objective.name)
        obs = TunaObservation(machine.machine_id, load, value)
        self.observations.append(obs)
        self.load_model.add(load, value)
        return obs

    def _aggregate(self, observations: list[TunaObservation]) -> float:
        corrected = np.array(
            [self.load_model.corrected(o.load, o.value) for o in observations]
        )
        if len(corrected) >= 3:
            med = np.median(corrected)
            mad = np.median(np.abs(corrected - med)) or 1e-12
            keep = np.abs(corrected - med) <= self.outlier_z * 1.4826 * mad
            corrected = corrected[keep] if keep.any() else corrected
        return float(np.median(corrected))

    def __call__(self, config: Configuration):
        """Evaluator: halving rungs, load-corrected median, total cost."""
        obj = self.objective
        cost = 0.0
        collected: list[TunaObservation] = []
        value = None
        for rung_idx, n_machines in enumerate(self.rungs):
            pool = list(self.machines)
            self.rng.shuffle(pool)
            need = n_machines - len(collected)
            for machine in pool[:max(0, need)]:
                collected.append(self._run_on(config, machine))
                cost += self.duration_s
            value = self._aggregate(collected)
            score = obj.score(value)
            if self.best_score is None or score < self.best_score:
                self.best_score = score
            elif rung_idx < len(self.rungs) - 1:
                tol = abs(self.best_score) * (self.promote_tolerance - 1.0)
                if score > self.best_score + tol:
                    break  # not promising: stop sampling wider rungs
        return {obj.name: float(value)}, cost
