"""Benchmark measurements: the metrics a trial produces.

A :class:`Measurement` is what one benchmark run against a system yields —
throughput, the latency distribution summary, resource utilisation, and the
wall-clock cost of obtaining it. The tutorial's objectives slide ("What are
we Autotuning for?") lists exactly these: latency (avg/median/P95),
throughput, cost, resource usage.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping

import numpy as np

from ..exceptions import ReproError

__all__ = ["Measurement", "aggregate_measurements", "LATENCY_PERCENTILES"]

#: Percentiles reported by default.
LATENCY_PERCENTILES = (50, 95, 99)


@dataclass(frozen=True)
class Measurement:
    """One benchmark run's results.

    All latencies in milliseconds, throughput in operations/second,
    utilisations in [0, 1], elapsed time in seconds.
    """

    throughput: float
    latency_avg: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    cpu_util: float = 0.0
    mem_util: float = 0.0
    io_util: float = 0.0
    elapsed_s: float = 60.0
    machine_id: str = "local"
    extra: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.throughput < 0:
            raise ReproError(f"throughput must be >= 0, got {self.throughput}")
        lat = (self.latency_avg, self.latency_p50, self.latency_p95, self.latency_p99)
        if any(v < 0 for v in lat):
            raise ReproError(f"latencies must be >= 0, got {lat}")
        if self.elapsed_s <= 0:
            raise ReproError(f"elapsed_s must be positive, got {self.elapsed_s}")

    def metrics(self) -> dict[str, float]:
        """Flat metric mapping consumed by optimizers."""
        out = {
            "throughput": self.throughput,
            "latency_avg": self.latency_avg,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "cpu_util": self.cpu_util,
            "mem_util": self.mem_util,
            "io_util": self.io_util,
            "elapsed_s": self.elapsed_s,
        }
        out.update(self.extra)
        return out

    def metric(self, name: str) -> float:
        try:
            return self.metrics()[name]
        except KeyError:
            raise ReproError(f"no metric {name!r}; have {sorted(self.metrics())}") from None

    def with_extra(self, **extra: float) -> "Measurement":
        merged = dict(self.extra)
        merged.update({k: float(v) for k, v in extra.items()})
        return replace(self, extra=merged)


def aggregate_measurements(
    measurements: Iterable[Measurement],
    how: str = "median",
) -> Measurement:
    """Combine repeated runs of the same configuration.

    ``how`` is "mean" or "median" — the naive noise strategy from the "To
    Learn More … Get Stable!" slide (*run N times, take aggregate*).
    Elapsed time sums (you paid for every run); utilisations average.
    """
    runs = list(measurements)
    if not runs:
        raise ReproError("cannot aggregate zero measurements")
    if how not in ("mean", "median"):
        raise ReproError(f"how must be 'mean' or 'median', got {how!r}")
    agg = np.mean if how == "mean" else np.median

    def over(attr: str) -> float:
        return float(agg([getattr(m, attr) for m in runs]))

    extra_keys = set().union(*(m.extra.keys() for m in runs))
    extra = {
        k: float(agg([m.extra[k] for m in runs if k in m.extra])) for k in extra_keys
    }
    return Measurement(
        throughput=over("throughput"),
        latency_avg=over("latency_avg"),
        latency_p50=over("latency_p50"),
        latency_p95=over("latency_p95"),
        latency_p99=over("latency_p99"),
        cpu_util=float(np.mean([m.cpu_util for m in runs])),
        mem_util=float(np.mean([m.mem_util for m in runs])),
        io_util=float(np.mean([m.io_util for m in runs])),
        elapsed_s=float(sum(m.elapsed_s for m in runs)),
        machine_id=runs[0].machine_id if len({m.machine_id for m in runs}) == 1 else "multiple",
        extra=extra,
    )
