"""Simulated systems substrate: DBMS, Redis, Spark, cloud noise, telemetry."""

from .cloud import QUIET_CLOUD, VM_SIZES, CloudEnvironment, Machine, VMSize
from .dbms import FLUSH_METHODS, SimulatedDBMS
from .nginx import NginxServer, web_workload
from .redis import RedisServer, redis_benchmark_workload
from .spark import SparkCluster
from .system import KnobLevel, PerfProfile, SimulatedSystem
from .telemetry import TELEMETRY_CHANNELS, TelemetryTrace, generate_telemetry

__all__ = [
    "QUIET_CLOUD",
    "VM_SIZES",
    "CloudEnvironment",
    "Machine",
    "VMSize",
    "FLUSH_METHODS",
    "SimulatedDBMS",
    "NginxServer",
    "web_workload",
    "RedisServer",
    "redis_benchmark_workload",
    "SparkCluster",
    "KnobLevel",
    "PerfProfile",
    "SimulatedSystem",
    "TELEMETRY_CHANNELS",
    "TelemetryTrace",
    "generate_telemetry",
]
