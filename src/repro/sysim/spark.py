"""Simulated Spark cluster — the tutorial's "Spark Tuning Game" target.

The motivating exercise asks attendees to hand-tune TPC-H Q1 runtime in at
most 100 tries. This model reproduces the game's difficulty: executor
sizing, shuffle parallelism, and memory fractions interact, with spill
cliffs and task-overhead walls, so greedy single-knob reasoning stalls
while a model-guided tuner keeps improving.
"""

from __future__ import annotations

import math
from typing import Mapping

from ..exceptions import ReproError, SystemCrashError
from ..space import (
    BooleanParameter,
    CategoricalParameter,
    Configuration,
    ConfigurationSpace,
    FloatParameter,
    IntegerParameter,
)
from ..workloads import TPCH_QUERIES, TpchQuery, Workload, tpch
from .system import KnobLevel, PerfProfile, SimulatedSystem

__all__ = ["SparkCluster"]

#: Single-core cost of scanning one GB (seconds).
_SCAN_S_PER_GB = 8.0
#: Single-core cost of shuffling one GB (seconds).
_SHUFFLE_S_PER_GB = 20.0
#: Scheduling overhead per task (seconds).
_TASK_OVERHEAD_S = 0.012


class SparkCluster(SimulatedSystem):
    """A Spark cluster of ``n_nodes`` worker VMs running TPC-H queries."""

    IMPORTANT_KNOBS = (
        "executor_instances",
        "executor_cores",
        "executor_memory_mb",
        "shuffle_partitions",
    )

    def __init__(self, n_nodes: int = 10, env=None, seed: int | None = None) -> None:
        if n_nodes < 1:
            raise ReproError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = int(n_nodes)
        super().__init__(env=env, seed=seed)

    def build_space(self) -> ConfigurationSpace:
        space = ConfigurationSpace("spark")
        space.add(IntegerParameter("executor_instances", 1, 50, default=2, log=True))
        space.add(IntegerParameter("executor_cores", 1, 8, default=2))
        space.add(IntegerParameter("executor_memory_mb", 512, 16_384, default=2048, log=True))
        space.add(IntegerParameter("shuffle_partitions", 8, 2000, default=200, log=True))
        space.add(FloatParameter("memory_fraction", 0.3, 0.9, default=0.6, quantization=0.05))
        space.add(IntegerParameter("broadcast_threshold_mb", 1, 512, default=10, log=True))
        space.add(BooleanParameter("compress_shuffle", default=True))
        space.add(CategoricalParameter("serializer", ["java", "kryo"], default="java"))
        space.add(BooleanParameter("speculation", default=False))
        return space

    def knob_levels(self) -> Mapping[str, KnobLevel]:
        # Spark session configs apply per job: all runtime.
        return {}

    # -- cluster capacity ------------------------------------------------------
    @property
    def total_cluster_cores(self) -> int:
        return self.n_nodes * self.env.vm.vcpus

    @property
    def total_cluster_ram_mb(self) -> int:
        return self.n_nodes * self.env.vm.ram_mb

    def _check_allocatable(self, config: Configuration) -> None:
        want_mem = config["executor_instances"] * config["executor_memory_mb"]
        if want_mem > 0.9 * self.total_cluster_ram_mb:
            raise SystemCrashError(
                f"cannot allocate {want_mem} MB of executors on a "
                f"{self.total_cluster_ram_mb} MB cluster"
            )
        want_cores = config["executor_instances"] * config["executor_cores"]
        if want_cores > 2 * self.total_cluster_cores:
            raise SystemCrashError(
                f"requested {want_cores} executor cores on a "
                f"{self.total_cluster_cores}-core cluster"
            )
        if config["executor_memory_mb"] < 300 * config["executor_cores"]:
            raise SystemCrashError(
                "executor OOM: less than 300 MB per core "
                f"({config['executor_memory_mb']} MB / {config['executor_cores']} cores)"
            )

    # -- query runtime model ------------------------------------------------------
    def query_runtime_s(
        self,
        query: int | TpchQuery,
        scale_factor: float = 10.0,
        config: Configuration | None = None,
    ) -> float:
        """Noise-free runtime of one TPC-H query at the given scale factor."""
        q = TPCH_QUERIES[query] if isinstance(query, int) else query
        if scale_factor <= 0:
            raise ReproError(f"scale_factor must be positive, got {scale_factor}")
        config = config if config is not None else self.current_config
        self._check_allocatable(config)

        instances = config["executor_instances"]
        cores = config["executor_cores"]
        total_cores = instances * cores
        # Oversubscribed clusters timeshare.
        effective_cores = min(total_cores, self.total_cluster_cores)

        # --- scan phase (Amdahl) ---
        scan_gb = q.scan_gb_per_sf * scale_factor
        scan_work = scan_gb * _SCAN_S_PER_GB
        scan_s = scan_work * ((1.0 - q.parallel_fraction) + q.parallel_fraction / effective_cores)

        # --- shuffle phase ---
        shuffle_gb = scan_gb * q.selectivity * (0.3 + q.join_intensity)
        # Broadcast joins skip the shuffle of the small side.
        small_side_mb = 24.0 * scale_factor * q.join_intensity
        if q.join_intensity > 0 and config["broadcast_threshold_mb"] >= small_side_mb:
            shuffle_gb *= 0.6
        shuffle_work = shuffle_gb * _SHUFFLE_S_PER_GB
        if config["compress_shuffle"]:
            shuffle_work *= 0.75
        if config["serializer"] == "kryo":
            shuffle_work *= 0.80
        shuffle_s = shuffle_work / math.sqrt(max(1.0, effective_cores))

        # --- partitioning: too few starves cores, too many drowns in tasks ---
        partitions = config["shuffle_partitions"]
        starve = max(1.0, effective_cores / partitions)
        # Per-task cost has a parallel part and a serial driver-side part
        # (scheduling is centralised), so drowning the driver in tiny tasks
        # hurts no matter how many cores there are.
        task_overhead_s = (
            _TASK_OVERHEAD_S * partitions / max(1, effective_cores) * (2.0 + q.join_intensity)
            + 0.004 * partitions
        )
        if config["speculation"]:
            task_overhead_s *= 1.15  # duplicate attempts
            shuffle_s *= 0.95  # but stragglers hurt less

        # --- memory: spill when per-task execution memory is short ---
        exec_mem_mb = config["executor_memory_mb"] * config["memory_fraction"] / cores
        needed_mb = 1024.0 * scale_factor * (q.sort_intensity + q.join_intensity) / max(1, partitions) * 20.0
        spill = max(1.0, needed_mb / max(1.0, exec_mem_mb))
        spill_mult = 1.0 + 0.6 * math.log2(spill)

        runtime = (scan_s + shuffle_s * spill_mult) * starve + task_overhead_s + 1.0
        return float(runtime)

    # -- SimulatedSystem interface ---------------------------------------------------
    def performance(self, config: Configuration, workload: Workload) -> PerfProfile:
        """Aggregate profile: mix-average TPC-H query latency at the
        workload's scale factor."""
        sf = workload.scale_factor
        runtimes = [self.query_runtime_s(q, sf, config) for q in sorted(TPCH_QUERIES)]
        avg_s = sum(runtimes) / len(runtimes)
        total_cores = config["executor_instances"] * config["executor_cores"]
        return PerfProfile(
            latency_avg_ms=avg_s * 1000.0,
            latency_spread=2.2,
            throughput_cap=workload.concurrency / max(avg_s, 1e-6),
            cpu_util=min(1.0, total_cores / self.total_cluster_cores),
            mem_util=min(
                1.0,
                config["executor_instances"] * config["executor_memory_mb"] / self.total_cluster_ram_mb,
            ),
            io_util=0.5,
        )

    def q1_game_evaluator(self, scale_factor: float = 10.0, noise: bool = True):
        """Evaluator for the tuning game: TPC-H Q1 runtime in seconds."""

        def evaluate(config: Configuration):
            runtime = self.query_runtime_s(1, scale_factor, config)
            if noise:
                machine = self._home_machine
                self.env.advance(machine)
                runtime *= self.env.slowdown(machine)
            return runtime, runtime

        return evaluate
