"""Simulated DBMS: a PostgreSQL/MySQL-flavoured analytical performance model.

This is the substrate for the offline-tuning experiments. It exposes ~20
knobs of wildly varying importance — mirroring the tutorial's "Why is
Autotuning Hard?" point that real systems have hundreds of knobs of which a
handful matter — including:

* a **categorical** knob (``flush_method``, the tutorial's
  ``innodb_flush_method`` example),
* **conditional** knobs (``jit_above_cost`` only matters when ``jit=on`` —
  the structured-space example),
* a **constraint** (WAL buffer must fit in the buffer pool — the
  chunk-size-style example), and
* a **crash region** (memory over-commit ⇒ :class:`SystemCrashError`), the
  knowledge-transfer slide's "bad samples: reuse everywhere" case.

The model is a queueing-flavoured composition of cache hit ratio, I/O cost,
commit durability cost, sort spill, and thread contention. Absolute numbers
are stylised; the *structure* (which knobs matter for which workloads, where
the cliffs are) is what experiments rely on.
"""

from __future__ import annotations

import math
from typing import Mapping

from ..exceptions import SystemCrashError
from ..space import (
    BooleanParameter,
    CategoricalParameter,
    Configuration,
    ConfigurationSpace,
    EqualsCondition,
    FloatParameter,
    IntegerParameter,
    LinearConstraint,
)
from ..workloads import Workload
from .system import KnobLevel, PerfProfile, SimulatedSystem

__all__ = ["SimulatedDBMS", "FLUSH_METHODS"]

#: Commit-path cost multiplier per flush method (lower = faster, less safe).
FLUSH_METHODS: dict[str, float] = {
    "fsync": 1.00,
    "O_DSYNC": 0.90,
    "littlesync": 0.80,
    "O_DIRECT": 0.70,
    "O_DIRECT_NO_FSYNC": 0.55,
    "nosync": 0.40,
}

#: Extra read-path efficiency for direct I/O (skips double buffering).
_DIRECT_READ_BONUS = {"O_DIRECT": 0.85, "O_DIRECT_NO_FSYNC": 0.85}

_LOG_LEVEL_COST = {"minimal": 0.98, "normal": 1.0, "verbose": 1.05, "debug": 1.18}


class SimulatedDBMS(SimulatedSystem):
    """A tunable relational DBMS running on a cloud VM.

    The VM shape comes from the environment; knob ranges scale with its RAM
    (an 8 GB box should not offer a 64 GB buffer pool — the marginal-
    constraints slide).
    """

    #: Ground truth for the knob-importance experiments (E14): these knobs
    #: carry almost all of the performance signal.
    IMPORTANT_KNOBS = (
        "buffer_pool_mb",
        "worker_threads",
        "flush_method",
        "work_mem_mb",
        "checkpoint_interval_s",
    )

    #: Knobs with a real but second-order effect.
    MINOR_KNOBS = (
        "wal_buffer_mb",
        "io_concurrency",
        "parallel_workers",
        "jit",
        "jit_above_cost",
        "compression",
        "log_level",
        "autovacuum_workers",
        "random_page_cost",
    )

    #: Knobs with (near-)zero effect — importance methods must rank them last.
    JUNK_KNOBS = (
        "stats_target",
        "deadlock_timeout_ms",
        "tcp_keepalive_s",
        "cursor_tuple_fraction",
        "geqo_threshold",
        "bgwriter_delay_ms",
        "temp_buffers_mb",
    )

    def build_space(self) -> ConfigurationSpace:
        ram = self.env.vm.ram_mb if hasattr(self, "env") else 16 * 1024
        space = ConfigurationSpace("dbms")
        space.add(IntegerParameter("buffer_pool_mb", 64, ram, default=128, log=True))
        space.add(IntegerParameter("worker_threads", 1, 256, default=8, log=True))
        space.add(CategoricalParameter("flush_method", list(FLUSH_METHODS), default="fsync"))
        space.add(IntegerParameter("work_mem_mb", 1, 2048, default=4, log=True))
        space.add(IntegerParameter("checkpoint_interval_s", 30, 3600, default=300, log=True))
        space.add(IntegerParameter("wal_buffer_mb", 1, 512, default=16, log=True))
        space.add(IntegerParameter("io_concurrency", 1, 64, default=2, log=True))
        space.add(IntegerParameter("parallel_workers", 0, 16, default=2))
        space.add(BooleanParameter("jit", default=False))
        space.add(IntegerParameter("jit_above_cost", 10_000, 10_000_000, default=100_000, log=True))
        space.add_condition(EqualsCondition("jit_above_cost", "jit", True))
        space.add(BooleanParameter("compression", default=False))
        space.add(CategoricalParameter("log_level", list(_LOG_LEVEL_COST), default="normal"))
        space.add(IntegerParameter("autovacuum_workers", 1, 16, default=3))
        space.add(FloatParameter("random_page_cost", 1.0, 8.0, default=4.0))
        # Junk knobs.
        space.add(IntegerParameter("stats_target", 10, 1000, default=100, log=True))
        space.add(IntegerParameter("deadlock_timeout_ms", 100, 10_000, default=1000, log=True))
        space.add(IntegerParameter("tcp_keepalive_s", 10, 600, default=60))
        space.add(FloatParameter("cursor_tuple_fraction", 0.01, 1.0, default=0.1))
        space.add(IntegerParameter("geqo_threshold", 2, 20, default=12))
        space.add(IntegerParameter("bgwriter_delay_ms", 10, 1000, default=200, log=True))
        space.add(IntegerParameter("temp_buffers_mb", 1, 256, default=8, log=True))
        # WAL buffers must fit comfortably inside the buffer pool — the
        # tutorial's innodb chunk-size-style closed-form constraint.
        space.add_constraint(
            LinearConstraint({"wal_buffer_mb": 1.0, "buffer_pool_mb": -0.5}, 0.0, name="wal_fits_bp")
        )
        return space

    def knob_levels(self) -> Mapping[str, KnobLevel]:
        return {
            "buffer_pool_mb": KnobLevel.STARTUP,
            "worker_threads": KnobLevel.STARTUP,
            "flush_method": KnobLevel.STARTUP,
            "wal_buffer_mb": KnobLevel.STARTUP,
            # everything else is runtime-adjustable
        }

    # -- memory accounting ----------------------------------------------------
    def memory_demand_mb(self, config: Configuration, workload: Workload) -> float:
        """Estimated peak memory use: buffer pool + per-thread work memory."""
        active_threads = min(config["worker_threads"], workload.concurrency)
        return (
            config["buffer_pool_mb"]
            + active_threads * config["work_mem_mb"] * 0.25
            + config["wal_buffer_mb"]
            + config["temp_buffers_mb"]
            + 256.0  # fixed overhead (code, catalogs, connections)
        )

    # -- performance model -------------------------------------------------------
    def performance(self, config: Configuration, workload: Workload) -> PerfProfile:
        ram = self.env.vm.ram_mb
        cores = self.env.vm.vcpus
        if self.memory_demand_mb(config, workload) > 0.92 * ram:
            raise SystemCrashError(
                f"DBMS OOM: demand {self.memory_demand_mb(config, workload):.0f} MB "
                f"exceeds {0.92 * ram:.0f} MB budget"
            )

        # --- cache hit ratio: small pools catch the hot set under skew ---
        coverage = min(1.0, config["buffer_pool_mb"] / workload.working_set_mb)
        hit_ratio = coverage ** (1.0 / (1.0 + 4.0 * workload.skew))

        # --- read paths ---
        direct_bonus = _DIRECT_READ_BONUS.get(config["flush_method"], 1.0)
        io_read_ms = 2.0 * direct_bonus / (1.0 + 0.30 * math.log2(config["io_concurrency"]))
        if config["compression"]:
            io_read_ms *= 0.70  # fewer bytes moved…
        point_read_ms = 0.05 + (1.0 - hit_ratio) * io_read_ms

        # Scans stream through data; size matters, parallel workers help.
        scan_base_ms = 4.0 * (workload.data_size_mb / 10_000.0) ** 0.5
        parallelism = 1.0 + 0.7 * min(config["parallel_workers"], max(1, cores - 1))
        scan_ms = scan_base_ms / parallelism
        scan_ms += (1.0 - hit_ratio) * io_read_ms * 2.0
        # Planner constant: scans plan best when random_page_cost matches the
        # (SSD-like) simulated storage, optimum near 1.5.
        scan_ms *= 1.0 + 0.04 * abs(config["random_page_cost"] - 1.5)
        # JIT pays off for big scans if the cost threshold lets it kick in.
        jit_overhead = 1.0
        if config["jit"]:
            query_cost = 1e4 + 1e5 * (workload.data_size_mb / 1000.0)
            if config["jit_above_cost"] <= query_cost:
                scan_ms *= 0.72  # compiled expressions
                jit_overhead = 1.02  # compilation overhead on the session
            else:
                jit_overhead = 1.01  # enabled but never triggers

        # Sort/join memory: undersized work_mem spills to disk.
        needed_mb = 4.0 + workload.sort_intensity * 64.0 * (workload.data_size_mb / 1000.0) ** 0.5
        spill = max(1.0, needed_mb / config["work_mem_mb"])
        sort_penalty = 1.0 + workload.sort_intensity * 0.5 * math.log2(spill)
        scan_ms *= sort_penalty

        # --- write path ---
        flush_mult = FLUSH_METHODS[config["flush_method"]]
        commit_ms = 0.10 + 1.5 * flush_mult * workload.commit_sensitivity
        wal_stall = 1.0 + 0.25 * max(0.0, math.log2(16.0 / config["wal_buffer_mb"]))
        ckpt = config["checkpoint_interval_s"]
        ckpt_write_penalty = 1.0 + 0.35 * (300.0 / ckpt) ** 0.5  # frequent ⇒ extra flushes
        write_ms = (0.08 + commit_ms) * wal_stall * ckpt_write_penalty
        if config["compression"]:
            write_ms *= 1.12  # CPU to compress on the write path
        # Autovacuum: too few workers ⇒ bloat slows writes; too many ⇒ interference.
        av = config["autovacuum_workers"]
        write_ms *= 1.0 + 0.03 * abs(av - 4) / 4.0 * workload.write_fraction

        # --- blend into one operation cost ---
        rf, sf = workload.read_fraction, workload.scan_fraction
        read_ms = (1.0 - sf) * point_read_ms + sf * scan_ms
        op_ms = rf * read_ms + (1.0 - rf) * write_ms
        op_ms *= jit_overhead
        op_ms *= _LOG_LEVEL_COST[config["log_level"]]
        # Junk knobs: deliberately negligible effects.
        op_ms *= 1.0 + 0.002 * abs(math.log10(config["stats_target"] / 100.0))
        op_ms *= 1.0 + 0.001 * abs(math.log10(config["bgwriter_delay_ms"] / 200.0))

        # --- concurrency: queueing for threads, contention past the cores ---
        threads = config["worker_threads"]
        queue_ratio = workload.concurrency / threads
        queue_mult = 1.0 + 0.15 * max(0.0, queue_ratio - 1.0) ** 0.7
        contention = 1.0 + 0.05 * max(0.0, threads - 4.0 * cores) / cores
        latency_ms = op_ms * queue_mult * contention

        # --- tail behaviour ---
        spread = 1.8 + 0.6 * (ckpt / 3600.0) ** 0.5 * workload.write_fraction
        spread += 0.3 * max(0.0, queue_ratio - 1.0) ** 0.5
        spread = min(spread, 6.0)

        # --- throughput ceiling ---
        # Threads overlap I/O waits, so the thread-count cap uses the full
        # operation time while the CPU cap only counts on-CPU work.
        io_wait_ms = (
            rf * (1.0 - sf) * (1.0 - hit_ratio) * io_read_ms
            + rf * sf * (1.0 - hit_ratio) * io_read_ms * 2.0
            + (1.0 - rf) * commit_ms * 0.9
        )
        cpu_ms = max(0.02, op_ms - io_wait_ms)
        thread_cap = threads * 1000.0 / (op_ms * contention)
        cpu_cap = cores * 2.0 * 1000.0 / (cpu_ms * contention)
        throughput_cap = min(thread_cap, cpu_cap)

        mem_util = self.memory_demand_mb(config, workload) / ram
        cpu_util = min(1.0, workload.concurrency * op_ms / (cores * 1000.0) * 0.4 + 0.1)
        io_util = min(1.0, (1.0 - hit_ratio) * 0.8 + workload.write_fraction * 0.3 * flush_mult)
        return PerfProfile(
            latency_avg_ms=latency_ms,
            latency_spread=spread,
            throughput_cap=throughput_cap,
            cpu_util=cpu_util,
            mem_util=mem_util,
            io_util=io_util,
        )
