"""Cloud execution environment: VM shapes, machine variance, noise.

"Cloud is noisy — despite systems improvements; unstable performance, w/o
config tuning" (tutorial, "To Learn More … Get Stable!"). This module
simulates exactly the noise structure that makes duet benchmarking and TUNA
work:

* **per-machine speed factors** — two VMs of the same size differ
  persistently (hardware generation, placement);
* **outlier machines** — a small fraction are persistently slow;
* **transient noise** — co-tenant interference varies within a machine over
  time, *correlated for measurements taken at the same moment on the same
  machine* (which is what duet benchmarking leans into);
* **sideband telemetry** — a noisy observable load signal per machine (what
  TUNA feeds its stability model).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ReproError

__all__ = ["VMSize", "Machine", "CloudEnvironment", "QUIET_CLOUD", "VM_SIZES"]


@dataclass(frozen=True)
class VMSize:
    """A virtual machine shape."""

    name: str
    vcpus: int
    ram_mb: int
    hourly_cost: float  # relative $/hour, used by cost objectives

    def __post_init__(self) -> None:
        if self.vcpus < 1 or self.ram_mb < 1:
            raise ReproError(f"invalid VM size: {self}")


#: A small catalogue of VM shapes (relative prices).
VM_SIZES: dict[str, VMSize] = {
    "small": VMSize("small", vcpus=2, ram_mb=8 * 1024, hourly_cost=0.10),
    "medium": VMSize("medium", vcpus=4, ram_mb=16 * 1024, hourly_cost=0.20),
    "large": VMSize("large", vcpus=8, ram_mb=32 * 1024, hourly_cost=0.40),
    "xlarge": VMSize("xlarge", vcpus=16, ram_mb=64 * 1024, hourly_cost=0.80),
}


@dataclass
class Machine:
    """One allocated VM instance with its persistent performance identity."""

    machine_id: str
    vm: VMSize
    speed_factor: float  # persistent: <1 = slow machine
    is_outlier: bool = False
    # Slowly varying co-tenant load in [0, 1]; updated by the environment.
    _load: float = field(default=0.2, repr=False)

    @property
    def load(self) -> float:
        return self._load


class CloudEnvironment:
    """Allocates machines and injects structured performance noise.

    Parameters
    ----------
    vm:
        VM shape every allocation uses (name or :class:`VMSize`).
    machine_spread:
        Std-dev of persistent log-speed across machines.
    outlier_fraction:
        Probability a machine is a persistent outlier.
    outlier_slowdown:
        Speed factor multiplier applied to outliers (e.g. 0.7 = 30 % slower).
    transient_noise:
        Std-dev of the per-measurement log-normal noise.
    load_volatility:
        How fast a machine's co-tenant load random-walks per run.
    """

    def __init__(
        self,
        vm: str | VMSize = "medium",
        machine_spread: float = 0.06,
        outlier_fraction: float = 0.08,
        outlier_slowdown: float = 0.7,
        transient_noise: float = 0.05,
        load_volatility: float = 0.15,
        seed: int | None = None,
    ) -> None:
        self.vm = VM_SIZES[vm] if isinstance(vm, str) else vm
        for name, value in [
            ("machine_spread", machine_spread),
            ("transient_noise", transient_noise),
            ("load_volatility", load_volatility),
        ]:
            if value < 0:
                raise ReproError(f"{name} must be >= 0, got {value}")
        if not 0.0 <= outlier_fraction < 1.0:
            raise ReproError(f"outlier_fraction must be in [0, 1), got {outlier_fraction}")
        if not 0.0 < outlier_slowdown <= 1.0:
            raise ReproError(f"outlier_slowdown must be in (0, 1], got {outlier_slowdown}")
        self.machine_spread = machine_spread
        self.outlier_fraction = outlier_fraction
        self.outlier_slowdown = outlier_slowdown
        self.transient_noise = transient_noise
        self.load_volatility = load_volatility
        self.rng = np.random.default_rng(seed)
        self._machines: dict[str, Machine] = {}

    # -- allocation ---------------------------------------------------------
    def allocate(self) -> Machine:
        """Provision a fresh VM with a new persistent identity."""
        machine_id = f"vm-{len(self._machines):04d}"
        speed = float(np.exp(self.rng.normal(0.0, self.machine_spread)))
        is_outlier = bool(self.rng.random() < self.outlier_fraction)
        if is_outlier:
            speed *= self.outlier_slowdown
        machine = Machine(machine_id, self.vm, speed, is_outlier, _load=float(self.rng.uniform(0.1, 0.4)))
        self._machines[machine_id] = machine
        return machine

    def allocate_pool(self, n: int) -> list[Machine]:
        return [self.allocate() for _ in range(n)]

    @property
    def machines(self) -> list[Machine]:
        return list(self._machines.values())

    # -- noise -------------------------------------------------------------
    def advance(self, machine: Machine) -> None:
        """Random-walk the machine's co-tenant load (call once per run)."""
        step = self.rng.normal(0.0, self.load_volatility)
        machine._load = float(np.clip(machine._load + step, 0.0, 1.0))

    def slowdown(self, machine: Machine, shared_draw: float | None = None) -> float:
        """Multiplicative latency slowdown for one run on ``machine``.

        ``shared_draw`` lets two side-by-side runs (duet benchmarking) share
        the same transient component: pass the value from
        :meth:`transient_draw` to both.
        """
        transient = shared_draw if shared_draw is not None else self.transient_draw()
        load_penalty = 1.0 + 0.8 * machine.load**2
        return load_penalty * transient / machine.speed_factor

    def transient_draw(self) -> float:
        """One log-normal transient noise multiplier (≥ 0)."""
        return float(np.exp(self.rng.normal(0.0, self.transient_noise)))

    def sideband_signal(self, machine: Machine) -> float:
        """Noisy observation of the machine's current load (TUNA sideband)."""
        return float(np.clip(machine.load + self.rng.normal(0.0, 0.05), 0.0, 1.0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CloudEnvironment(vm={self.vm.name!r}, machines={len(self._machines)}, "
            f"transient_noise={self.transient_noise})"
        )


def QUIET_CLOUD(vm: str = "medium", seed: int | None = None) -> CloudEnvironment:
    """A noise-free environment — the idealised lab the tutorial contrasts with."""
    return CloudEnvironment(
        vm=vm,
        machine_spread=0.0,
        outlier_fraction=0.0,
        transient_noise=0.0,
        load_volatility=0.0,
        seed=seed,
    )
