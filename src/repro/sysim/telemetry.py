"""Synthetic system telemetry — the data workload identification embeds.

"Data to Embed — Telemetry: Time Series. E.g., CPU load, Memory utilization,
Disk and Network I/O… Easy to collect; noisy!" (tutorial slide 90).

:func:`generate_telemetry` produces a multivariate utilisation time series
whose *shape* is a deterministic function of the workload's characteristics
(so similar workloads yield similar telemetry) plus configurable noise (so
identification is non-trivial).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ReproError
from ..workloads import Workload

__all__ = ["TelemetryTrace", "generate_telemetry", "TELEMETRY_CHANNELS"]

#: Channel order in every telemetry matrix.
TELEMETRY_CHANNELS = ("cpu", "mem", "disk_io", "net_io", "qps")


@dataclass(frozen=True)
class TelemetryTrace:
    """A (n_steps × n_channels) utilisation matrix with metadata."""

    workload_name: str
    data: np.ndarray  # shape (n_steps, 5), values roughly in [0, 1]
    step_seconds: float = 300.0

    def __post_init__(self) -> None:
        if self.data.ndim != 2 or self.data.shape[1] != len(TELEMETRY_CHANNELS):
            raise ReproError(
                f"telemetry must be (n_steps, {len(TELEMETRY_CHANNELS)}), got {self.data.shape}"
            )

    @property
    def n_steps(self) -> int:
        return int(self.data.shape[0])

    def channel(self, name: str) -> np.ndarray:
        try:
            return self.data[:, TELEMETRY_CHANNELS.index(name)]
        except ValueError:
            raise ReproError(f"unknown channel {name!r}; have {TELEMETRY_CHANNELS}") from None


def _base_levels(workload: Workload) -> np.ndarray:
    """Deterministic mean utilisation per channel from workload features."""
    conc = np.log10(workload.concurrency + 1.0) / 3.0  # ~[0, 1] for 1..1000
    cpu = np.clip(0.15 + 0.5 * conc + 0.25 * workload.scan_fraction * workload.read_fraction, 0.0, 0.95)
    mem = np.clip(0.10 + 0.08 * np.log10(workload.working_set_mb + 1.0), 0.0, 0.95)
    disk = np.clip(
        0.05 + 0.5 * workload.write_fraction * workload.commit_sensitivity
        + 0.2 * (1.0 - workload.skew) * workload.read_fraction,
        0.0,
        0.95,
    )
    net = np.clip(0.08 + 0.45 * conc, 0.0, 0.95)
    qps = np.clip(0.2 + 0.6 * conc - 0.2 * workload.scan_fraction, 0.02, 0.95)
    return np.array([cpu, mem, disk, net, qps])


def generate_telemetry(
    workload: Workload,
    n_steps: int = 288,
    noise: float = 0.04,
    diurnal_amplitude: float = 0.25,
    period: int | None = None,
    rng: np.random.Generator | None = None,
) -> TelemetryTrace:
    """Produce a telemetry trace for one workload.

    The trace is a diurnal carrier wave (load swings over a day), channel
    means set by the workload's characteristics, short-period harmonics set
    by its mix (checkpoint-like bursts on write-heavy workloads), and white
    noise on top.
    """
    if n_steps < 8:
        raise ReproError(f"n_steps must be >= 8, got {n_steps}")
    if noise < 0:
        raise ReproError(f"noise must be >= 0, got {noise}")
    rng = rng if rng is not None else np.random.default_rng(0)
    period = period if period is not None else n_steps // 2
    t = np.arange(n_steps)
    base = _base_levels(workload)

    # Diurnal carrier affecting all channels (phase tied to the mix so the
    # curve shape itself is informative).
    phase = 2.0 * np.pi * workload.read_fraction
    carrier = 1.0 + diurnal_amplitude * np.sin(2.0 * np.pi * t / period + phase)

    data = np.outer(carrier, base)

    # Write-heavy workloads show checkpoint/flush bursts on disk I/O.
    burst_period = max(4, int(6 + 20 * workload.skew))
    bursts = (t % burst_period == 0).astype(float)
    data[:, 2] += 0.3 * workload.write_fraction * bursts

    # Scan-heavy workloads show long CPU plateaus (query batches).
    batch = 0.15 * workload.scan_fraction * np.sign(np.sin(2.0 * np.pi * t / max(8, period // 3)))
    data[:, 0] += np.maximum(0.0, batch)

    data += rng.normal(0.0, noise, size=data.shape)
    return TelemetryTrace(workload.name, np.clip(data, 0.0, 1.0))
