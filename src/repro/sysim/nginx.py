"""Simulated Nginx — the web-server member of the tutorial's system list.

("System: Redis, MySQL, Postgres, **Nginx**, …" — slide 8.) A
static-content web server whose performance model exercises tuning
structure the DBMS does not: per-connection capacity limits
(workers × worker_connections), keep-alive reconnect amortisation against
client think time, a CPU-vs-bytes trade-off (gzip level), and logging
overhead. Defaults mirror stock nginx.conf — famously one worker process.
"""

from __future__ import annotations

import math
from typing import Mapping

from ..exceptions import SystemCrashError
from ..space import (
    BooleanParameter,
    CategoricalParameter,
    Configuration,
    ConfigurationSpace,
    EqualsCondition,
    IntegerParameter,
)
from ..workloads import Workload
from .system import KnobLevel, PerfProfile, SimulatedSystem

__all__ = ["NginxServer", "web_workload"]


def web_workload(
    concurrency: int = 400,
    mean_response_kb: float = 64.0,
    large_fraction: float = 0.2,
    think_time_ms: float = 50.0,
    n_files: int = 20_000,
) -> Workload:
    """A static-content serving workload.

    ``large_fraction`` maps to ``scan_fraction`` (big, compressible
    responses); ``think_time_ms`` is the client gap between requests that
    keep-alive must bridge.
    """
    data_mb = n_files * mean_response_kb / 1024.0
    return Workload(
        name=f"web-{concurrency}c",
        read_fraction=0.98,
        scan_fraction=large_fraction,
        data_size_mb=data_mb,
        working_set_mb=max(1.0, data_mb * 0.3),
        skew=0.9,  # web content is extremely skewed
        concurrency=concurrency,
        sort_intensity=0.0,
        commit_sensitivity=0.0,
        think_time_ms=think_time_ms,
        tags=("web", "nginx"),
    )


class NginxServer(SimulatedSystem):
    """Nginx serving static content on a cloud VM."""

    IMPORTANT_KNOBS = ("worker_processes", "worker_connections", "keepalive_timeout_s", "gzip")

    restart_penalty_s = 2.0  # nginx reloads are cheap

    def build_space(self) -> ConfigurationSpace:
        space = ConfigurationSpace("nginx")
        space.add(IntegerParameter("worker_processes", 1, 64, default=1, log=True))
        space.add(IntegerParameter("worker_connections", 256, 65_536, default=512, log=True))
        space.add(IntegerParameter("keepalive_timeout_s", 0, 300, default=75))
        space.add(IntegerParameter("keepalive_requests", 10, 10_000, default=100, log=True))
        space.add(BooleanParameter("gzip", default=False))
        space.add(IntegerParameter("gzip_level", 1, 9, default=6))
        space.add_condition(EqualsCondition("gzip_level", "gzip", True))
        space.add(BooleanParameter("sendfile", default=True))
        space.add(CategoricalParameter("access_log", ["off", "buffered", "unbuffered"], default="unbuffered"))
        space.add(IntegerParameter("open_file_cache", 16, 100_000, default=1000, log=True))
        space.add(IntegerParameter("client_body_buffer_kb", 8, 1024, default=16, log=True))
        return space

    def knob_levels(self) -> Mapping[str, KnobLevel]:
        return {
            "worker_processes": KnobLevel.STARTUP,
            "worker_connections": KnobLevel.STARTUP,
        }

    def performance(self, config: Configuration, workload: Workload) -> PerfProfile:
        cores = self.env.vm.vcpus
        ram = self.env.vm.ram_mb

        # Connection memory: each held connection costs a buffer.
        conn_mem_mb = workload.concurrency * config["client_body_buffer_kb"] / 1024.0
        if conn_mem_mb + 128 > 0.9 * ram:
            raise SystemCrashError(
                f"nginx OOM: {conn_mem_mb:.0f} MB of connection buffers on {ram} MB"
            )

        workers = config["worker_processes"]
        effective_workers = min(workers, cores)
        # Too many workers: context-switch churn.
        contention = 1.0 + 0.03 * max(0, workers - 2 * cores)

        # Per-request service time. Responses are bimodal: small assets
        # (~16 KB) and large pages/bundles (~512 KB, the compressible ones).
        small_kb, large_kb = 16.0, 512.0
        large = workload.scan_fraction
        cpu_ms = 0.04 + (small_kb * (1 - large) + large_kb * large) / 2000.0  # parse + copy
        large_transfer_ms = large_kb / 120.0  # ~1 Gbps per connection share
        small_transfer_ms = small_kb / 120.0
        if config["gzip"]:
            level = config["gzip_level"]
            ratio = max(0.2, 0.75 - 0.04 * level)  # diminishing compression returns
            large_transfer_ms *= ratio
            # Compression cost grows with level *and* bytes compressed.
            cpu_ms += large * (large_kb / 128.0) * 0.02 * level**1.5
        transfer_ms = (1 - large) * small_transfer_ms + large * large_transfer_ms
        if not config["sendfile"]:
            cpu_ms *= 1.25  # userspace copy path

        # File-descriptor cache: misses add an open()+stat() penalty.
        n_files = max(1.0, workload.data_size_mb * 16)
        fd_coverage = min(1.0, config["open_file_cache"] / n_files)
        fd_hit = fd_coverage ** (1.0 / (1.0 + 4.0 * workload.skew))
        cpu_ms += (1.0 - fd_hit) * 0.15

        # Keep-alive: reconnects cost a handshake amortised per request.
        think_s = workload.think_time_ms / 1000.0
        if config["keepalive_timeout_s"] <= think_s:
            reconnect_ms = 1.2  # TCP+TLS handshake on almost every request
        else:
            # Connection survives ~keepalive_requests before rotation.
            reconnect_ms = 1.2 / max(1, config["keepalive_requests"])
        # But long timeouts hold memory: handled via conn_mem above.

        log_cost = {"off": 0.0, "buffered": 0.01, "unbuffered": 0.08}[config["access_log"]]
        request_ms = (cpu_ms + transfer_ms + reconnect_ms + log_cost) * contention

        # Connection capacity: excess connections queue at accept().
        capacity = workers * config["worker_connections"]
        overload = max(0.0, workload.concurrency / capacity - 1.0)
        request_ms *= 1.0 + 2.0 * overload

        throughput_cap = effective_workers * 1000.0 / (cpu_ms * contention + 0.01)
        spread = 1.6 + 1.5 * min(1.0, overload) + 0.4 * (1.0 - fd_hit)
        return PerfProfile(
            latency_avg_ms=request_ms,
            latency_spread=min(spread, 6.0),
            throughput_cap=throughput_cap,
            cpu_util=min(1.0, 0.1 + cpu_ms * workload.concurrency / (cores * 50.0)),
            mem_util=min(1.0, (conn_mem_mb + 128) / ram),
            io_util=min(1.0, 0.05 + log_cost * 2 + (1.0 - fd_hit) * 0.3),
        )
