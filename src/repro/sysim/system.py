"""Base class for simulated target systems.

A :class:`SimulatedSystem` plays the role of the real Redis/MySQL/Spark
deployment in the tutorial's architecture: the tuner *applies* a
configuration, *runs* a workload, and gets a :class:`Measurement` back.

Knob deployment levels (the "Autotuning in Practice: How to Deploy?" slide)
are modelled explicitly: each knob is RUNTIME (an ``ALTER SYSTEM`` away),
STARTUP (requires a restart, losing warm caches), or BUILDTIME (requires
reprovisioning). ``apply`` tracks restarts and their costs so experiments
can account for them.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Mapping

import numpy as np

from ..benchmarking.measurement import Measurement
from ..exceptions import ReproError, SystemCrashError
from ..space import Configuration, ConfigurationSpace
from ..workloads import Workload
from .cloud import CloudEnvironment, Machine, QUIET_CLOUD

__all__ = ["KnobLevel", "SimulatedSystem", "PerfProfile"]


class KnobLevel(enum.Enum):
    """When a knob change takes effect."""

    RUNTIME = "runtime"  # adjustable live (join buffer size)
    STARTUP = "startup"  # needs a restart (shared_buffers)
    BUILDTIME = "buildtime"  # needs reprovisioning (filesystem block size)


class PerfProfile:
    """Noise-free performance numbers a system model produces for one run."""

    __slots__ = ("latency_avg_ms", "latency_spread", "throughput_cap", "cpu_util", "mem_util", "io_util")

    def __init__(
        self,
        latency_avg_ms: float,
        latency_spread: float,
        throughput_cap: float,
        cpu_util: float,
        mem_util: float,
        io_util: float,
    ) -> None:
        if latency_avg_ms <= 0:
            raise ReproError(f"latency must be positive, got {latency_avg_ms}")
        if latency_spread < 1.0:
            raise ReproError(f"latency_spread is a tail multiplier >= 1, got {latency_spread}")
        self.latency_avg_ms = latency_avg_ms
        self.latency_spread = latency_spread
        self.throughput_cap = throughput_cap
        self.cpu_util = float(np.clip(cpu_util, 0.0, 1.0))
        self.mem_util = float(np.clip(mem_util, 0.0, 1.0))
        self.io_util = float(np.clip(io_util, 0.0, 1.0))


class SimulatedSystem(ABC):
    """A tunable system running in a (possibly noisy) cloud environment.

    Subclasses define the configuration space (:meth:`build_space`), knob
    levels, and the analytical performance model (:meth:`performance`).
    """

    #: Restart penalty in seconds added to a run after a STARTUP knob change
    #: (lost buffer pool, cold caches — "is it expensive to restart?").
    restart_penalty_s: float = 30.0

    def __init__(self, env: CloudEnvironment | None = None, seed: int | None = None) -> None:
        self.env = env if env is not None else QUIET_CLOUD(seed=seed)
        self.space = self.build_space()
        self.rng = np.random.default_rng(seed)
        self._current = self.space.default_configuration()
        self._home_machine = self.env.allocate()
        self.restart_count = 0
        self.reprovision_count = 0

    # -- to implement ------------------------------------------------------
    @abstractmethod
    def build_space(self) -> ConfigurationSpace:
        """Define the system's tunable knobs."""

    @abstractmethod
    def knob_levels(self) -> Mapping[str, KnobLevel]:
        """Deployment level of each knob (missing ⇒ RUNTIME)."""

    @abstractmethod
    def performance(self, config: Configuration, workload: Workload) -> PerfProfile:
        """Noise-free analytical model. May raise SystemCrashError."""

    # -- applying configurations -------------------------------------------
    @property
    def current_config(self) -> Configuration:
        return self._current

    def apply(self, config: Configuration) -> dict[str, int]:
        """Apply a configuration, tracking restarts/reprovisions it forces.

        Returns counts of the deployment actions taken, e.g.
        ``{"runtime": 3, "startup": 1, "buildtime": 0}``.
        """
        # Accept configurations from subspaces: knobs not mentioned keep
        # their current values (the DBA only changed what they changed).
        values = self._current.as_dict()
        for name, value in config.items():
            if name in self.space:
                values[name] = value
        config = self.space.make(values, check_constraints=False)
        levels = self.knob_levels()
        actions = {"runtime": 0, "startup": 0, "buildtime": 0}
        for name in self.space.names:
            if config[name] == self._current[name]:
                continue
            level = levels.get(name, KnobLevel.RUNTIME)
            actions[level.value] += 1
        if actions["buildtime"]:
            self.reprovision_count += 1
        elif actions["startup"]:
            self.restart_count += 1
        self._current = config
        self._pending_restart = bool(actions["startup"] or actions["buildtime"])
        return actions

    # -- running workloads ----------------------------------------------------
    def run(
        self,
        workload: Workload,
        duration_s: float = 60.0,
        machine: Machine | None = None,
        config: Configuration | None = None,
    ) -> Measurement:
        """Benchmark the current (or given) configuration under a workload.

        The analytical profile is perturbed by the environment's machine and
        transient noise; restart penalties extend elapsed time.
        """
        if duration_s <= 0:
            raise ReproError(f"duration_s must be positive, got {duration_s}")
        if config is not None:
            self.apply(config)
        machine = machine or self._home_machine
        self.env.advance(machine)
        if not self.space.is_feasible(self._current):
            # A config violating declared constraints is undeployable — the
            # real system would refuse to start.
            raise SystemCrashError(f"infeasible configuration: {self._current}")
        profile = self.performance(self._current, workload)
        return self._measure(profile, workload, duration_s, machine)

    def _measure(
        self,
        profile: PerfProfile,
        workload: Workload,
        duration_s: float,
        machine: Machine,
        shared_draw: float | None = None,
    ) -> Measurement:
        slowdown = self.env.slowdown(machine, shared_draw=shared_draw)
        lat_avg = profile.latency_avg_ms * slowdown
        spread = profile.latency_spread * (1.0 + 0.5 * machine.load)
        # Log-normalish latency distribution summarised by its percentiles.
        lat_p50 = lat_avg * 0.85
        lat_p95 = lat_avg * spread
        lat_p99 = lat_avg * spread * 1.6
        service_s = (lat_avg + workload.think_time_ms) / 1000.0
        offered = workload.concurrency / max(service_s, 1e-9)
        throughput = min(offered, profile.throughput_cap / slowdown)
        elapsed = duration_s + (self.restart_penalty_s if getattr(self, "_pending_restart", False) else 0.0)
        self._pending_restart = False
        return Measurement(
            throughput=max(0.0, throughput),
            latency_avg=lat_avg,
            latency_p50=lat_p50,
            latency_p95=lat_p95,
            latency_p99=lat_p99,
            cpu_util=profile.cpu_util,
            mem_util=profile.mem_util,
            io_util=profile.io_util,
            elapsed_s=elapsed,
            machine_id=machine.machine_id,
            extra={"machine_load": machine.load, "slowdown": slowdown},
        )

    # -- convenience evaluators -------------------------------------------------
    def evaluator(self, workload: Workload, metric: str = "latency_p95", duration_s: float = 60.0):
        """An evaluator closure for :class:`~repro.core.session.TuningSession`.

        Returns ``(value, cost)`` tuples where cost is benchmark seconds.
        """

        def evaluate(config: Configuration):
            m = self.run(workload, duration_s=duration_s, config=config)
            return m.metric(metric), m.elapsed_s

        return evaluate

    def multi_metric_evaluator(self, workload: Workload, duration_s: float = 60.0):
        """Evaluator returning the full metric mapping (multi-objective use)."""

        def evaluate(config: Configuration):
            m = self.run(workload, duration_s=duration_s, config=config)
            return m.metrics(), m.elapsed_s

        return evaluate
