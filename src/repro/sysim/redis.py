"""Simulated Redis on Linux — the tutorial's running example.

"System to optimize: Redis on Linux. Goal: minimize tail latency.
Tunable parameter: /proc/sys/kernel/sched_migration_cost_ns ∈ [0, 1 000 000]."

The kernel-knob response curve is non-convex (a valley well away from the
default, plus ripples) so grid, random, and Bayesian search behave exactly
as the slides illustrate. At the tuned optimum P95 latency drops by roughly
the 68 % the "Why Tune?" slide reports. A handful of Redis-level knobs make
the multi-dimensional variants of the experiments possible.
"""

from __future__ import annotations

import math
from typing import Mapping

from ..exceptions import SystemCrashError
from ..space import (
    BooleanParameter,
    CategoricalParameter,
    Configuration,
    ConfigurationSpace,
    IntegerParameter,
)
from ..workloads import Workload
from .system import KnobLevel, PerfProfile, SimulatedSystem

__all__ = ["RedisServer", "redis_benchmark_workload"]


def redis_benchmark_workload(concurrency: int = 50, data_mb: float = 1024.0) -> Workload:
    """The redis-benchmark-style workload of the running example."""
    return Workload(
        name="redis-benchmark",
        read_fraction=0.9,
        scan_fraction=0.0,
        data_size_mb=data_mb,
        working_set_mb=data_mb * 0.5,
        skew=0.7,
        concurrency=concurrency,
        sort_intensity=0.0,
        commit_sensitivity=0.3,
        tags=("redis", "kv"),
    )


class RedisServer(SimulatedSystem):
    """Redis + Linux kernel scheduler knobs.

    ``sched_migration_cost_ns`` dominates tail latency for this workload;
    the remaining knobs add realistic secondary structure.
    """

    IMPORTANT_KNOBS = ("sched_migration_cost_ns", "io_threads", "appendfsync")

    #: Unit position of the tail-latency valley (≈ 180 000 ns).
    _VALLEY_U = 0.18

    def build_space(self) -> ConfigurationSpace:
        space = ConfigurationSpace("redis")
        space.add(
            IntegerParameter("sched_migration_cost_ns", 0, 1_000_000, default=500_000)
        )
        space.add(IntegerParameter("io_threads", 1, 16, default=1, log=True))
        space.add(
            CategoricalParameter(
                "appendfsync", ["always", "everysec", "no"], default="everysec"
            )
        )
        space.add(
            CategoricalParameter(
                "maxmemory_policy",
                ["noeviction", "allkeys-lru", "allkeys-lfu", "volatile-lru"],
                default="noeviction",
            )
        )
        space.add(IntegerParameter("tcp_backlog", 128, 4096, default=511, log=True))
        space.add(IntegerParameter("hz", 1, 100, default=10, log=True))
        space.add(BooleanParameter("activedefrag", default=False))
        return space

    def knob_levels(self) -> Mapping[str, KnobLevel]:
        return {
            "io_threads": KnobLevel.STARTUP,
            "tcp_backlog": KnobLevel.STARTUP,
            # kernel + config knobs are runtime-adjustable
        }

    def kernel_response(self, sched_migration_cost_ns: float) -> float:
        """Tail-latency multiplier as a function of the kernel knob alone.

        A parabola-with-ripples: minimum ≈ 0.32 ms-equivalents near
        ``_VALLEY_U``, ≈ 1.0 at the default (500 000), climbing steeply
        beyond. This is the curve drawn on the tutorial's grid/random/BO
        slides.
        """
        u = sched_migration_cost_ns / 1_000_000.0
        base = 0.30 + 6.2 * (u - self._VALLEY_U) ** 2
        # Ripples strong enough to create genuine local minima away from the
        # global valley — a pure parabola would flatter local search.
        ripple = 0.15 * math.sin(9.0 * math.pi * u) * (0.3 + u)
        return max(0.05, base + ripple)

    def performance(self, config: Configuration, workload: Workload) -> PerfProfile:
        ram = self.env.vm.ram_mb
        cores = self.env.vm.vcpus
        if workload.data_size_mb > ram * 1.5:
            raise SystemCrashError(
                f"dataset {workload.data_size_mb:.0f} MB cannot fit near {ram} MB RAM"
            )

        p95_ms = self.kernel_response(config["sched_migration_cost_ns"])

        # io-threads relieve the event loop under high concurrency.
        pressure = workload.concurrency / (cores * 25.0)
        io_relief = 1.0 + 0.35 * math.log2(config["io_threads"]) * min(1.0, pressure)
        p95_ms /= io_relief
        if config["io_threads"] > cores * 2:
            p95_ms *= 1.0 + 0.04 * (config["io_threads"] - cores * 2)  # thrashing

        # AOF fsync policy: durability vs latency.
        fsync_mult = {"always": 1.0, "everysec": 0.25, "no": 0.05}[config["appendfsync"]]
        p95_ms += 0.6 * fsync_mult * workload.commit_sensitivity

        # Eviction policy only matters when memory is tight.
        if workload.data_size_mb > 0.8 * ram:
            policy_penalty = {
                "noeviction": 0.5,  # write errors surface as tail latency
                "allkeys-lru": 0.1,
                "allkeys-lfu": 0.05 if workload.skew > 0.5 else 0.12,
                "volatile-lru": 0.2,
            }[config["maxmemory_policy"]]
            p95_ms *= 1.0 + policy_penalty

        # Backlog too small for the offered connection rate ⇒ SYN drops.
        if workload.concurrency * 4 > config["tcp_backlog"]:
            p95_ms *= 1.0 + 0.10

        # Background task frequency: high hz steals cycles, low hz delays expiry.
        hz = config["hz"]
        p95_ms *= 1.0 + 0.02 * abs(math.log2(hz / 10.0))
        if config["activedefrag"]:
            p95_ms *= 1.03

        latency_avg = p95_ms / 1.9
        throughput_cap = cores * 55_000.0 / max(0.2, latency_avg / 0.05)
        return PerfProfile(
            latency_avg_ms=latency_avg,
            latency_spread=1.9,
            throughput_cap=throughput_cap,
            cpu_util=min(1.0, 0.2 + 0.5 * pressure),
            mem_util=min(1.0, workload.data_size_mb / ram),
            io_util=0.1 + 0.5 * fsync_mult * workload.write_fraction,
        )
