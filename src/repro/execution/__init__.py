"""Trial execution: serial/thread/process backends, timeouts, retries."""

from .executor import (
    ProcessExecutor,
    RetryPolicy,
    SerialExecutor,
    ThreadedExecutor,
    TrialExecution,
    TrialExecutor,
    execute_trial,
)

__all__ = [
    "ProcessExecutor",
    "RetryPolicy",
    "SerialExecutor",
    "ThreadedExecutor",
    "TrialExecution",
    "TrialExecutor",
    "execute_trial",
]
