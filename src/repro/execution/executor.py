"""Trial executors: serial, thread-pool, and process-pool backends.

The tutorial's scheduler slide describes *parallel suggestion* — "suggest k
points, batch execute trials" — and TUNA-style noisy-cloud tuning demands
running many instrumented trials concurrently. This module is the execution
substrate: a :class:`TrialExecutor` takes a batch of configurations plus an
evaluator and yields :class:`TrialExecution` records **as trials complete**,
handling per-trial timeouts, bounded retry with exponential backoff, and the
crash/abort → status folding (via :func:`repro.core.evaluation.run_evaluation`)
that previously lived inline in ``TuningSession``.

Backends:

* :class:`SerialExecutor` — evaluates in the caller's thread, lazily; the
  zero-dependency default with semantics identical to the historic loop.
* :class:`ThreadedExecutor` — a ``concurrent.futures.ThreadPoolExecutor``
  pool; right for evaluators that block on I/O, subprocesses, or sleeps
  (i.e. real benchmarks).
* :class:`ProcessExecutor` — a ``ProcessPoolExecutor`` pool for CPU-bound
  evaluators; the evaluator and configurations must be picklable.

Timeouts run the evaluation on a daemon thread and abandon it at the
deadline — the trial is recorded as ``FAILED`` with ``outcome="timeout"``
and a :class:`TimeoutError` exception, and the optimizer imputes it like a
crash. (Python threads cannot be killed; the abandoned evaluation may keep
running in the background until it returns.)

Observability: every execution is decomposed in time — **queue wait**
(submit → first attempt; pool backpressure), **attempts** (each evaluation
try, individually timed), and **backoff sleeps** between retries — instead
of one folded wall-clock number. When a telemetry trace is active
(:mod:`repro.telemetry.spans`), the decomposition is also emitted as
nested ``executor.run`` / ``executor.attempt`` / ``executor.backoff``
spans attached to the right trial, and retries/timeouts become structured
events. :class:`ThreadedExecutor` copies the submitting context into each
worker task so spans land on the correct trial even though pool threads
are reused; process pools cannot carry the context across the pickle
boundary, so child processes degrade to the flat numbers (still recorded,
via :class:`TrialExecution`).
"""

from __future__ import annotations

import contextvars
import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent import futures as _futures
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from ..core.evaluation import EvaluationResult, run_evaluation
from ..core.optimizer import TrialStatus
from ..exceptions import ReproError, SystemCrashError
from ..telemetry.spans import emit_event, span, trial_scope
from ..space import Configuration

__all__ = [
    "RetryPolicy",
    "TrialExecution",
    "TrialExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "execute_trial",
]

Evaluator = Callable[[Configuration], Any]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for flaky evaluations.

    A trial is retried when its evaluation ended with an exception whose
    type matches ``retry_on`` (timeouts surface as :class:`TimeoutError`)
    and fewer than ``max_retries`` retries have been spent. The k-th retry
    waits ``backoff_s * backoff_factor**k`` seconds first.
    """

    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    retry_on: tuple[type[BaseException], ...] = (SystemCrashError, TimeoutError)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ReproError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_s < 0 or self.backoff_factor < 1.0:
            raise ReproError("backoff_s must be >= 0 and backoff_factor >= 1")

    def delay(self, retry_index: int) -> float:
        """Sleep before the ``retry_index``-th retry (0-based)."""
        return self.backoff_s * self.backoff_factor**retry_index

    def should_retry(self, result: EvaluationResult, retries_spent: int) -> bool:
        if result.ok or retries_spent >= self.max_retries:
            return False
        return result.exception is not None and isinstance(result.exception, self.retry_on)


@dataclass
class TrialExecution:
    """One executed trial: the result plus execution-side instrumentation.

    ``wall_clock_s`` is the full attempt-loop wall-clock (attempts plus
    backoff sleeps, *excluding* queue wait) — the historic number. The
    decomposition lives beside it: ``queue_s`` (submit → execution start),
    ``attempt_s`` (per-attempt evaluation durations, parallel to
    ``attempts``), and ``backoff_s`` (total retry sleep).
    """

    index: int  # position within the dispatched batch
    config: Configuration
    result: EvaluationResult
    retries: int = 0
    wall_clock_s: float = 0.0
    attempts: list[str] = field(default_factory=list)  # outcome tag per attempt
    queue_s: float = 0.0
    attempt_s: list[float] = field(default_factory=list)  # duration per attempt
    backoff_s: float = 0.0
    span_ref: Any = None  # telemetry TrialRef; bound to the trial id on observe


def _call_with_timeout(evaluator: Evaluator, config: Configuration, timeout_s: float | None) -> EvaluationResult:
    """One evaluation attempt, abandoned at ``timeout_s`` if it overruns."""
    if timeout_s is None:
        return run_evaluation(evaluator, config)
    box: dict[str, EvaluationResult] = {}
    # The watchdog thread would otherwise start from a bare context: copy
    # ours so evaluator-side spans still attach to the active trace/trial.
    ctx = contextvars.copy_context()

    def target() -> None:
        box["result"] = ctx.run(run_evaluation, evaluator, config)

    worker = threading.Thread(target=target, daemon=True, name="repro-trial-eval")
    worker.start()
    worker.join(timeout_s)
    if worker.is_alive() or "result" not in box:
        return EvaluationResult(
            metrics=None,
            cost=float(timeout_s),
            status=TrialStatus.FAILED,
            metadata={"outcome": "timeout", "error": f"trial exceeded timeout of {timeout_s:g}s"},
            exception=TimeoutError(f"trial exceeded timeout of {timeout_s:g}s"),
        )
    return box["result"]


def execute_trial(
    evaluator: Evaluator,
    config: Configuration,
    index: int = 0,
    timeout_s: float | None = None,
    retry: RetryPolicy | None = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    submitted_s: float | None = None,
) -> TrialExecution:
    """Run one trial to completion: attempt, retry with backoff, instrument.

    ``submitted_s`` (same clock) marks when the trial was handed to the
    executor; the gap to execution start is reported as ``queue_s``.
    Module-level (not a method) so :class:`ProcessExecutor` can pickle it.
    """
    start = clock()
    queue_s = max(0.0, start - submitted_s) if submitted_s is not None else 0.0
    retries = 0
    attempts: list[str] = []
    attempt_s: list[float] = []
    backoff_total = 0.0
    with trial_scope() as ref:
        with span("executor.run", index=index) as op:
            if op is not None and queue_s:
                op.set(queue_s=queue_s)
            while True:
                t_attempt = clock()
                with span("executor.attempt", attempt=len(attempts)) as attempt_op:
                    result = _call_with_timeout(evaluator, config, timeout_s)
                    if attempt_op is not None:
                        attempt_op.set(outcome=result.outcome)
                attempt_s.append(clock() - t_attempt)
                attempts.append(result.outcome)
                if result.outcome == "timeout":
                    emit_event(
                        "executor.timeout", severity="warning",
                        message=f"attempt {len(attempts) - 1} exceeded {timeout_s:g}s",
                        index=index, attempt=len(attempts) - 1, timeout_s=timeout_s,
                    )
                if retry is None or not retry.should_retry(result, retries):
                    break
                delay = retry.delay(retries)
                emit_event(
                    "executor.retry", severity="warning",
                    message=f"retrying after {result.outcome} (attempt {len(attempts) - 1})",
                    index=index, attempt=len(attempts) - 1, outcome=result.outcome, backoff_s=delay,
                )
                if delay > 0:
                    with span("executor.backoff", delay_s=delay):
                        sleep(delay)
                else:
                    sleep(delay)
                backoff_total += delay
                retries += 1
    if retries:
        result.metadata.setdefault("retries", retries)
    return TrialExecution(
        index=index,
        config=config,
        result=result,
        retries=retries,
        wall_clock_s=clock() - start,
        attempts=attempts,
        queue_s=queue_s,
        attempt_s=attempt_s,
        backoff_s=backoff_total,
        span_ref=ref,
    )


class TrialExecutor(ABC):
    """Executes batches of trials; yields results as they complete.

    Parameters
    ----------
    timeout_s:
        Per-trial wall-clock deadline; overruns become ``FAILED`` trials
        with ``outcome="timeout"`` (imputed by the optimizer like crashes).
    retry:
        Optional :class:`RetryPolicy`. ``None`` means no retries — exactly
        the historic in-session behavior.
    """

    #: Lazy executors evaluate on demand as the caller iterates; breaking
    #: out of ``map`` mid-batch skips the unevaluated remainder (the
    #: historic serial-loop semantics). Pool executors dispatch eagerly.
    lazy = False

    def __init__(self, timeout_s: float | None = None, retry: RetryPolicy | None = None) -> None:
        if timeout_s is not None and timeout_s <= 0:
            raise ReproError(f"timeout_s must be > 0, got {timeout_s}")
        self.timeout_s = timeout_s
        self.retry = retry

    @abstractmethod
    def map(self, evaluator: Evaluator, configs: Sequence[Configuration]) -> Iterator[TrialExecution]:
        """Yield a :class:`TrialExecution` per config, in completion order."""

    def shutdown(self) -> None:
        """Release pooled resources (no-op for serial)."""

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


class SerialExecutor(TrialExecutor):
    """Evaluate trials one at a time in the caller's thread, lazily."""

    lazy = True

    def map(self, evaluator: Evaluator, configs: Sequence[Configuration]) -> Iterator[TrialExecution]:
        for i, config in enumerate(configs):
            yield execute_trial(
                evaluator, config, i, self.timeout_s, self.retry, submitted_s=time.monotonic()
            )


class _PoolExecutor(TrialExecutor):
    """Shared machinery for the concurrent.futures-backed backends."""

    def __init__(
        self,
        max_workers: int = 4,
        timeout_s: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        super().__init__(timeout_s=timeout_s, retry=retry)
        if max_workers < 1:
            raise ReproError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = int(max_workers)
        self._pool: _futures.Executor | None = None

    @abstractmethod
    def _make_pool(self) -> _futures.Executor:
        """Create the backing concurrent.futures executor."""

    def _ensure_pool(self) -> _futures.Executor:
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def _submit(self, pool: _futures.Executor, evaluator: Evaluator, config: Configuration, index: int) -> Future:
        return pool.submit(
            execute_trial, evaluator, config, index, self.timeout_s, self.retry,
            time.sleep, time.monotonic, time.monotonic(),
        )

    def map(self, evaluator: Evaluator, configs: Sequence[Configuration]) -> Iterator[TrialExecution]:
        pool = self._ensure_pool()
        pending: set[Future] = {
            self._submit(pool, evaluator, config, i) for i, config in enumerate(configs)
        }
        try:
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield future.result()
        finally:
            for future in pending:
                future.cancel()

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


class ThreadedExecutor(_PoolExecutor):
    """Thread-pool backend — concurrent trials that block on I/O or sleep.

    Python threads share the GIL, so the speedup is real only when the
    evaluator releases it (syscalls, subprocess benchmarks, sleeps, numpy) —
    which is exactly what system benchmarks do.
    """

    def _submit(self, pool: _futures.Executor, evaluator: Evaluator, config: Configuration, index: int) -> Future:
        # Propagate the submitter's context (active telemetry trace, trial
        # scope) into the reused worker thread, so nested spans opened while
        # evaluating attach to the right trial.
        ctx = contextvars.copy_context()
        return pool.submit(
            ctx.run, execute_trial, evaluator, config, index, self.timeout_s, self.retry,
            time.sleep, time.monotonic, time.monotonic(),
        )

    def _make_pool(self) -> _futures.Executor:
        return _futures.ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-trial"
        )


class ProcessExecutor(_PoolExecutor):
    """Process-pool backend for CPU-bound evaluators.

    The evaluator and configurations cross a pickle boundary: closures and
    lambdas won't work — use module-level callables or callable objects.
    Telemetry context does not cross it either: child processes contribute
    the flat :class:`TrialExecution` numbers but no nested spans.
    """

    def _make_pool(self) -> _futures.Executor:
        return _futures.ProcessPoolExecutor(max_workers=self.max_workers)
