"""Analysis: knob importance, convergence comparison, reporting."""

from .convergence import ComparisonResult, compare_optimizers, mean_incumbent_curves
from .importance import (
    KnobRanking,
    LassoImportance,
    lasso_coordinate_descent,
    permutation_importance,
)
from .reporting import format_table, format_value, print_table

__all__ = [
    "ComparisonResult",
    "compare_optimizers",
    "mean_incumbent_curves",
    "KnobRanking",
    "LassoImportance",
    "lasso_coordinate_descent",
    "permutation_importance",
    "format_table",
    "format_value",
    "print_table",
]
