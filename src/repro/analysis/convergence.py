"""Convergence comparison harness — the engine behind most E-benchmarks.

Runs several optimizer factories against evaluator factories over multiple
seeds, collecting best-so-far curves, trials-to-target, and cost-to-target
— the sample-efficiency metrics the tutorial's offline section revolves
around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core import Callback, Objective, Optimizer, TuningSession
from ..core.result import TuningResult
from ..exceptions import ReproError

__all__ = ["ComparisonResult", "compare_optimizers", "mean_incumbent_curves"]


@dataclass
class ComparisonResult:
    """Curves and summary statistics of one optimizer across seeds."""

    name: str
    results: list[TuningResult] = field(default_factory=list)

    def curves(self) -> np.ndarray:
        """(n_seeds, n_trials) best-so-far matrix (NaN-padded)."""
        if not self.results:
            raise ReproError("no results collected")
        n = max(r.n_trials for r in self.results)
        out = np.full((len(self.results), n), np.nan)
        for i, r in enumerate(self.results):
            curve = r.incumbent_curve()
            out[i, : len(curve)] = curve
            if len(curve) < n and len(curve) > 0:
                out[i, len(curve):] = curve[-1]
        return out

    def mean_curve(self) -> np.ndarray:
        return np.nanmean(self.curves(), axis=0)

    def best_values(self) -> np.ndarray:
        return np.array([r.best_value for r in self.results])

    def mean_best(self) -> float:
        return float(self.best_values().mean())

    def mean_trials_to(self, target: float) -> float:
        """Average trials to reach target (unreached runs count the budget)."""
        counts = []
        for r in self.results:
            t = r.trials_to_reach(target)
            counts.append(t if t is not None else r.n_trials)
        return float(np.mean(counts))

    def reach_rate(self, target: float) -> float:
        hits = sum(1 for r in self.results if r.trials_to_reach(target) is not None)
        return hits / len(self.results)

    def mean_cost_to(self, target: float) -> float:
        costs = []
        for r in self.results:
            c = r.cost_to_reach(target)
            costs.append(c if c is not None else r.total_cost)
        return float(np.mean(costs))


def compare_optimizers(
    factories: Mapping[str, Callable[[int], Optimizer]],
    evaluator_factory: Callable[[int], Callable],
    max_trials: int,
    n_seeds: int = 3,
    max_cost: float | None = None,
    callbacks_factory: Callable[[str, int], Sequence[Callback]] | None = None,
) -> dict[str, ComparisonResult]:
    """Run each optimizer factory over ``n_seeds`` fresh evaluators.

    ``factories[name](seed)`` builds the optimizer; ``evaluator_factory(seed)``
    builds a fresh evaluator (fresh system instance ⇒ independent noise) so
    methods face identical conditions per seed. ``callbacks_factory(name,
    seed)`` builds per-run callbacks — e.g. one
    :class:`~repro.telemetry.TelemetryCallback` per (optimizer, seed) so
    every leg of the race gets its own trace.
    """
    if n_seeds < 1:
        raise ReproError(f"n_seeds must be >= 1, got {n_seeds}")
    out: dict[str, ComparisonResult] = {}
    for name, factory in factories.items():
        comparison = ComparisonResult(name)
        for seed in range(n_seeds):
            optimizer = factory(seed)
            evaluator = evaluator_factory(seed)
            callbacks = callbacks_factory(name, seed) if callbacks_factory is not None else ()
            session = TuningSession(
                optimizer, evaluator, max_trials=max_trials, max_cost=max_cost,
                callbacks=callbacks,
            )
            comparison.results.append(session.run())
        out[name] = comparison
    return out


def mean_incumbent_curves(results: dict[str, ComparisonResult]) -> dict[str, np.ndarray]:
    """Mean best-so-far curve per optimizer (for plotting/printing)."""
    return {name: comp.mean_curve() for name, comp in results.items()}
