"""Knob-importance ranking — "Focus on the Important Knobs!" (slide 68).

* :class:`LassoImportance` — OtterTune's approach: L1-regularised linear
  regression of the score on standardised knob features; knobs whose
  coefficient blocks survive shrinkage are the important ones. Implemented
  as from-scratch coordinate descent.
* :func:`permutation_importance` — the model-agnostic, SHAP-adjacent
  ranking: permute one knob's column and measure how much a surrogate's
  error grows.

Both need "historical values to work from" — a tuning history.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import History, Objective
from ..exceptions import OptimizerError
from ..optimizers.forest import RandomForestRegressor
from ..space import ConfigurationSpace
from ..space.encoding import OneHotEncoder

__all__ = ["lasso_coordinate_descent", "LassoImportance", "permutation_importance", "KnobRanking"]


def lasso_coordinate_descent(
    X: np.ndarray,
    y: np.ndarray,
    alpha: float,
    max_iter: int = 500,
    tol: float = 1e-6,
) -> np.ndarray:
    """Solve ``min ½‖y − Xw‖²/n + α‖w‖₁`` by cyclic coordinate descent.

    Expects standardised columns; returns the weight vector.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    y = np.asarray(y, dtype=float).ravel()
    n, d = X.shape
    if n != len(y):
        raise OptimizerError(f"X and y disagree: {n} vs {len(y)}")
    if alpha < 0:
        raise OptimizerError(f"alpha must be >= 0, got {alpha}")
    w = np.zeros(d)
    col_sq = (X * X).sum(axis=0) / n
    residual = y - X @ w
    for _ in range(max_iter):
        max_delta = 0.0
        for j in range(d):
            if col_sq[j] <= 1e-15:
                continue
            rho = float(X[:, j] @ (residual + X[:, j] * w[j])) / n
            new_w = np.sign(rho) * max(0.0, abs(rho) - alpha) / col_sq[j]
            delta = new_w - w[j]
            if delta != 0.0:
                residual -= X[:, j] * delta
                w[j] = new_w
                max_delta = max(max_delta, abs(delta))
        if max_delta < tol:
            break
    return w


@dataclass(frozen=True)
class KnobRanking:
    """Importance scores per knob, sorted descending."""

    knobs: tuple[str, ...]
    scores: tuple[float, ...]

    def top(self, k: int) -> list[str]:
        return list(self.knobs[:k])

    def score_of(self, knob: str) -> float:
        try:
            return self.scores[self.knobs.index(knob)]
        except ValueError:
            raise OptimizerError(f"knob {knob!r} not in ranking") from None


class LassoImportance:
    """OtterTune-style knob ranking via the Lasso path.

    Knobs are scored by the largest |coefficient| across their one-hot
    feature block along a geometric grid of α values; features that enter
    the path earlier (survive stronger shrinkage) score higher.
    """

    def __init__(self, space: ConfigurationSpace, n_alphas: int = 20) -> None:
        self.space = space
        self.encoder = OneHotEncoder(space)
        self.n_alphas = int(n_alphas)

    def _design(self, history: History, objective: Objective) -> tuple[np.ndarray, np.ndarray]:
        done = history.completed()
        if len(done) < 5:
            raise OptimizerError(f"need >= 5 completed trials, got {len(done)}")
        X = self.encoder.encode_many([t.config for t in done])
        y = np.array([objective.score(t.metric(objective.name)) for t in done])
        X = (X - X.mean(axis=0)) / np.where(X.std(axis=0) > 0, X.std(axis=0), 1.0)
        y = (y - y.mean()) / (y.std() or 1.0)
        return X, y

    def rank(self, history: History, objective: Objective | None = None) -> KnobRanking:
        objective = objective or history.primary
        X, y = self._design(history, objective)
        n = len(y)
        alpha_max = float(np.abs(X.T @ y).max()) / n
        alphas = alpha_max * np.geomspace(1.0, 1e-3, self.n_alphas)
        entry_alpha = np.zeros(X.shape[1])  # strongest alpha at which each feature is active
        coef_mag = np.zeros(X.shape[1])
        for alpha in alphas:
            w = lasso_coordinate_descent(X, y, alpha)
            newly = (np.abs(w) > 1e-10) & (entry_alpha == 0)
            entry_alpha[newly] = alpha
            coef_mag = np.maximum(coef_mag, np.abs(w))
        # Feature score: entry strength (primary) + magnitude (tiebreak).
        feature_score = entry_alpha / alpha_max + 1e-3 * coef_mag
        scores = {}
        for name, start, width in self.encoder._blocks:
            scores[name] = float(feature_score[start:start + width].max())
        ordered = sorted(scores.items(), key=lambda kv: -kv[1])
        return KnobRanking(tuple(k for k, _ in ordered), tuple(v for _, v in ordered))


def permutation_importance(
    space: ConfigurationSpace,
    history: History,
    objective: Objective | None = None,
    n_repeats: int = 5,
    n_trees: int = 64,
    max_depth: int = 10,
    min_samples_leaf: int = 4,
    seed: int | None = None,
) -> KnobRanking:
    """Model-agnostic importance: fit a forest, permute each knob's block,
    score by the increase in prediction error.

    The forest defaults are deliberately regularized (moderate depth,
    min_samples_leaf > 1): an overfit forest memorises noise and then
    reports noise columns as "important" when permuted.
    """
    objective = objective or history.primary
    done = history.completed()
    if len(done) < 10:
        raise OptimizerError(f"need >= 10 completed trials, got {len(done)}")
    encoder = OneHotEncoder(space)
    X = encoder.encode_many([t.config for t in done])
    y = np.array([objective.score(t.metric(objective.name)) for t in done])
    rng = np.random.default_rng(seed)
    model = RandomForestRegressor(
        n_trees=n_trees, max_depth=max_depth, min_samples_leaf=min_samples_leaf, seed=seed
    )
    model.fit(X, y)
    base_mse = float(np.mean((model.predict(X) - y) ** 2))
    scores = {}
    for name, start, width in encoder._blocks:
        increases = []
        for _ in range(n_repeats):
            Xp = X.copy()
            perm = rng.permutation(len(X))
            Xp[:, start:start + width] = X[perm, start:start + width]
            mse = float(np.mean((model.predict(Xp) - y) ** 2))
            increases.append(mse - base_mse)
        scores[name] = max(0.0, float(np.mean(increases)))
    ordered = sorted(scores.items(), key=lambda kv: -kv[1])
    return KnobRanking(tuple(k for k, _ in ordered), tuple(v for _, v in ordered))
