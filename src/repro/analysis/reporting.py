"""Plain-text result tables — what the benchmark harness prints."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_value", "print_table"]


def format_value(value) -> str:
    """Compact human formatting for mixed numeric/string cells."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        if abs(value) >= 100:
            return f"{value:.0f}"
        return f"{value:.3g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[format_value(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None) -> None:
    print("\n" + format_table(headers, rows, title=title))
