"""Feature encodings of configurations for numerical surrogates.

The tutorial's "Discrete / Hybrid Optimization" slide lists the common
approaches for knobs like ``innodb_flush_method``: *impose order, one-hot,*
or use surrogates that split on categories natively (random forests).
Encoders turn configurations into fixed-width real vectors and back.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..exceptions import SpaceError
from .params import CategoricalParameter
from .space import Configuration, ConfigurationSpace

if TYPE_CHECKING:  # pragma: no cover
    from ..core.optimizer import Trial

__all__ = ["SpaceEncoder", "OrdinalEncoder", "OneHotEncoder", "TrialEncodingCache"]


class SpaceEncoder(ABC):
    """Bijective-ish map between configurations and ``[0, 1]^n`` vectors."""

    def __init__(self, space: ConfigurationSpace) -> None:
        self.space = space

    @property
    @abstractmethod
    def n_features(self) -> int:
        """Width of the encoded vector."""

    @abstractmethod
    def encode(self, config: Configuration) -> np.ndarray:
        """Configuration → feature vector in ``[0, 1]^n_features``."""

    @abstractmethod
    def decode(self, x: Sequence[float]) -> Configuration:
        """Feature vector → configuration (lossy for rounded values)."""

    def encode_many(self, configs: Sequence[Configuration]) -> np.ndarray:
        if not configs:
            return np.empty((0, self.n_features))
        return np.stack([self.encode(c) for c in configs])


class OrdinalEncoder(SpaceEncoder):
    """One dimension per knob; categoricals mapped to bin midpoints.

    Imposes an artificial order on categories — cheap but can mislead
    distance-based surrogates (see E6).
    """

    @property
    def n_features(self) -> int:
        return self.space.n_dims

    def encode(self, config: Configuration) -> np.ndarray:
        return self.space.to_unit_array(config)

    def encode_many(self, configs: Sequence[Configuration]) -> np.ndarray:
        """Column-vectorized batch encode: one ``to_unit_many`` per knob."""
        if not configs:
            return np.empty((0, self.n_features))
        X = np.empty((len(configs), self.n_features))
        for j, p in enumerate(self.space.parameters):
            values = [c.get(p.name, p.default) for c in configs]
            X[:, j] = p.to_unit_many(values)
        return X

    def decode(self, x: Sequence[float]) -> Configuration:
        return self.space.from_unit_array(np.clip(np.asarray(x, dtype=float), 0.0, 1.0))


class OneHotEncoder(SpaceEncoder):
    """Numeric knobs get one unit dim; categoricals get one dim per choice.

    Decoding picks the argmax choice per categorical block, so any real
    vector decodes to a valid configuration.
    """

    def __init__(self, space: ConfigurationSpace) -> None:
        super().__init__(space)
        self._blocks: list[tuple[str, int, int]] = []  # (name, start, width)
        offset = 0
        for p in space.parameters:
            width = p.n_choices if isinstance(p, CategoricalParameter) else 1
            self._blocks.append((p.name, offset, width))
            offset += width
        self._width = offset

    @property
    def n_features(self) -> int:
        return self._width

    def encode(self, config: Configuration) -> np.ndarray:
        x = np.zeros(self._width)
        for name, start, width in self._blocks:
            p = self.space[name]
            if isinstance(p, CategoricalParameter):
                x[start + p.index_of(config[name])] = 1.0
            else:
                x[start] = p.to_unit(config[name])
        return x

    def encode_many(self, configs: Sequence[Configuration]) -> np.ndarray:
        """Block-vectorized batch encode: one pass per knob, not per row."""
        if not configs:
            return np.empty((0, self._width))
        X = np.zeros((len(configs), self._width))
        rows = np.arange(len(configs))
        for name, start, width in self._blocks:
            p = self.space[name]
            values = [c.get(name, p.default) for c in configs]
            if isinstance(p, CategoricalParameter):
                idx = np.array([p.index_of(v) for v in values])
                X[rows, start + idx] = 1.0
            else:
                X[:, start] = p.to_unit_many(values)
        return X

    def decode(self, x: Sequence[float]) -> Configuration:
        x = np.asarray(x, dtype=float)
        if x.shape != (self._width,):
            raise SpaceError(f"expected vector of length {self._width}, got shape {x.shape}")
        values = {}
        for name, start, width in self._blocks:
            p = self.space[name]
            if isinstance(p, CategoricalParameter):
                values[name] = p.choices[int(np.argmax(x[start:start + width]))]
            else:
                values[name] = p.from_unit(float(np.clip(x[start], 0.0, 1.0)))
        return self.space.make(values, check_constraints=False)


class TrialEncodingCache:
    """Memoizes per-trial feature rows so append-only histories re-encode
    only the trials observed since the previous surrogate fit.

    Optimizers call :meth:`encode_trials` on every fit; rows are keyed by
    ``trial_id`` (unique and stable within one optimizer), so the call is
    O(new trials) instead of O(history). Configurations are immutable once
    observed, making the memo safe for the lifetime of the optimizer.
    """

    def __init__(self, encoder: SpaceEncoder) -> None:
        self.encoder = encoder
        self._rows: dict[int, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def encode_trial(self, trial: "Trial") -> np.ndarray:
        row = self._rows.get(trial.trial_id)
        if row is None:
            self.misses += 1
            row = self.encoder.encode(trial.config)
            self._rows[trial.trial_id] = row
        else:
            self.hits += 1
        return row

    def encode_trials(self, trials: Sequence["Trial"]) -> np.ndarray:
        if not trials:
            return np.empty((0, self.encoder.n_features))
        missing = [t for t in trials if t.trial_id not in self._rows]
        if missing:
            fresh = self.encoder.encode_many([t.config for t in missing])
            for t, row in zip(missing, fresh):
                self._rows[t.trial_id] = row
            self.misses += len(missing)
        self.hits += len(trials) - len(missing)
        return np.stack([self._rows[t.trial_id] for t in trials])

    def clear(self) -> None:
        self._rows.clear()

    def stats(self) -> dict[str, float]:
        return {"encode_cache_hits": float(self.hits), "encode_cache_misses": float(self.misses)}
