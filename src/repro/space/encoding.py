"""Feature encodings of configurations for numerical surrogates.

The tutorial's "Discrete / Hybrid Optimization" slide lists the common
approaches for knobs like ``innodb_flush_method``: *impose order, one-hot,*
or use surrogates that split on categories natively (random forests).
Encoders turn configurations into fixed-width real vectors and back.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..exceptions import SpaceError
from .params import CategoricalParameter
from .space import Configuration, ConfigurationSpace

__all__ = ["SpaceEncoder", "OrdinalEncoder", "OneHotEncoder"]


class SpaceEncoder(ABC):
    """Bijective-ish map between configurations and ``[0, 1]^n`` vectors."""

    def __init__(self, space: ConfigurationSpace) -> None:
        self.space = space

    @property
    @abstractmethod
    def n_features(self) -> int:
        """Width of the encoded vector."""

    @abstractmethod
    def encode(self, config: Configuration) -> np.ndarray:
        """Configuration → feature vector in ``[0, 1]^n_features``."""

    @abstractmethod
    def decode(self, x: Sequence[float]) -> Configuration:
        """Feature vector → configuration (lossy for rounded values)."""

    def encode_many(self, configs: Sequence[Configuration]) -> np.ndarray:
        if not configs:
            return np.empty((0, self.n_features))
        return np.stack([self.encode(c) for c in configs])


class OrdinalEncoder(SpaceEncoder):
    """One dimension per knob; categoricals mapped to bin midpoints.

    Imposes an artificial order on categories — cheap but can mislead
    distance-based surrogates (see E6).
    """

    @property
    def n_features(self) -> int:
        return self.space.n_dims

    def encode(self, config: Configuration) -> np.ndarray:
        return self.space.to_unit_array(config)

    def decode(self, x: Sequence[float]) -> Configuration:
        return self.space.from_unit_array(np.clip(np.asarray(x, dtype=float), 0.0, 1.0))


class OneHotEncoder(SpaceEncoder):
    """Numeric knobs get one unit dim; categoricals get one dim per choice.

    Decoding picks the argmax choice per categorical block, so any real
    vector decodes to a valid configuration.
    """

    def __init__(self, space: ConfigurationSpace) -> None:
        super().__init__(space)
        self._blocks: list[tuple[str, int, int]] = []  # (name, start, width)
        offset = 0
        for p in space.parameters:
            width = p.n_choices if isinstance(p, CategoricalParameter) else 1
            self._blocks.append((p.name, offset, width))
            offset += width
        self._width = offset

    @property
    def n_features(self) -> int:
        return self._width

    def encode(self, config: Configuration) -> np.ndarray:
        x = np.zeros(self._width)
        for name, start, width in self._blocks:
            p = self.space[name]
            if isinstance(p, CategoricalParameter):
                x[start + p.index_of(config[name])] = 1.0
            else:
                x[start] = p.to_unit(config[name])
        return x

    def decode(self, x: Sequence[float]) -> Configuration:
        x = np.asarray(x, dtype=float)
        if x.shape != (self._width,):
            raise SpaceError(f"expected vector of length {self._width}, got shape {x.shape}")
        values = {}
        for name, start, width in self._blocks:
            p = self.space[name]
            if isinstance(p, CategoricalParameter):
                values[name] = p.choices[int(np.argmax(x[start:start + width]))]
            else:
                values[name] = p.from_unit(float(np.clip(x[start], 0.0, 1.0)))
        return self.space.make(values, check_constraints=False)
