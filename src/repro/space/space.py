"""Configuration space and configuration objects.

A :class:`ConfigurationSpace` is the set of tunable knobs of a system
together with conditional-activation rules and hard constraints — the
domain 𝒳 of the tutorial's optimization problem ``x* = argmin_{x∈𝒳} f(x)``.

A :class:`Configuration` is one point in that space: a frozen mapping from
knob name to value, with inactive conditional knobs pinned to their defaults.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..exceptions import (
    ConstraintViolationError,
    DuplicateParameterError,
    SamplingError,
    SpaceError,
    UnknownParameterError,
)
from .conditions import Condition
from .constraints import Constraint, all_satisfied
from .params import CategoricalParameter, Parameter
from .priors import Prior

__all__ = ["Configuration", "ConfigurationSpace"]


class Configuration(Mapping[str, Any]):
    """An immutable assignment of values to every knob in a space.

    Inactive conditional knobs are present but pinned at their defaults so a
    configuration can always be applied verbatim to the target system.
    ``active`` records which knobs the optimizer actually controls here.
    """

    __slots__ = ("_space", "_values", "_active", "_hash")

    def __init__(self, space: "ConfigurationSpace", values: Mapping[str, Any], active: frozenset[str]) -> None:
        self._space = space
        self._values = dict(values)
        self._active = active
        self._hash: int | None = None

    @property
    def space(self) -> "ConfigurationSpace":
        return self._space

    @property
    def active(self) -> frozenset[str]:
        """Names of knobs whose values are under the optimizer's control."""
        return self._active

    def is_active(self, name: str) -> bool:
        return name in self._active

    def __getitem__(self, name: str) -> Any:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(tuple(sorted((k, repr(v)) for k, v in self._values.items())))
        return self._hash

    def as_dict(self) -> dict[str, Any]:
        """A mutable copy of the full value mapping."""
        return dict(self._values)

    def with_updates(self, **updates: Any) -> "Configuration":
        """Return a new configuration with some knobs changed (re-validated)."""
        merged = self.as_dict()
        merged.update(updates)
        return self._space.make(merged)

    def to_unit_array(self) -> np.ndarray:
        return self._space.to_unit_array(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={self._values[k]!r}" for k in self._space.names)
        return f"Configuration({inner})"


class ConfigurationSpace:
    """The set of knobs of a system, with conditions, constraints, and priors.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.space import ConfigurationSpace, IntegerParameter, BooleanParameter
    >>> from repro.space import EqualsCondition
    >>> space = ConfigurationSpace("pg")
    >>> _ = space.add(BooleanParameter("jit", default=False))
    >>> _ = space.add(IntegerParameter("jit_above_cost", 0, 10**6, default=10**5))
    >>> space.add_condition(EqualsCondition("jit_above_cost", "jit", True))
    >>> cfg = space.make({"jit": False, "jit_above_cost": 5})
    >>> cfg["jit_above_cost"]  # inactive -> pinned to default
    100000
    """

    _MAX_SAMPLE_ATTEMPTS = 10_000

    def __init__(self, name: str = "space", seed: int | None = None) -> None:
        self.name = name
        self._params: dict[str, Parameter] = {}
        self._conditions: dict[str, list[Condition]] = {}
        self._constraints: list[Constraint] = []
        self._rng = np.random.default_rng(seed)

    # -- construction ------------------------------------------------------
    def add(self, param: Parameter) -> Parameter:
        if param.name in self._params:
            raise DuplicateParameterError(param.name)
        self._params[param.name] = param
        return param

    def add_all(self, params: Iterable[Parameter]) -> None:
        for p in params:
            self.add(p)

    def add_condition(self, condition: Condition) -> Condition:
        for ref in (condition.child, condition.parent):
            if ref not in self._params:
                raise UnknownParameterError(ref)
        if condition.child == condition.parent:
            raise SpaceError(f"parameter {condition.child!r} cannot condition itself")
        self._conditions.setdefault(condition.child, []).append(condition)
        self._check_acyclic()
        return condition

    def add_constraint(self, constraint: Constraint) -> Constraint:
        self._constraints.append(constraint)
        return constraint

    def _check_acyclic(self) -> None:
        # DFS over child -> parent edges; a cycle would make activation
        # resolution ill-defined.
        edges = {child: [c.parent for c in conds] for child, conds in self._conditions.items()}
        state: dict[str, int] = {}

        def visit(node: str) -> None:
            if state.get(node) == 1:
                raise SpaceError(f"condition cycle involving parameter {node!r}")
            if state.get(node) == 2:
                return
            state[node] = 1
            for parent in edges.get(node, ()):
                visit(parent)
            state[node] = 2

        for child in edges:
            visit(child)

    # -- introspection -------------------------------------------------------
    @property
    def names(self) -> list[str]:
        return list(self._params)

    @property
    def parameters(self) -> list[Parameter]:
        return list(self._params.values())

    @property
    def conditions(self) -> list[Condition]:
        return [c for conds in self._conditions.values() for c in conds]

    @property
    def constraints(self) -> list[Constraint]:
        return list(self._constraints)

    @property
    def n_dims(self) -> int:
        return len(self._params)

    def __len__(self) -> int:
        return len(self._params)

    def __contains__(self, name: str) -> bool:
        return name in self._params

    def __getitem__(self, name: str) -> Parameter:
        try:
            return self._params[name]
        except KeyError:
            raise UnknownParameterError(name) from None

    def index_of(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise UnknownParameterError(name) from None

    # -- activation ---------------------------------------------------------
    def active_names(self, values: Mapping[str, Any]) -> frozenset[str]:
        """Resolve which knobs are active under conditional rules.

        Unconditioned knobs are always active; conditioned knobs are active
        iff all their conditions hold, evaluated against active parents only.
        Resolution iterates to a fixpoint (condition graphs are acyclic).
        """
        active = {name for name in self._params if name not in self._conditions}
        for _ in range(len(self._conditions) + 1):
            visible = {n: values.get(n, self._params[n].default) for n in active}
            newly = {
                child
                for child, conds in self._conditions.items()
                if child not in active and all(c.parent in active and c.is_active(visible) for c in conds)
            }
            if not newly:
                break
            active |= newly
        return frozenset(active)

    # -- construction of configurations --------------------------------------
    def make(self, values: Mapping[str, Any] | None = None, check_constraints: bool = True) -> Configuration:
        """Build a configuration, filling gaps with defaults and validating.

        Inactive conditional knobs are silently reset to their defaults;
        active knobs must carry valid values.
        """
        values = dict(values or {})
        for extra in set(values) - set(self._params):
            raise UnknownParameterError(extra)
        full = {name: values.get(name, p.default) for name, p in self._params.items()}
        active = self.active_names(full)
        resolved = {
            name: (full[name] if name in active else self._params[name].default)
            for name in self._params
        }
        for name in active:
            self._params[name].check(resolved[name])
        if check_constraints and not all_satisfied(self._constraints, resolved):
            raise ConstraintViolationError(f"configuration violates constraints: {resolved}")
        return Configuration(self, resolved, active)

    def default_configuration(self) -> Configuration:
        return self.make({})

    def is_feasible(self, values: Mapping[str, Any]) -> bool:
        """True iff the value mapping satisfies every hard constraint."""
        return all_satisfied(self._constraints, values)

    # -- sampling -------------------------------------------------------------
    def sample(self, rng: np.random.Generator | None = None) -> Configuration:
        """Draw one feasible configuration (rejection sampling on constraints)."""
        rng = rng if rng is not None else self._rng
        for _ in range(self._MAX_SAMPLE_ATTEMPTS):
            raw = {name: p.sample(rng) for name, p in self._params.items()}
            try:
                return self.make(raw)
            except ConstraintViolationError:
                continue
        raise SamplingError(
            f"could not sample a feasible configuration from {self.name!r} in "
            f"{self._MAX_SAMPLE_ATTEMPTS} attempts; constraints may be unsatisfiable"
        )

    def sample_many(self, n: int, rng: np.random.Generator | None = None) -> list[Configuration]:
        """Draw ``n`` feasible configurations with one vectorized pass per knob.

        Every parameter column is drawn in a single batched call
        (:meth:`Parameter.sample_many`), then rows are materialized once.
        Spaces without conditions or constraints skip per-row validation
        entirely — column draws are in-domain by construction; otherwise
        rows go through :meth:`make` and constraint-violating rows are
        redrawn in vectorized rounds (same rejection semantics and attempt
        budget as :meth:`sample`).
        """
        rng = rng if rng is not None else self._rng
        n = int(n)
        if n <= 0:
            return []
        names = list(self._params)
        simple = not self._conditions and not self._constraints
        all_active = frozenset(names)
        out: list[Configuration] = []
        attempts = 0
        while len(out) < n:
            batch = n - len(out)
            if attempts + batch > self._MAX_SAMPLE_ATTEMPTS:
                raise SamplingError(
                    f"could not sample {n} feasible configurations from "
                    f"{self.name!r} in {self._MAX_SAMPLE_ATTEMPTS} attempts; "
                    "constraints may be unsatisfiable"
                )
            attempts += batch
            cols = [p.sample_many(rng, batch) for p in self._params.values()]
            for row in zip(*cols):
                values = dict(zip(names, row))
                if simple:
                    out.append(Configuration(self, values, all_active))
                    continue
                try:
                    out.append(self.make(values))
                except ConstraintViolationError:
                    continue
        return out

    # -- encodings --------------------------------------------------------------
    def to_unit_array(self, config: Mapping[str, Any]) -> np.ndarray:
        """Encode a configuration as a unit-cube vector, one dim per knob."""
        return np.array(
            [p.to_unit(config.get(name, p.default)) for name, p in self._params.items()],
            dtype=float,
        )

    def from_unit_array(self, x: Sequence[float], check_constraints: bool = False) -> Configuration:
        """Decode a unit-cube vector into a configuration.

        Constraint checking is off by default: numerical optimizers produce
        candidate vectors first and filter feasibility second.
        """
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n_dims,):
            raise SpaceError(f"expected a vector of length {self.n_dims}, got shape {x.shape}")
        values = {name: p.from_unit(float(u)) for (name, p), u in zip(self._params.items(), x)}
        return self.make(values, check_constraints=check_constraints)

    # -- local moves -------------------------------------------------------------
    def neighbor(
        self,
        config: Configuration,
        rng: np.random.Generator | None = None,
        scale: float = 0.1,
        n_moves: int = 1,
    ) -> Configuration:
        """Perturb ``n_moves`` random active knobs (annealing / GA mutation)."""
        rng = rng if rng is not None else self._rng
        values = config.as_dict()
        active = sorted(config.active)
        for _ in range(self._MAX_SAMPLE_ATTEMPTS // 100):
            candidate = dict(values)
            moved = rng.choice(active, size=min(n_moves, len(active)), replace=False)
            for name in moved:
                candidate[name] = self._params[name].neighbor(candidate[name], rng, scale)
            try:
                return self.make(candidate)
            except ConstraintViolationError:
                continue
        return config

    def neighbor_many(
        self,
        config: Configuration,
        n: int,
        rng: np.random.Generator | None = None,
        scales: float | Sequence[float] = 0.1,
    ) -> list[Configuration]:
        """Draw ``n`` single-knob perturbations of ``config`` in one pass.

        Each row moves one uniformly chosen active knob; ``scales`` may be a
        scalar or one step size per row (candidate generators mix tight and
        loose local moves this way). Knob draws are grouped so every
        parameter perturbs its rows with a single vectorized call. Rows that
        violate a constraint fall back to ``config`` itself, mirroring
        :meth:`neighbor`'s give-up behaviour without per-row retry loops.
        """
        rng = rng if rng is not None else self._rng
        n = int(n)
        if n <= 0:
            return []
        active = sorted(config.active)
        if not active:
            return [config] * n
        scale_rows = np.broadcast_to(np.asarray(scales, dtype=float), (n,))
        moved = rng.integers(len(active), size=n)
        new_vals: dict[int, list[Any]] = {}
        for k, name in enumerate(active):
            rows = np.nonzero(moved == k)[0]
            if len(rows) == 0:
                continue
            vals = self._params[name].neighbor_many(
                config[name], rng, len(rows), scale_rows[rows]
            )
            new_vals.update(zip(rows.tolist(), vals))
        base = config.as_dict()
        simple = not self._conditions and not self._constraints
        out: list[Configuration] = []
        for i in range(n):
            name = active[int(moved[i])]
            values = dict(base)
            values[name] = new_vals[i]
            if simple:
                out.append(Configuration(self, values, config.active))
                continue
            try:
                out.append(self.make(values))
            except ConstraintViolationError:
                out.append(config)
        return out

    # -- grids ----------------------------------------------------------------------
    def grid(self, points_per_dim: int = 5, max_points: int = 100_000) -> list[Configuration]:
        """Cartesian grid over all knobs (classic grid search).

        Numeric knobs get ``points_per_dim`` evenly spaced unit positions;
        categoricals enumerate all choices. Infeasible points are dropped.
        """
        axes: list[list[Any]] = []
        for p in self._params.values():
            if isinstance(p, CategoricalParameter):
                axes.append(list(p.choices))
            else:
                units = np.linspace(0.0, 1.0, points_per_dim)
                seen: list[Any] = []
                for u in units:
                    v = p.from_unit(float(u))
                    if v not in seen:
                        seen.append(v)
                axes.append(seen)
        total = 1
        for axis in axes:
            total *= len(axis)
            if total > max_points:
                raise SpaceError(
                    f"grid would have more than {max_points} points; "
                    "reduce points_per_dim or tune fewer knobs"
                )
        configs = []
        for combo in itertools.product(*axes):
            try:
                configs.append(self.make(dict(zip(self.names, combo))))
            except ConstraintViolationError:
                continue
        # Conditional knobs collapse distinct combos onto the same resolved
        # configuration; deduplicate while preserving order.
        unique: dict[Configuration, None] = dict.fromkeys(configs)
        return list(unique)

    # -- derived spaces -------------------------------------------------------------
    def subspace(self, names: Sequence[str], name: str | None = None) -> "ConfigurationSpace":
        """A space over a subset of knobs (e.g. only the important ones).

        Conditions and constraints are kept when every knob they mention is
        included, otherwise dropped — the excluded knobs stay at defaults.
        """
        keep = set(names)
        for n in keep:
            if n not in self._params:
                raise UnknownParameterError(n)
        sub = ConfigurationSpace(name or f"{self.name}[{len(keep)} knobs]")
        for n, p in self._params.items():
            if n in keep:
                sub.add(p)
        for cond in self.conditions:
            if cond.child in keep and cond.parent in keep:
                sub.add_condition(cond)
        for con in self._constraints:
            mentioned = _constraint_params(con)
            if mentioned is not None and mentioned <= keep:
                sub.add_constraint(con)
        return sub

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConfigurationSpace(name={self.name!r}, n_dims={self.n_dims})"


def _constraint_params(constraint: Constraint) -> set[str] | None:
    """Best-effort extraction of the knob names a constraint mentions.

    Returns None for black-box constraints whose dependencies are unknown —
    subspacing drops those to stay safe.
    """
    from .constraints import LinearConstraint, RatioConstraint

    if isinstance(constraint, LinearConstraint):
        return set(constraint.coefficients)
    if isinstance(constraint, RatioConstraint):
        names = {constraint.numerator, constraint.denominator}
        if constraint.divisor:
            names.add(constraint.divisor)
        return names
    return None
