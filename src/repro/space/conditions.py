"""Conditional parameter activation (structured search spaces).

The tutorial's "Constraining the Search Space — Structured Search Space
Optimization" slide: *if PostgreSQL ``jit=off``, ignore ``jit_above_cost``,
``jit_expressions``, etc.* A :class:`Condition` makes a child parameter
active only when a predicate over its parent's value holds; inactive
parameters are pinned to their defaults and excluded from search.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Hashable, Mapping, Sequence

__all__ = [
    "Condition",
    "EqualsCondition",
    "InCondition",
    "GreaterThanCondition",
    "LessThanCondition",
    "CallableCondition",
]


class Condition(ABC):
    """Activates ``child`` only when the parent's value satisfies a predicate."""

    def __init__(self, child: str, parent: str) -> None:
        self.child = child
        self.parent = parent

    @abstractmethod
    def evaluate(self, parent_value: Any) -> bool:
        """True iff the child is active given the parent's value."""

    def is_active(self, values: Mapping[str, Any]) -> bool:
        """Evaluate against a full configuration mapping.

        A child whose parent is absent (itself deactivated) is inactive.
        """
        if self.parent not in values:
            return False
        return self.evaluate(values[self.parent])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(child={self.child!r}, parent={self.parent!r})"


class EqualsCondition(Condition):
    """Child active iff ``parent == value`` (e.g. ``jit == True``)."""

    def __init__(self, child: str, parent: str, value: Any) -> None:
        super().__init__(child, parent)
        self.value = value

    def evaluate(self, parent_value: Any) -> bool:
        return parent_value == self.value


class InCondition(Condition):
    """Child active iff the parent's value is one of ``values``."""

    def __init__(self, child: str, parent: str, values: Sequence[Hashable]) -> None:
        super().__init__(child, parent)
        self.values = set(values)

    def evaluate(self, parent_value: Any) -> bool:
        try:
            return parent_value in self.values
        except TypeError:
            return False


class GreaterThanCondition(Condition):
    """Child active iff ``parent > threshold``."""

    def __init__(self, child: str, parent: str, threshold: float) -> None:
        super().__init__(child, parent)
        self.threshold = threshold

    def evaluate(self, parent_value: Any) -> bool:
        return parent_value > self.threshold


class LessThanCondition(Condition):
    """Child active iff ``parent < threshold``."""

    def __init__(self, child: str, parent: str, threshold: float) -> None:
        super().__init__(child, parent)
        self.threshold = threshold

    def evaluate(self, parent_value: Any) -> bool:
        return parent_value < self.threshold


class CallableCondition(Condition):
    """Child active iff ``predicate(parent_value)`` is truthy."""

    def __init__(self, child: str, parent: str, predicate: Callable[[Any], bool]) -> None:
        super().__init__(child, parent)
        self.predicate = predicate

    def evaluate(self, parent_value: Any) -> bool:
        return bool(self.predicate(parent_value))
