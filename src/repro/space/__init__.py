"""Configuration spaces: knobs, conditions, constraints, priors, adapters."""

from .conditions import (
    CallableCondition,
    Condition,
    EqualsCondition,
    GreaterThanCondition,
    InCondition,
    LessThanCondition,
)
from .constraints import (
    CallableConstraint,
    Constraint,
    LinearConstraint,
    RatioConstraint,
)
from .params import (
    BooleanParameter,
    CategoricalParameter,
    FloatParameter,
    IntegerParameter,
    Parameter,
)
from .priors import BetaPrior, HistogramPrior, NormalPrior, Prior, UniformPrior
from .space import Configuration, ConfigurationSpace

__all__ = [
    "CallableCondition",
    "Condition",
    "EqualsCondition",
    "GreaterThanCondition",
    "InCondition",
    "LessThanCondition",
    "CallableConstraint",
    "Constraint",
    "LinearConstraint",
    "RatioConstraint",
    "BooleanParameter",
    "CategoricalParameter",
    "FloatParameter",
    "IntegerParameter",
    "Parameter",
    "BetaPrior",
    "HistogramPrior",
    "NormalPrior",
    "Prior",
    "UniformPrior",
    "Configuration",
    "ConfigurationSpace",
]
