"""Tunable parameter ("knob") definitions.

A parameter owns its domain, default value, optional transform (log scale,
quantization), and an optional sampling prior. Parameters know how to map
values to and from the unit interval ``[0, 1]`` — the canonical encoding the
numerical optimizers operate in (slide "Configuration Space").
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, Hashable, Sequence

import numpy as np

from ..exceptions import InvalidValueError, SpaceError
from .priors import Prior, UniformPrior

__all__ = [
    "Parameter",
    "FloatParameter",
    "IntegerParameter",
    "CategoricalParameter",
    "BooleanParameter",
]


class Parameter(ABC):
    """A single tunable knob.

    Subclasses implement the domain logic; the base class only stores the
    name and default and defines the encoding protocol used by optimizers.
    """

    def __init__(self, name: str, default: Any) -> None:
        if not name or not isinstance(name, str):
            raise SpaceError(f"parameter name must be a non-empty string, got {name!r}")
        self.name = name
        self.default = default

    # -- domain ----------------------------------------------------------
    @abstractmethod
    def validate(self, value: Any) -> bool:
        """Return True iff ``value`` lies in this parameter's domain."""

    def check(self, value: Any) -> Any:
        """Validate and return ``value``, raising :class:`InvalidValueError`."""
        if not self.validate(value):
            raise InvalidValueError(f"{value!r} is not a valid value for {self!r}")
        return value

    # -- sampling --------------------------------------------------------
    @abstractmethod
    def sample(self, rng: np.random.Generator) -> Any:
        """Draw one value from the parameter's prior."""

    def sample_many(self, rng: np.random.Generator, n: int) -> list[Any]:
        """Draw ``n`` values in one vectorized pass (plain-Python scalars).

        Subclasses override with closed-form array math; the fallback loops
        over :meth:`sample`.
        """
        return [self.sample(rng) for _ in range(int(n))]

    # -- unit-cube encoding ----------------------------------------------
    @abstractmethod
    def to_unit(self, value: Any) -> float:
        """Map a domain value into ``[0, 1]``."""

    def to_unit_many(self, values: Sequence[Any]) -> np.ndarray:
        """Vectorized :meth:`to_unit` over a batch of values.

        Subclasses override with closed-form array math where possible; the
        fallback loops.
        """
        return np.array([self.to_unit(v) for v in values], dtype=float)

    @abstractmethod
    def from_unit(self, u: float) -> Any:
        """Map a unit-interval position back into the domain."""

    def from_unit_many(self, u: Sequence[float]) -> list[Any]:
        """Vectorized :meth:`from_unit` over a batch of unit positions."""
        return [self.from_unit(float(v)) for v in np.asarray(u, dtype=float)]

    # -- neighbourhoods (annealing / GA / local search) --------------------
    @abstractmethod
    def neighbor(self, value: Any, rng: np.random.Generator, scale: float = 0.1) -> Any:
        """Return a value near ``value``; ``scale`` in (0, 1] sets the step."""

    def neighbor_many(
        self,
        value: Any,
        rng: np.random.Generator,
        n: int,
        scale: float | np.ndarray = 0.1,
    ) -> list[Any]:
        """Draw ``n`` neighbours of one value (``scale`` may be per-row).

        Subclasses override with one vectorized draw; the fallback loops.
        """
        scales = np.broadcast_to(np.asarray(scale, dtype=float), (int(n),))
        return [self.neighbor(value, rng, float(s)) for s in scales]

    @property
    def is_numeric(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class _NumericParameter(Parameter):
    """Shared logic for float and integer knobs: bounds, log scale, prior."""

    def __init__(
        self,
        name: str,
        lower: float,
        upper: float,
        default: float | None = None,
        log: bool = False,
        prior: Prior | None = None,
    ) -> None:
        if not (math.isfinite(lower) and math.isfinite(upper)):
            raise SpaceError(f"{name}: bounds must be finite, got [{lower}, {upper}]")
        if lower >= upper:
            raise SpaceError(f"{name}: lower ({lower}) must be < upper ({upper})")
        if log and lower <= 0:
            raise SpaceError(f"{name}: log-scale parameters need lower > 0, got {lower}")
        self.lower = lower
        self.upper = upper
        self.log = log
        self.prior = prior if prior is not None else UniformPrior()
        if default is None:
            default = self.from_unit(0.5)
        super().__init__(name, default)
        self.check(self.default)

    @property
    def is_numeric(self) -> bool:
        return True

    def _to_internal(self, value: float) -> float:
        return math.log(value) if self.log else float(value)

    def _from_internal(self, x: float) -> float:
        return math.exp(x) if self.log else float(x)

    @property
    def _internal_bounds(self) -> tuple[float, float]:
        return self._to_internal(self.lower), self._to_internal(self.upper)

    def to_unit(self, value: Any) -> float:
        lo, hi = self._internal_bounds
        u = (self._to_internal(float(value)) - lo) / (hi - lo)
        return min(1.0, max(0.0, u))

    def to_unit_many(self, values: Sequence[Any]) -> np.ndarray:
        v = np.asarray(values, dtype=float)
        internal = np.log(v) if self.log else v
        lo, hi = self._internal_bounds
        return np.clip((internal - lo) / (hi - lo), 0.0, 1.0)

    def _unit_to_float(self, u: float) -> float:
        u = min(1.0, max(0.0, float(u)))
        lo, hi = self._internal_bounds
        # Clamp: lo + u*(hi-lo) and exp(log(...)) round-trips can drift a ulp
        # (or collapse entirely for subnormal-scale bounds) outside the domain.
        return min(self.upper, max(self.lower, self._from_internal(lo + u * (hi - lo))))

    def _unit_to_float_many(self, u: Sequence[float]) -> np.ndarray:
        u = np.clip(np.asarray(u, dtype=float), 0.0, 1.0)
        lo, hi = self._internal_bounds
        internal = lo + u * (hi - lo)
        v = np.exp(internal) if self.log else internal
        return np.clip(v, self.lower, self.upper)

    def sample(self, rng: np.random.Generator) -> Any:
        return self.from_unit(self.prior.sample_unit(rng))

    def sample_many(self, rng: np.random.Generator, n: int) -> list[Any]:
        return self.from_unit_many(self.prior.sample_unit_many(rng, n))

    def neighbor(self, value: Any, rng: np.random.Generator, scale: float = 0.1) -> Any:
        u = self.to_unit(value)
        step = rng.normal(0.0, scale)
        return self.from_unit(min(1.0, max(0.0, u + step)))

    def neighbor_many(
        self,
        value: Any,
        rng: np.random.Generator,
        n: int,
        scale: float | np.ndarray = 0.1,
    ) -> list[Any]:
        u = self.to_unit(value)
        steps = rng.normal(0.0, 1.0, size=int(n)) * np.asarray(scale, dtype=float)
        return self.from_unit_many(np.clip(u + steps, 0.0, 1.0))


class FloatParameter(_NumericParameter):
    """A continuous knob, optionally on a log scale or quantized.

    Parameters
    ----------
    name:
        Knob name, e.g. ``"checkpoint_completion_target"``.
    lower, upper:
        Inclusive bounds.
    default:
        Default value; midpoint (in transformed space) when omitted.
    log:
        Optimize in log-space — appropriate for scale-free knobs such as
        ``sched_migration_cost_ns``.
    quantization:
        Round values to multiples of this step (e.g. 0.05).
    prior:
        Sampling prior over the unit interval; uniform when omitted.
    """

    def __init__(
        self,
        name: str,
        lower: float,
        upper: float,
        default: float | None = None,
        log: bool = False,
        quantization: float | None = None,
        prior: Prior | None = None,
    ) -> None:
        if quantization is not None and quantization <= 0:
            raise SpaceError(f"{name}: quantization must be positive")
        self.quantization = quantization
        super().__init__(name, lower, upper, default=default, log=log, prior=prior)

    def _quantize(self, value: float) -> float:
        if self.quantization is None:
            return value
        q = self.quantization
        snapped = round(value / q) * q
        return min(self.upper, max(self.lower, snapped))

    def validate(self, value: Any) -> bool:
        if isinstance(value, bool) or not isinstance(value, (int, float, np.floating, np.integer)):
            return False
        v = float(value)
        if not (self.lower <= v <= self.upper) or not math.isfinite(v):
            return False
        if self.quantization is not None:
            ratio = v / self.quantization
            if abs(ratio - round(ratio)) > 1e-9 * max(1.0, abs(ratio)):
                return False
        return True

    def from_unit(self, u: float) -> float:
        return self._quantize(self._unit_to_float(u))

    def from_unit_many(self, u: Sequence[float]) -> list[float]:
        v = self._unit_to_float_many(u)
        if self.quantization is not None:
            q = self.quantization
            v = np.clip(np.round(v / q) * q, self.lower, self.upper)
        return v.tolist()


class IntegerParameter(_NumericParameter):
    """An integer knob, e.g. ``max_worker_processes`` or a buffer size in MB."""

    def __init__(
        self,
        name: str,
        lower: int,
        upper: int,
        default: int | None = None,
        log: bool = False,
        prior: Prior | None = None,
    ) -> None:
        if int(lower) != lower or int(upper) != upper:
            raise SpaceError(f"{name}: integer bounds required, got [{lower}, {upper}]")
        super().__init__(name, int(lower), int(upper), default=default, log=log, prior=prior)
        self.default = int(self.default)

    def validate(self, value: Any) -> bool:
        if isinstance(value, bool):
            return False
        if isinstance(value, (int, np.integer)):
            return self.lower <= int(value) <= self.upper
        if isinstance(value, (float, np.floating)) and float(value).is_integer():
            return self.lower <= int(value) <= self.upper
        return False

    def from_unit(self, u: float) -> int:
        v = self._unit_to_float(u)
        return int(min(self.upper, max(self.lower, round(v))))

    def from_unit_many(self, u: Sequence[float]) -> list[int]:
        v = np.clip(np.round(self._unit_to_float_many(u)), self.lower, self.upper)
        return [int(x) for x in v]

    def neighbor(self, value: Any, rng: np.random.Generator, scale: float = 0.1) -> int:
        candidate = super().neighbor(value, rng, scale)
        if candidate == value:
            # Always move somewhere for discrete domains so local search
            # cannot stall on a plateau created by rounding.
            candidate = int(value) + (1 if rng.random() < 0.5 else -1)
            candidate = min(self.upper, max(self.lower, candidate))
        return int(candidate)

    def neighbor_many(
        self,
        value: Any,
        rng: np.random.Generator,
        n: int,
        scale: float | np.ndarray = 0.1,
    ) -> list[int]:
        cands = np.asarray(super().neighbor_many(value, rng, n, scale))
        stalled = cands == int(value)
        if stalled.any():
            # Same plateau escape as the scalar path, drawn as one batch.
            step = np.where(rng.random(int(stalled.sum())) < 0.5, 1, -1)
            cands[stalled] = np.clip(int(value) + step, self.lower, self.upper)
        return [int(c) for c in cands]


class CategoricalParameter(Parameter):
    """An unordered discrete knob, e.g. ``innodb_flush_method``.

    The unit-interval encoding divides ``[0, 1]`` into equal bins, one per
    choice. This imposes an artificial order — the tutorial's
    "Discrete / Hybrid Optimization" slide discusses why; use one-hot
    encoding (:mod:`repro.space.encoding`) or a random-forest surrogate to
    avoid it.
    """

    def __init__(
        self,
        name: str,
        choices: Sequence[Hashable],
        default: Hashable | None = None,
        weights: Sequence[float] | None = None,
    ) -> None:
        choices = list(choices)
        if len(choices) < 2:
            raise SpaceError(f"{name}: need at least 2 choices, got {choices!r}")
        if len(set(choices)) != len(choices):
            raise SpaceError(f"{name}: duplicate choices in {choices!r}")
        self.choices = choices
        self._index = {c: i for i, c in enumerate(choices)}
        if weights is not None:
            w = np.asarray(weights, dtype=float)
            if w.shape != (len(choices),) or np.any(w < 0) or w.sum() <= 0:
                raise SpaceError(f"{name}: weights must be {len(choices)} non-negative values")
            self.weights = w / w.sum()
        else:
            self.weights = np.full(len(choices), 1.0 / len(choices))
        super().__init__(name, choices[0] if default is None else default)
        self.check(self.default)

    @property
    def n_choices(self) -> int:
        return len(self.choices)

    def validate(self, value: Any) -> bool:
        try:
            return value in self._index
        except TypeError:
            return False

    def index_of(self, value: Any) -> int:
        self.check(value)
        return self._index[value]

    def sample(self, rng: np.random.Generator) -> Any:
        return self.choices[int(rng.choice(len(self.choices), p=self.weights))]

    def sample_many(self, rng: np.random.Generator, n: int) -> list[Any]:
        idx = rng.choice(len(self.choices), size=int(n), p=self.weights)
        return [self.choices[int(i)] for i in idx]

    def to_unit(self, value: Any) -> float:
        i = self.index_of(value)
        return (i + 0.5) / self.n_choices

    def to_unit_many(self, values: Sequence[Any]) -> np.ndarray:
        idx = np.array([self.index_of(v) for v in values], dtype=float)
        return (idx + 0.5) / self.n_choices

    def from_unit(self, u: float) -> Any:
        u = min(1.0, max(0.0, float(u)))
        i = min(self.n_choices - 1, int(u * self.n_choices))
        return self.choices[i]

    def neighbor(self, value: Any, rng: np.random.Generator, scale: float = 0.1) -> Any:
        others = [c for c in self.choices if c != value]
        return others[int(rng.integers(len(others)))]

    def neighbor_many(
        self,
        value: Any,
        rng: np.random.Generator,
        n: int,
        scale: float | np.ndarray = 0.1,
    ) -> list[Any]:
        others = [c for c in self.choices if c != value]
        idx = rng.integers(len(others), size=int(n))
        return [others[int(i)] for i in idx]


class BooleanParameter(CategoricalParameter):
    """An on/off knob, e.g. PostgreSQL ``jit``."""

    def __init__(self, name: str, default: bool = False) -> None:
        super().__init__(name, [False, True], default=bool(default))

    def validate(self, value: Any) -> bool:
        return isinstance(value, (bool, np.bool_))
