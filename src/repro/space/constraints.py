"""Hard constraints across multiple knobs.

The tutorial's "Constrained Optimization" slide gives the canonical example:
``innodb_buffer_pool_chunk_size <= innodb_buffer_pool_size /
innodb_buffer_pool_instances``. Constraints may be known closed forms
(:class:`LinearConstraint`, :class:`RatioConstraint`) or opaque
(:class:`CallableConstraint` — the black-box constraints SCBO targets).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Mapping, Sequence

__all__ = [
    "Constraint",
    "LinearConstraint",
    "RatioConstraint",
    "CallableConstraint",
]


class Constraint(ABC):
    """A hard feasibility predicate over configuration values."""

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__

    @abstractmethod
    def is_satisfied(self, values: Mapping[str, Any]) -> bool:
        """True iff the (full, active-resolved) configuration is feasible.

        A constraint referencing an inactive/absent parameter is treated as
        satisfied — it simply does not apply.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class LinearConstraint(Constraint):
    """``sum_i coef_i * values[param_i] <= bound`` over numeric knobs."""

    def __init__(
        self,
        coefficients: Mapping[str, float],
        bound: float,
        name: str = "",
    ) -> None:
        super().__init__(name or "linear")
        if not coefficients:
            raise ValueError("LinearConstraint needs at least one coefficient")
        self.coefficients = dict(coefficients)
        self.bound = float(bound)

    def is_satisfied(self, values: Mapping[str, Any]) -> bool:
        total = 0.0
        for param, coef in self.coefficients.items():
            if param not in values:
                return True
            total += coef * float(values[param])
        return total <= self.bound + 1e-12


class RatioConstraint(Constraint):
    """``values[numerator] <= values[denominator] / values[divisor]``.

    Directly models the MySQL buffer-pool chunk-size rule from the tutorial.
    ``divisor`` may be omitted for a plain two-knob dominance constraint.
    """

    def __init__(
        self,
        numerator: str,
        denominator: str,
        divisor: str | None = None,
        name: str = "",
    ) -> None:
        super().__init__(name or "ratio")
        self.numerator = numerator
        self.denominator = denominator
        self.divisor = divisor

    def is_satisfied(self, values: Mapping[str, Any]) -> bool:
        needed = [self.numerator, self.denominator] + ([self.divisor] if self.divisor else [])
        if any(p not in values for p in needed):
            return True
        rhs = float(values[self.denominator])
        if self.divisor is not None:
            div = float(values[self.divisor])
            if div == 0:
                return False
            rhs /= div
        return float(values[self.numerator]) <= rhs + 1e-12


class CallableConstraint(Constraint):
    """Black-box constraint: arbitrary predicate over the value mapping."""

    def __init__(self, predicate: Callable[[Mapping[str, Any]], bool], name: str = "") -> None:
        super().__init__(name or "callable")
        self.predicate = predicate

    def is_satisfied(self, values: Mapping[str, Any]) -> bool:
        return bool(self.predicate(values))


def all_satisfied(constraints: Sequence[Constraint], values: Mapping[str, Any]) -> bool:
    """Convenience: True iff every constraint in the list holds."""
    return all(c.is_satisfied(values) for c in constraints)
