"""Sampling priors over the unit interval.

The tutorial's "Constraining the Search Space" slide lists *marginal
constraints* — range limits, log scale, and "specifying priors / histograms
for individual tunables" (e.g. on an 8 GB box, ``innodb_buffer_pool_size``
should likely be near 6–7 GB). A :class:`Prior` biases where random sampling
and BO initialisation place their probes, without shrinking the domain.

Priors operate in the parameter's unit interval so they compose with any
transform (log scale, quantization) the parameter applies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..exceptions import SpaceError

__all__ = ["Prior", "UniformPrior", "NormalPrior", "BetaPrior", "HistogramPrior"]


class Prior(ABC):
    """A distribution over ``[0, 1]`` used to bias sampling."""

    @abstractmethod
    def sample_unit(self, rng: np.random.Generator) -> float:
        """Draw one position in the unit interval."""

    def sample_unit_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` unit positions in one call.

        Subclasses override with a single vectorized draw; the fallback
        loops over :meth:`sample_unit`.
        """
        return np.array([self.sample_unit(rng) for _ in range(int(n))], dtype=float)

    @abstractmethod
    def pdf_unit(self, u: np.ndarray) -> np.ndarray:
        """Density at unit positions ``u`` (unnormalised is acceptable)."""


class UniformPrior(Prior):
    """No preference: every unit position equally likely."""

    def sample_unit(self, rng: np.random.Generator) -> float:
        return float(rng.random())

    def sample_unit_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.random(int(n))

    def pdf_unit(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        return np.where((u >= 0.0) & (u <= 1.0), 1.0, 0.0)


class NormalPrior(Prior):
    """Gaussian bump at ``mean`` (unit units), truncated to ``[0, 1]``.

    The natural encoding of expert advice like "around 75 % of RAM".
    """

    def __init__(self, mean: float, std: float) -> None:
        if not 0.0 <= mean <= 1.0:
            raise SpaceError(f"prior mean must be in [0, 1], got {mean}")
        if std <= 0:
            raise SpaceError(f"prior std must be positive, got {std}")
        self.mean = float(mean)
        self.std = float(std)

    def sample_unit(self, rng: np.random.Generator) -> float:
        for _ in range(64):
            x = rng.normal(self.mean, self.std)
            if 0.0 <= x <= 1.0:
                return float(x)
        return float(min(1.0, max(0.0, rng.normal(self.mean, self.std))))

    def sample_unit_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # Vectorized truncation: redraw the out-of-range tail in rounds, then
        # clip whatever survives 64 rounds (same escape hatch as the scalar
        # path, applied per position).
        out = rng.normal(self.mean, self.std, size=int(n))
        for _ in range(64):
            bad = (out < 0.0) | (out > 1.0)
            if not bad.any():
                return out
            out[bad] = rng.normal(self.mean, self.std, size=int(bad.sum()))
        return np.clip(out, 0.0, 1.0)

    def pdf_unit(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        z = (u - self.mean) / self.std
        pdf = np.exp(-0.5 * z * z)
        return np.where((u >= 0.0) & (u <= 1.0), pdf, 0.0)


class BetaPrior(Prior):
    """Beta(a, b) prior — flexible skew toward either end of the range."""

    def __init__(self, a: float, b: float) -> None:
        if a <= 0 or b <= 0:
            raise SpaceError(f"beta parameters must be positive, got a={a}, b={b}")
        self.a = float(a)
        self.b = float(b)

    def sample_unit(self, rng: np.random.Generator) -> float:
        return float(rng.beta(self.a, self.b))

    def sample_unit_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.beta(self.a, self.b, size=int(n))

    def pdf_unit(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        eps = 1e-12
        uc = np.clip(u, eps, 1.0 - eps)
        pdf = uc ** (self.a - 1.0) * (1.0 - uc) ** (self.b - 1.0)
        return np.where((u >= 0.0) & (u <= 1.0), pdf, 0.0)


class HistogramPrior(Prior):
    """Piecewise-constant prior from observed good values.

    Knowledge-transfer pipelines build these from the unit-encoded values of
    configurations that performed well on similar workloads.
    """

    def __init__(self, bin_weights: Sequence[float]) -> None:
        w = np.asarray(bin_weights, dtype=float)
        if w.ndim != 1 or len(w) < 1 or np.any(w < 0) or w.sum() <= 0:
            raise SpaceError("bin_weights must be a non-empty 1-D array of non-negative weights")
        self.bin_weights = w / w.sum()

    @classmethod
    def from_samples(cls, unit_values: Sequence[float], n_bins: int = 10, smoothing: float = 1.0) -> "HistogramPrior":
        """Build a prior from unit-interval samples with Laplace smoothing."""
        counts, _ = np.histogram(np.asarray(unit_values, dtype=float), bins=n_bins, range=(0.0, 1.0))
        return cls(counts + smoothing)

    @property
    def n_bins(self) -> int:
        return len(self.bin_weights)

    def sample_unit(self, rng: np.random.Generator) -> float:
        i = int(rng.choice(self.n_bins, p=self.bin_weights))
        return float((i + rng.random()) / self.n_bins)

    def sample_unit_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        n = int(n)
        i = rng.choice(self.n_bins, size=n, p=self.bin_weights)
        return (i + rng.random(n)) / self.n_bins

    def pdf_unit(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        idx = np.clip((u * self.n_bins).astype(int), 0, self.n_bins - 1)
        pdf = self.bin_weights[idx] * self.n_bins
        return np.where((u >= 0.0) & (u <= 1.0), pdf, 0.0)
