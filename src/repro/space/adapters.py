"""Search-space adapters — the LlamaTune toolbox.

LlamaTune (VLDB 2022; tutorial "Dimensionality Reduction" slide) makes DBMS
tuning sample-efficient by transforming the search space before the
optimizer sees it:

* **low-dimensional projection** — optimize in a random linear subspace
  (HesBO-style hashing embedding) because many knobs are correlated;
* **special knob-value handling** — reserve probability mass for sentinel
  values such as ``OFF``/``0`` that behave discontinuously;
* **knob-value bucketization** — snap numeric knobs to a coarse lattice to
  shrink the effective space.

An adapter exposes an *adapted* space for the optimizer and projects the
optimizer's points into the *target* space the system actually consumes.
Adapters compose: projection ∘ bucketization etc.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping, Sequence

import numpy as np

from ..exceptions import SpaceError
from .params import CategoricalParameter, FloatParameter
from .space import Configuration, ConfigurationSpace

__all__ = [
    "SpaceAdapter",
    "IdentityAdapter",
    "RandomProjectionAdapter",
    "BucketizationAdapter",
    "SpecialValuesAdapter",
    "LlamaTuneAdapter",
]


class SpaceAdapter(ABC):
    """Maps points of a (usually smaller) adapted space into the target space."""

    def __init__(self, target_space: ConfigurationSpace) -> None:
        self.target_space = target_space

    @property
    @abstractmethod
    def adapted_space(self) -> ConfigurationSpace:
        """The space the optimizer searches."""

    @abstractmethod
    def project(self, adapted_config: Configuration) -> Configuration:
        """Adapted-space point → target-space configuration."""


class IdentityAdapter(SpaceAdapter):
    """No-op adapter (baseline for adapter ablations)."""

    @property
    def adapted_space(self) -> ConfigurationSpace:
        return self.target_space

    def project(self, adapted_config: Configuration) -> Configuration:
        return adapted_config


class RandomProjectionAdapter(SpaceAdapter):
    """HesBO-style hashing embedding into ``d`` latent dimensions.

    Each target knob ``i`` is assigned a latent dimension ``h(i)`` and a sign
    ``s(i) ∈ {±1}``; the target's unit value is ``0.5 + s(i)·(y[h(i)] − 0.5)``
    where ``y ∈ [0,1]^d`` is the latent point. Correlated knobs thus move
    together, which is exactly the structure LlamaTune exploits.
    """

    def __init__(self, target_space: ConfigurationSpace, d: int, seed: int | None = None) -> None:
        super().__init__(target_space)
        if d < 1:
            raise SpaceError(f"projection dimension must be >= 1, got {d}")
        self.d = min(int(d), target_space.n_dims)
        rng = np.random.default_rng(seed)
        n = target_space.n_dims
        # Guarantee every latent dim is used so no latent knob is dead.
        assignment = np.concatenate([
            np.arange(self.d),
            rng.integers(0, self.d, size=max(0, n - self.d)),
        ])
        rng.shuffle(assignment)
        self._assignment = assignment[:n]
        self._signs = rng.choice([-1.0, 1.0], size=n)
        self._adapted = ConfigurationSpace(f"{target_space.name}/proj{self.d}")
        for j in range(self.d):
            self._adapted.add(FloatParameter(f"z{j}", 0.0, 1.0, default=0.5))

    @property
    def adapted_space(self) -> ConfigurationSpace:
        return self._adapted

    def project(self, adapted_config: Configuration) -> Configuration:
        y = np.array([adapted_config[f"z{j}"] for j in range(self.d)])
        u = 0.5 + self._signs * (y[self._assignment] - 0.5)
        return self.target_space.from_unit_array(np.clip(u, 0.0, 1.0))


class BucketizationAdapter(SpaceAdapter):
    """Snap numeric knobs to ``n_buckets`` evenly spaced unit positions."""

    def __init__(self, target_space: ConfigurationSpace, n_buckets: int = 16) -> None:
        super().__init__(target_space)
        if n_buckets < 2:
            raise SpaceError(f"need at least 2 buckets, got {n_buckets}")
        self.n_buckets = int(n_buckets)

    @property
    def adapted_space(self) -> ConfigurationSpace:
        return self.target_space

    def project(self, adapted_config: Configuration) -> Configuration:
        u = self.target_space.to_unit_array(adapted_config)
        snapped = []
        for p, ui in zip(self.target_space.parameters, u):
            if isinstance(p, CategoricalParameter):
                snapped.append(ui)
            else:
                snapped.append(round(ui * (self.n_buckets - 1)) / (self.n_buckets - 1))
        return self.target_space.from_unit_array(np.asarray(snapped))


class SpecialValuesAdapter(SpaceAdapter):
    """Reserve a slice of the unit interval for special sentinel values.

    For knobs listed in ``special_values`` the lowest ``bias`` fraction of
    the unit interval maps to the sentinel(s) (e.g. ``0`` = feature off)
    instead of tiny ordinary values, so the optimizer can actually find the
    discontinuous regime.
    """

    def __init__(
        self,
        target_space: ConfigurationSpace,
        special_values: Mapping[str, Sequence[float]],
        bias: float = 0.2,
    ) -> None:
        super().__init__(target_space)
        if not 0.0 < bias < 1.0:
            raise SpaceError(f"bias must be in (0, 1), got {bias}")
        for name in special_values:
            if name not in target_space:
                raise SpaceError(f"unknown knob {name!r} in special_values")
        self.special_values = {k: list(v) for k, v in special_values.items()}
        self.bias = float(bias)

    @property
    def adapted_space(self) -> ConfigurationSpace:
        return self.target_space

    def project(self, adapted_config: Configuration) -> Configuration:
        values = adapted_config.as_dict()
        for name, sentinels in self.special_values.items():
            p = self.target_space[name]
            u = p.to_unit(values[name])
            if u < self.bias:
                slot = min(len(sentinels) - 1, int(u / self.bias * len(sentinels)))
                values[name] = sentinels[slot]
            else:
                # Re-stretch the remaining mass over the full ordinary range.
                values[name] = p.from_unit((u - self.bias) / (1.0 - self.bias))
        return self.target_space.make(values, check_constraints=False)


class LlamaTuneAdapter(SpaceAdapter):
    """The full LlamaTune pipeline: special values → projection → buckets."""

    def __init__(
        self,
        target_space: ConfigurationSpace,
        d: int = 8,
        n_buckets: int | None = 16,
        special_values: Mapping[str, Sequence[float]] | None = None,
        bias: float = 0.2,
        seed: int | None = None,
    ) -> None:
        super().__init__(target_space)
        self._projection = RandomProjectionAdapter(target_space, d, seed=seed)
        self._bucketize = (
            BucketizationAdapter(target_space, n_buckets) if n_buckets else None
        )
        self._special = (
            SpecialValuesAdapter(target_space, special_values, bias=bias)
            if special_values
            else None
        )

    @property
    def adapted_space(self) -> ConfigurationSpace:
        return self._projection.adapted_space

    def project(self, adapted_config: Configuration) -> Configuration:
        config = self._projection.project(adapted_config)
        if self._bucketize is not None:
            config = self._bucketize.project(config)
        if self._special is not None:
            config = self._special.project(config)
        return config
