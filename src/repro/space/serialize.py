"""Configuration-space ↔ dict codec for durable sessions and the wire.

A tuning service that promises ``resume(session_id)`` after a process
restart must be able to rebuild the session's :class:`ConfigurationSpace`
from storage alone, and an HTTP client must be able to *define* a space in
a request body. This module provides both directions:

* :func:`space_to_dict` — JSON-safe description of parameters, conditions,
  and (declarative) priors;
* :func:`space_from_dict` — rebuild the space, validating every field.

What round-trips: Float/Integer/Categorical/Boolean parameters (bounds,
defaults, log scale, quantization, weights), Uniform/Normal/Beta/Histogram
priors, and Equals/In/GreaterThan/LessThan conditions. What cannot:
``CallableCondition``, ``CallableConstraint``, and friends hold arbitrary
Python callables — with ``strict=True`` (the default) serialising a space
containing one raises :class:`SpaceCodecError`; with ``strict=False`` they
are dropped and listed under ``"dropped"`` in the output so the caller can
surface the loss.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from ..exceptions import SpaceError
from .conditions import (
    Condition,
    EqualsCondition,
    GreaterThanCondition,
    InCondition,
    LessThanCondition,
)
from .params import (
    BooleanParameter,
    CategoricalParameter,
    FloatParameter,
    IntegerParameter,
    Parameter,
)
from .priors import BetaPrior, HistogramPrior, NormalPrior, Prior, UniformPrior
from .space import ConfigurationSpace

__all__ = ["SpaceCodecError", "space_to_dict", "space_from_dict", "space_version_hash"]

SPACE_FORMAT_VERSION = 1


class SpaceCodecError(SpaceError):
    """A space (or space description) could not be (de)serialised.

    When the failure is a specific space member (a callable condition, a
    constraint), ``subject`` names it and ``rule`` carries the matching
    :mod:`repro.staticcheck` rule id (``SP401``/``SP402``) so callers can
    cross-reference ``docs/static-analysis.md`` — the space linter flags
    the same member with the same id before serialisation is ever tried.
    """

    def __init__(self, message: str, *, subject: str | None = None, rule: str | None = None) -> None:
        super().__init__(message)
        self.subject = subject
        self.rule = rule


# -- priors ------------------------------------------------------------------

def _prior_to_dict(prior: Prior) -> dict[str, Any] | None:
    if isinstance(prior, UniformPrior):
        return None  # the default; omit for compactness
    if isinstance(prior, NormalPrior):
        return {"kind": "normal", "mean": prior.mean, "std": prior.std}
    if isinstance(prior, BetaPrior):
        return {"kind": "beta", "a": prior.a, "b": prior.b}
    if isinstance(prior, HistogramPrior):
        return {"kind": "histogram", "bin_weights": [float(w) for w in prior.bin_weights]}
    raise SpaceCodecError(f"prior {type(prior).__name__} is not serialisable")


def _prior_from_dict(data: Mapping[str, Any] | None) -> Prior | None:
    if data is None:
        return None
    kind = data.get("kind")
    try:
        if kind == "normal":
            return NormalPrior(float(data["mean"]), float(data["std"]))
        if kind == "beta":
            return BetaPrior(float(data["a"]), float(data["b"]))
        if kind == "histogram":
            return HistogramPrior([float(w) for w in data["bin_weights"]])
    except (KeyError, TypeError, ValueError) as err:
        raise SpaceCodecError(f"malformed prior {data!r}: {err}") from err
    raise SpaceCodecError(f"unknown prior kind {kind!r}")


# -- parameters --------------------------------------------------------------

def _param_to_dict(param: Parameter) -> dict[str, Any]:
    # BooleanParameter subclasses CategoricalParameter: test it first.
    if isinstance(param, BooleanParameter):
        return {"type": "bool", "name": param.name, "default": bool(param.default)}
    if isinstance(param, CategoricalParameter):
        out: dict[str, Any] = {
            "type": "categorical",
            "name": param.name,
            "choices": list(param.choices),
            "default": param.default,
        }
        weights = [float(w) for w in param.weights]
        if len(set(weights)) > 1:
            out["weights"] = weights
        return out
    if isinstance(param, IntegerParameter):
        out = {
            "type": "int",
            "name": param.name,
            "lower": int(param.lower),
            "upper": int(param.upper),
            "default": int(param.default),
            "log": bool(param.log),
        }
        prior = _prior_to_dict(param.prior)
        if prior is not None:
            out["prior"] = prior
        return out
    if isinstance(param, FloatParameter):
        out = {
            "type": "float",
            "name": param.name,
            "lower": float(param.lower),
            "upper": float(param.upper),
            "default": float(param.default),
            "log": bool(param.log),
        }
        if param.quantization is not None:
            out["quantization"] = float(param.quantization)
        prior = _prior_to_dict(param.prior)
        if prior is not None:
            out["prior"] = prior
        return out
    raise SpaceCodecError(f"parameter {type(param).__name__} is not serialisable")


def _param_from_dict(data: Mapping[str, Any]) -> Parameter:
    kind = data.get("type")
    try:
        name = str(data["name"])
        if kind == "bool":
            return BooleanParameter(name, default=bool(data.get("default", False)))
        if kind == "categorical":
            return CategoricalParameter(
                name,
                list(data["choices"]),
                default=data.get("default"),
                weights=data.get("weights"),
            )
        if kind == "int":
            return IntegerParameter(
                name,
                int(data["lower"]),
                int(data["upper"]),
                default=None if data.get("default") is None else int(data["default"]),
                log=bool(data.get("log", False)),
                prior=_prior_from_dict(data.get("prior")),
            )
        if kind == "float":
            return FloatParameter(
                name,
                float(data["lower"]),
                float(data["upper"]),
                default=None if data.get("default") is None else float(data["default"]),
                log=bool(data.get("log", False)),
                quantization=None if data.get("quantization") is None else float(data["quantization"]),
                prior=_prior_from_dict(data.get("prior")),
            )
    except SpaceCodecError:
        raise
    except (KeyError, TypeError, ValueError) as err:
        raise SpaceCodecError(f"malformed parameter {data!r}: {err}") from err
    raise SpaceCodecError(f"unknown parameter type {kind!r} in {data!r}")


# -- conditions --------------------------------------------------------------

_CONDITION_KINDS = {
    EqualsCondition: "equals",
    InCondition: "in",
    GreaterThanCondition: "gt",
    LessThanCondition: "lt",
}


def _condition_to_dict(cond: Condition) -> dict[str, Any] | None:
    kind = _CONDITION_KINDS.get(type(cond))
    if kind is None:
        return None
    out = {"kind": kind, "child": cond.child, "parent": cond.parent}
    if isinstance(cond, EqualsCondition):
        out["value"] = cond.value
    elif isinstance(cond, InCondition):
        out["values"] = sorted(cond.values, key=repr)
    elif isinstance(cond, (GreaterThanCondition, LessThanCondition)):
        out["threshold"] = cond.threshold
    return out


def _condition_from_dict(data: Mapping[str, Any]) -> Condition:
    kind = data.get("kind")
    try:
        child, parent = str(data["child"]), str(data["parent"])
        if kind == "equals":
            return EqualsCondition(child, parent, data["value"])
        if kind == "in":
            return InCondition(child, parent, list(data["values"]))
        if kind == "gt":
            return GreaterThanCondition(child, parent, float(data["threshold"]))
        if kind == "lt":
            return LessThanCondition(child, parent, float(data["threshold"]))
    except (KeyError, TypeError, ValueError) as err:
        raise SpaceCodecError(f"malformed condition {data!r}: {err}") from err
    raise SpaceCodecError(f"unknown condition kind {kind!r} in {data!r}")


# -- the space ---------------------------------------------------------------

def space_to_dict(space: ConfigurationSpace, strict: bool = True) -> dict[str, Any]:
    """JSON-safe description of ``space``.

    With ``strict=True`` an unserialisable member (callable condition or
    any hard constraint) raises; with ``strict=False`` it is skipped and
    named in the ``"dropped"`` list of the result.
    """
    dropped: list[str] = []
    params = [_param_to_dict(p) for p in space.parameters]
    conditions = []
    for cond in space.conditions:
        encoded = _condition_to_dict(cond)
        if encoded is None:
            if strict:
                raise SpaceCodecError(
                    f"[SP401] condition on {cond.child!r} ({cond!r}) holds a Python "
                    "callable and cannot be serialised; express it with Equals/In/"
                    "GreaterThan/LessThan conditions, or use strict=False to drop it",
                    subject=cond.child,
                    rule="SP401",
                )
            dropped.append(repr(cond))
        else:
            conditions.append(encoded)
    for constraint in space.constraints:
        if strict:
            raise SpaceCodecError(
                f"[SP402] constraint {constraint.name!r} ({constraint!r}) cannot be "
                "serialised; enforce it inside the evaluator too, or use "
                "strict=False to drop it",
                subject=constraint.name,
                rule="SP402",
            )
        dropped.append(repr(constraint))
    out: dict[str, Any] = {
        "version": SPACE_FORMAT_VERSION,
        "name": str(space.name),
        "parameters": params,
        "conditions": conditions,
    }
    if dropped:
        out["dropped"] = dropped
    return out


def space_version_hash(space: ConfigurationSpace | Mapping[str, Any]) -> str:
    """Short content hash of a space's serialised form.

    Journaled into every trial's provenance block so ``repro replay`` can
    refuse to replay a journal against a space whose knobs have drifted
    (renamed parameters, changed bounds, new conditions). Accepts either a
    live space (serialised with ``strict=False``, matching what session
    metadata stores) or an already-serialised dict.
    """
    data = space if isinstance(space, Mapping) else space_to_dict(space, strict=False)
    text = json.dumps(data, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


def space_from_dict(data: Mapping[str, Any]) -> ConfigurationSpace:
    """Rebuild a configuration space written by :func:`space_to_dict`."""
    version = data.get("version", SPACE_FORMAT_VERSION)
    if version != SPACE_FORMAT_VERSION:
        raise SpaceCodecError(f"unsupported space-format version {version!r}")
    params = data.get("parameters")
    if not params:
        raise SpaceCodecError("space description has no parameters")
    space = ConfigurationSpace(str(data.get("name", "space")))
    for p in params:
        space.add(_param_from_dict(p))
    for c in data.get("conditions", ()):
        space.add_condition(_condition_from_dict(c))
    return space
