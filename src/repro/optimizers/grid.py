"""Grid search — the tutorial's "[Not so] Naïve Approach".

Fixed trial budget, values at even intervals, try all, pick the best.
Exhaustive and embarrassingly parallel, but sample cost explodes with
dimensionality — which is precisely the lesson of slides 29–31.
"""

from __future__ import annotations

from ..core import Objective, Optimizer
from ..exceptions import ExhaustedError
from ..space import Configuration, ConfigurationSpace

__all__ = ["GridSearchOptimizer"]


class GridSearchOptimizer(Optimizer):
    """Enumerates a Cartesian lattice over the space.

    Parameters
    ----------
    points_per_dim:
        Lattice resolution for numeric knobs; categoricals enumerate all
        choices.
    shuffle:
        Visit lattice points in random order — improves anytime behaviour
        when the budget is smaller than the grid.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        points_per_dim: int = 5,
        shuffle: bool = False,
        objectives: Objective | list[Objective] | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(space, objectives, seed=seed)
        self._grid = space.grid(points_per_dim=points_per_dim)
        if shuffle:
            self.rng.shuffle(self._grid)
        self._cursor = 0

    @property
    def grid_size(self) -> int:
        return len(self._grid)

    @property
    def remaining(self) -> int:
        return len(self._grid) - self._cursor

    def _suggest(self) -> Configuration:
        if self._cursor >= len(self._grid):
            raise ExhaustedError(
                f"grid of {len(self._grid)} points exhausted; increase points_per_dim"
            )
        config = self._grid[self._cursor]
        self._cursor += 1
        return config

    def _digest_state(self) -> dict[str, object]:
        return {"cursor": self._cursor, "grid_size": len(self._grid)}
