"""Knowledge transfer: warm starts, crash reuse, prior banks (slide 67).

"Idea: re-use prior samples — 'warm start' a new optimization. Policy:
good samples: reuse results from similar workloads; bad samples: reuse
everywhere (if it crashes the system, probably always does)."

Tools:

* :func:`warm_start_from_history` — seed an optimizer with a prior run,
  selecting good and crashed trials per the slide's policy.
* :class:`PriorBank` — store tuning histories keyed by workload signature;
  retrieve the most similar prior run(s) for a new workload.
* :func:`space_with_priors` / :func:`priors_from_trials` — turn good prior
  configurations into per-knob histogram priors (the "specifying priors /
  histograms for individual tunables" marginal constraint).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from ..core import Optimizer, Trial, TrialStatus
from ..exceptions import OptimizerError
from ..space import ConfigurationSpace, HistogramPrior, Prior
from ..space.params import _NumericParameter
from ..workloads import Workload

__all__ = [
    "warm_start_from_history",
    "PriorBank",
    "PriorRun",
    "priors_from_trials",
    "space_with_priors",
]


def warm_start_from_history(
    optimizer: Optimizer,
    trials: list[Trial],
    top_fraction: float = 0.3,
    include_failures: bool = True,
    include_middling: bool = False,
) -> int:
    """Seed ``optimizer`` with selected trials from a prior run.

    * the best ``top_fraction`` of completed trials transfer with their
      scores ("good samples: reuse results");
    * crashed/aborted trials always transfer when ``include_failures``
      ("bad samples: reuse everywhere");
    * the middle of the distribution transfers only when asked
      ("poor samples: unclear — could be good in this case?").

    Returns the number of trials ingested.
    """
    if not 0.0 < top_fraction <= 1.0:
        raise OptimizerError(f"top_fraction must be in (0, 1], got {top_fraction}")
    obj = optimizer.objective
    completed = [t for t in trials if t.status is TrialStatus.SUCCEEDED and obj.name in t.metrics]
    failed = [t for t in trials if t.status in (TrialStatus.FAILED, TrialStatus.ABORTED)]
    completed.sort(key=lambda t: obj.score(t.metric(obj.name)))
    n_top = max(1, int(np.ceil(len(completed) * top_fraction))) if completed else 0
    selected = completed[:n_top]
    if include_middling:
        selected = completed
    count = optimizer.warm_start(selected)
    if include_failures:
        for t in failed:
            config = optimizer.space.make(
                {k: v for k, v in t.config.as_dict().items() if k in optimizer.space},
                check_constraints=False,
            )
            optimizer.observe_failure(config, cost=t.cost, status=t.status)
            count += 1
    return count


@dataclass
class PriorRun:
    """One archived tuning run: where it ran and what it found."""

    workload: Workload
    trials: list[Trial]
    context: dict = field(default_factory=dict)  # e.g. VM size, engine version

    def signature(self) -> np.ndarray:
        return self.workload.signature()


class PriorBank:
    """An archive of prior tuning runs, searchable by workload similarity.

    This is the offline half of the workload-identification story: "systems
    with similar workloads can benefit from the same optimal config"
    (slide 88). Similarity is Euclidean distance between standardised
    workload signatures; plug in an embedding model for richer matching.
    """

    def __init__(self) -> None:
        self._runs: list[PriorRun] = []

    def add(self, run: PriorRun) -> None:
        self._runs.append(run)

    def __len__(self) -> int:
        return len(self._runs)

    @property
    def runs(self) -> list[PriorRun]:
        return list(self._runs)

    def _standardised_signatures(self) -> np.ndarray:
        sigs = np.stack([r.signature() for r in self._runs])
        mean = sigs.mean(axis=0)
        std = sigs.std(axis=0)
        std[std <= 0] = 1.0
        return (sigs - mean) / std, mean, std

    def nearest(self, workload: Workload, k: int = 1) -> list[tuple[PriorRun, float]]:
        """The ``k`` most similar archived runs with their distances."""
        if not self._runs:
            raise OptimizerError("prior bank is empty")
        sigs, mean, std = self._standardised_signatures()
        query = (workload.signature() - mean) / std
        dists = np.linalg.norm(sigs - query, axis=1)
        order = np.argsort(dists)[: max(1, k)]
        return [(self._runs[i], float(dists[i])) for i in order]

    def warm_start(
        self,
        optimizer: Optimizer,
        workload: Workload,
        k: int = 1,
        max_distance: float | None = None,
        top_fraction: float = 0.3,
    ) -> int:
        """Warm-start from the nearest compatible run(s).

        ``max_distance`` gates transfer: far-away workloads contribute only
        their *crashes* (which transfer everywhere), never their scores.
        """
        count = 0
        for run, dist in self.nearest(workload, k):
            similar = max_distance is None or dist <= max_distance
            count += warm_start_from_history(
                optimizer,
                run.trials,
                top_fraction=top_fraction if similar else 1.0,
                include_failures=True,
                include_middling=False,
            ) if similar else warm_start_from_history(
                optimizer, [t for t in run.trials if t.status is not TrialStatus.SUCCEEDED],
                include_failures=True,
            )
        return count


def priors_from_trials(
    space: ConfigurationSpace,
    trials: list[Trial],
    objective_name: str,
    minimize: bool = True,
    top_fraction: float = 0.25,
    n_bins: int = 10,
) -> dict[str, Prior]:
    """Histogram priors per numeric knob from the best prior configurations."""
    done = [t for t in trials if t.ok and objective_name in t.metrics]
    if not done:
        raise OptimizerError("no completed trials with the requested metric")
    done.sort(key=lambda t: t.metric(objective_name) if minimize else -t.metric(objective_name))
    n_top = max(1, int(np.ceil(len(done) * top_fraction)))
    best = done[:n_top]
    priors: dict[str, Prior] = {}
    for param in space.parameters:
        if not isinstance(param, _NumericParameter):
            continue
        units = [param.to_unit(t.config[param.name]) for t in best if param.name in t.config]
        if units:
            priors[param.name] = HistogramPrior.from_samples(units, n_bins=n_bins)
    return priors


def space_with_priors(space: ConfigurationSpace, priors: dict[str, Prior]) -> ConfigurationSpace:
    """A copy of ``space`` whose numeric knobs sample from the given priors."""
    new = ConfigurationSpace(f"{space.name}+priors")
    for param in space.parameters:
        clone = copy.copy(param)
        if param.name in priors:
            if not isinstance(param, _NumericParameter):
                raise OptimizerError(f"priors only apply to numeric knobs, not {param.name!r}")
            clone.prior = priors[param.name]
        new.add(clone)
    for cond in space.conditions:
        new.add_condition(cond)
    for con in space.constraints:
        new.add_constraint(con)
    return new


# ---------------------------------------------------------------------------
# VM-size changes (slide 67: "Just 2x everything? Maybe not.")
# ---------------------------------------------------------------------------

#: How a knob should respond to a VM resize.
#: - "memory": scales with the RAM ratio (caches, buffer pools — "Caches, OK")
#: - "cpu": scales with the vCPU ratio (thread/worker counts)
#: - "per_worker": memory *per worker* — scales with RAM ratio / CPU ratio
#:   ("join or sort buffers? depends on the workload")
#: - "fixed": independent of the VM shape
VM_SCALING_KINDS = ("memory", "cpu", "per_worker", "fixed")

#: Sensible categories for the simulated DBMS's knobs. Note wal_buffer_mb
#: is deliberately "fixed": it is a small fixed-cost buffer with a sweet
#: spot (~16-64 MB) independent of RAM — shrinking it proportionally on a
#: small box is exactly the "just 2x everything? maybe not" trap.
DBMS_VM_SCALING: dict[str, str] = {
    "buffer_pool_mb": "memory",
    "wal_buffer_mb": "fixed",
    "temp_buffers_mb": "memory",
    "worker_threads": "cpu",
    "parallel_workers": "cpu",
    "autovacuum_workers": "cpu",
    "work_mem_mb": "per_worker",
}


def scale_config_for_vm(
    config,
    space: ConfigurationSpace,
    ram_ratio: float,
    cpu_ratio: float,
    scaling: dict[str, str] | None = None,
):
    """Adapt a tuned configuration to a different VM shape.

    The slide's point is that naive "2× everything" is wrong: caches scale
    with RAM, worker counts with cores, and per-worker buffers with the
    *ratio* of the two. Knobs without a declared kind stay fixed. Values
    are clipped into the knob's domain, so an aggressive config on a small
    box degrades gracefully.
    """
    if ram_ratio <= 0 or cpu_ratio <= 0:
        raise OptimizerError("resize ratios must be positive")
    scaling = scaling if scaling is not None else DBMS_VM_SCALING
    for kind in scaling.values():
        if kind not in VM_SCALING_KINDS:
            raise OptimizerError(f"unknown scaling kind {kind!r}")
    factors = {
        "memory": ram_ratio,
        "cpu": cpu_ratio,
        "per_worker": ram_ratio / cpu_ratio,
        "fixed": 1.0,
    }
    values = dict(config)
    for name, kind in scaling.items():
        if name not in space or name not in values:
            continue
        param = space[name]
        if not param.is_numeric:
            continue
        scaled = float(values[name]) * factors[kind]
        scaled = min(param.upper, max(param.lower, scaled))
        values[name] = param.from_unit(param.to_unit(scaled))
    return space.make(values, check_constraints=False)
