"""Acquisition functions — "pick the most interesting point to evaluate".

Implements the tutorial's slide 47 list for *minimization* problems (the
library's canonical direction): Probability of Improvement, Expected
Improvement ("takes the magnitude of improvement into account!"), and the
confidence bound ("in our case, Lower Confidence Bound: LCB = m(x) − βσ(x)",
with β controlling explore/exploit), plus the cost-aware EI used by
multi-fidelity optimization.

All functions return values to **maximise** over candidates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

import numpy as np
from scipy import stats

from ..exceptions import OptimizerError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..space import Configuration, ConfigurationSpace

__all__ = [
    "AcquisitionFunction",
    "ProbabilityOfImprovement",
    "ExpectedImprovement",
    "LowerConfidenceBound",
    "CostAwareEI",
    "ThompsonSampling",
    "generate_candidates",
]


def generate_candidates(
    space: "ConfigurationSpace",
    rng: np.random.Generator,
    n: int,
    incumbent: "Configuration | None" = None,
    global_fraction: float = 0.7,
    local_scales: Sequence[float] = (0.02, 0.05, 0.15),
) -> "list[Configuration]":
    """Candidate pool for acquisition maximisation, drawn in two batched calls.

    The standard mix used by the surrogate optimizers: ``global_fraction``
    of the pool is sampled from the whole space, the rest are single-knob
    perturbations of the incumbent at a random step size from
    ``local_scales`` (tight to loose). Everything is vectorized —
    :meth:`ConfigurationSpace.sample_many` draws all parameter columns at
    once and :meth:`ConfigurationSpace.neighbor_many` groups rows per moved
    knob — replacing the former per-candidate Python loops.
    """
    n = int(n)
    n_global = int(n * global_fraction)
    if incumbent is not None and n - n_global < 1:
        n_global = n - 1  # keep >= 1 local neighbor when an incumbent exists
    cands = space.sample_many(n_global, rng)
    if incumbent is not None and n > n_global:
        scales = rng.choice(np.asarray(local_scales, dtype=float), size=n - n_global)
        cands.extend(space.neighbor_many(incumbent, n - n_global, rng, scales=scales))
    return cands


class AcquisitionFunction(ABC):
    """Scores candidate points given posterior mean/std and the incumbent."""

    @abstractmethod
    def __call__(self, mean: np.ndarray, std: np.ndarray, best: float) -> np.ndarray:
        """Higher = more worth evaluating. ``best`` is the incumbent score."""

    @staticmethod
    def _validate(mean: np.ndarray, std: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        mean = np.asarray(mean, dtype=float)
        std = np.asarray(std, dtype=float)
        if mean.shape != std.shape:
            raise OptimizerError(f"mean/std shapes differ: {mean.shape} vs {std.shape}")
        return mean, np.maximum(std, 1e-12)


class ProbabilityOfImprovement(AcquisitionFunction):
    """PI(x) = P(f(x) < best − ξ). Cheap but greedy — ignores magnitude."""

    def __init__(self, xi: float = 0.01) -> None:
        if xi < 0:
            raise OptimizerError(f"xi must be >= 0, got {xi}")
        self.xi = float(xi)

    def __call__(self, mean: np.ndarray, std: np.ndarray, best: float) -> np.ndarray:
        mean, std = self._validate(mean, std)
        z = (best - self.xi - mean) / std
        return stats.norm.cdf(z)


class ExpectedImprovement(AcquisitionFunction):
    """EI(x) = E[max(best − f(x), 0)] — the default BO acquisition."""

    def __init__(self, xi: float = 0.01) -> None:
        if xi < 0:
            raise OptimizerError(f"xi must be >= 0, got {xi}")
        self.xi = float(xi)

    def __call__(self, mean: np.ndarray, std: np.ndarray, best: float) -> np.ndarray:
        mean, std = self._validate(mean, std)
        delta = best - self.xi - mean
        z = delta / std
        return delta * stats.norm.cdf(z) + std * stats.norm.pdf(z)


class LowerConfidenceBound(AcquisitionFunction):
    """−LCB(x) = −(m(x) − βσ(x)); β ≥ 0 trades exploration for exploitation.

    β = 0 is pure exploitation (trust the mean); large β chases uncertainty.
    """

    def __init__(self, beta: float = 2.0) -> None:
        if beta < 0:
            raise OptimizerError(f"beta must be >= 0, got {beta}")
        self.beta = float(beta)

    def __call__(self, mean: np.ndarray, std: np.ndarray, best: float) -> np.ndarray:
        mean, std = self._validate(mean, std)
        return -(mean - self.beta * std)


class CostAwareEI(AcquisitionFunction):
    """EI per unit cost — slide 65's "cost-adjusted Expected Improvement".

    ``costs`` must be set (or passed per-call) to the evaluation cost of each
    candidate; cheap-but-informative points win.
    """

    def __init__(self, xi: float = 0.01, costs: np.ndarray | None = None) -> None:
        self._ei = ExpectedImprovement(xi)
        self.costs = None if costs is None else np.asarray(costs, dtype=float)

    def __call__(
        self,
        mean: np.ndarray,
        std: np.ndarray,
        best: float,
        costs: np.ndarray | None = None,
    ) -> np.ndarray:
        ei = self._ei(mean, std, best)
        costs = self.costs if costs is None else np.asarray(costs, dtype=float)
        if costs is None:
            raise OptimizerError("CostAwareEI needs candidate costs")
        if costs.shape != ei.shape:
            raise OptimizerError(f"costs shape {costs.shape} != candidates {ei.shape}")
        if np.any(costs <= 0):
            raise OptimizerError("candidate costs must be positive")
        return ei / costs


class ThompsonSampling(AcquisitionFunction):
    """Posterior-sample acquisition: score = −(one draw from N(m, σ²)).

    Matches the multi-armed-bandit view on slide 51 — selection by sampling
    the model rather than a closed-form utility.
    """

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        # Deterministic fallback: an unseeded generator would make the
        # acquisition stream (and thus the whole campaign) non-replayable.
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def __call__(self, mean: np.ndarray, std: np.ndarray, best: float) -> np.ndarray:
        mean, std = self._validate(mean, std)
        return -self.rng.normal(mean, std)
