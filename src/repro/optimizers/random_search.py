"""Random search — the tutorial's "Variation: Random Search" baseline.

Fixed trial budget, pick configuration values at random (honouring priors),
try all, pick the best. Surprisingly strong in high dimensions, and the
standard baseline every model-guided method must beat.
"""

from __future__ import annotations

from ..core import Objective, Optimizer
from ..space import Configuration, ConfigurationSpace

__all__ = ["RandomSearchOptimizer"]


class RandomSearchOptimizer(Optimizer):
    """I.i.d. sampling from the space's priors (feasible by construction)."""

    def __init__(
        self,
        space: ConfigurationSpace,
        objectives: Objective | list[Objective] | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(space, objectives, seed=seed)

    def _suggest(self) -> Configuration:
        return self.space.sample(self.rng)
