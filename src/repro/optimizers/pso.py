"""Particle swarm optimization (slide 50's third black-box family).

A swarm of particles moves through the unit-encoded space, each attracted
to its personal best and the global best (Gad 2022's canonical update with
inertia). Ask/tell: one round evaluates every particle once, then
velocities update.
"""

from __future__ import annotations

import numpy as np

from ..core import Objective, Optimizer, Trial
from ..exceptions import OptimizerError
from ..space import Configuration, ConfigurationSpace

__all__ = ["ParticleSwarmOptimizer"]


class ParticleSwarmOptimizer(Optimizer):
    """Canonical PSO with inertia weight.

    Parameters
    ----------
    n_particles:
        Swarm size.
    inertia:
        Velocity persistence w.
    cognitive, social:
        Attraction strengths toward personal (c1) and global (c2) bests.
    v_max:
        Velocity clamp in unit-cube units.
    """

    #: Observations are matched to suggestions by queue order, so
    #: foreign observations would corrupt the population state.
    accepts_foreign_observations = False

    def __init__(
        self,
        space: ConfigurationSpace,
        n_particles: int = 12,
        inertia: float = 0.7,
        cognitive: float = 1.5,
        social: float = 1.5,
        v_max: float = 0.25,
        objectives: Objective | list[Objective] | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(space, objectives, seed=seed)
        if n_particles < 2:
            raise OptimizerError(f"need at least 2 particles, got {n_particles}")
        for name, v in [("inertia", inertia), ("cognitive", cognitive), ("social", social)]:
            if v < 0:
                raise OptimizerError(f"{name} must be >= 0, got {v}")
        self.n_particles = int(n_particles)
        self.inertia = float(inertia)
        self.cognitive = float(cognitive)
        self.social = float(social)
        self.v_max = float(v_max)

        n = space.n_dims
        self.positions = self.rng.random((self.n_particles, n))
        self.velocities = self.rng.uniform(-v_max, v_max, (self.n_particles, n))
        self.pbest_pos = self.positions.copy()
        self.pbest_score = np.full(self.n_particles, np.inf)
        self.gbest_pos = self.positions[0].copy()
        self.gbest_score = np.inf

        self._cursor = 0  # particle to evaluate next
        self._pending: list[int] = []

    def _suggest(self) -> Configuration:
        idx = self._cursor
        self._cursor = (self._cursor + 1) % self.n_particles
        if idx == 0 and len(self.history) >= self.n_particles:
            self._advance_swarm()
        self._pending.append(idx)
        return self.space.from_unit_array(np.clip(self.positions[idx], 0.0, 1.0))

    def _advance_swarm(self) -> None:
        r1 = self.rng.random(self.positions.shape)
        r2 = self.rng.random(self.positions.shape)
        self.velocities = (
            self.inertia * self.velocities
            + self.cognitive * r1 * (self.pbest_pos - self.positions)
            + self.social * r2 * (self.gbest_pos[None, :] - self.positions)
        )
        np.clip(self.velocities, -self.v_max, self.v_max, out=self.velocities)
        self.positions = np.clip(self.positions + self.velocities, 0.0, 1.0)

    def _on_observe(self, trial: Trial) -> None:
        if not self._pending:
            return  # warm-start data: no particle attached
        idx = self._pending.pop(0)
        obj = self.objective
        score = obj.score(trial.metric(obj.name))
        if score < self.pbest_score[idx]:
            self.pbest_score[idx] = score
            self.pbest_pos[idx] = self.positions[idx].copy()
        if score < self.gbest_score:
            self.gbest_score = score
            self.gbest_pos = self.positions[idx].copy()

    def _digest_state(self) -> dict[str, object]:
        return {
            "cursor": self._cursor,
            "pending": list(self._pending),
            "gbest_score": None if self.gbest_score == np.inf else round(float(self.gbest_score), 12),
        }
