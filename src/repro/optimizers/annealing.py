"""Simulated annealing — the classic search-based tuner the overview lists.

A local search that accepts uphill moves with temperature-controlled
probability, cooling geometrically. BestConfig-style divide-and-conquer
and hill climbing are close relatives.
"""

from __future__ import annotations

import math

from ..core import Objective, Optimizer, Trial
from ..exceptions import OptimizerError
from ..space import Configuration, ConfigurationSpace

__all__ = ["SimulatedAnnealingOptimizer"]


class SimulatedAnnealingOptimizer(Optimizer):
    """Metropolis acceptance over the space's neighbourhood structure.

    Parameters
    ----------
    initial_temperature:
        Starting temperature in units of the objective's score scale.
        When None, it is calibrated from the spread of the first
        ``n_init`` random probes.
    cooling:
        Geometric cooling rate per observed trial, in (0, 1).
    step_scale:
        Neighbourhood size in unit-space (passed to ``space.neighbor``).
    n_init:
        Random probes before annealing starts.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        initial_temperature: float | None = None,
        cooling: float = 0.95,
        step_scale: float = 0.15,
        n_init: int = 5,
        objectives: Objective | list[Objective] | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(space, objectives, seed=seed)
        if not 0.0 < cooling < 1.0:
            raise OptimizerError(f"cooling must be in (0, 1), got {cooling}")
        if n_init < 1:
            raise OptimizerError(f"n_init must be >= 1, got {n_init}")
        self.cooling = cooling
        self.step_scale = step_scale
        self.n_init = n_init
        self._temperature = initial_temperature
        self._current: Configuration | None = None
        self._current_score = math.inf
        self._pending: Configuration | None = None

    def _suggest(self) -> Configuration:
        if len(self.history) < self.n_init or self._current is None:
            self._pending = self.space.sample(self.rng)
        else:
            self._pending = self.space.neighbor(self._current, self.rng, scale=self.step_scale)
        return self._pending

    def _on_observe(self, trial: Trial) -> None:
        obj = self.objective
        score = obj.score(trial.metric(obj.name))
        if self._temperature is None and len(self.history) >= self.n_init:
            spread = self.history.scores(obj)
            self._temperature = float(max(1e-9, spread.std())) or 1.0
        accept = score < self._current_score
        if not accept and self._temperature is not None and self._temperature > 0:
            delta = score - self._current_score
            accept = self.rng.random() < math.exp(-delta / self._temperature)
        if accept or self._current is None:
            self._current = trial.config
            self._current_score = score
        if self._temperature is not None:
            self._temperature *= self.cooling

    def _digest_state(self) -> dict[str, object]:
        return {
            "temperature": None if self._temperature is None else round(self._temperature, 12),
            "current_score": None if self._current_score == math.inf else round(self._current_score, 12),
        }
