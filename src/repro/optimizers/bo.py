"""Bayesian optimization — sequential model-based optimization (slide 33).

1. Evaluate the expensive function f(xᵢ);
2. update the statistical model M with (xᵢ, f(xᵢ));
3. pick x_{i+1} = argmax AF(M, x);
4. repeat.

The surrogate is a GP over encoded configurations; acquisition optimization
uses a candidate set (global random samples + local perturbations of the
incumbent) because the encoded space is a mixed discrete/continuous box.
Batch suggestions use the constant-liar trick for diversity (slide 57).
"""

from __future__ import annotations

import numpy as np

from ..core import Objective, Optimizer, Trial, rng_digest
from ..exceptions import OptimizerError
from ..telemetry.spans import span
from ..space import Configuration, ConfigurationSpace
from ..space.encoding import OneHotEncoder, OrdinalEncoder, SpaceEncoder, TrialEncodingCache
from .acquisition import AcquisitionFunction, ExpectedImprovement, generate_candidates
from .gp import GaussianProcessRegressor, default_kernel

__all__ = ["BayesianOptimizer"]


class BayesianOptimizer(Optimizer):
    """GP-based Bayesian optimization over a configuration space.

    Parameters
    ----------
    space:
        The knobs to tune.
    n_init:
        Random (prior-guided) probes before the model takes over.
    acquisition:
        Acquisition function; Expected Improvement by default.
    encoding:
        "ordinal" (one dim/knob) or "onehot" (one dim per category) —
        the discrete/hybrid handling choices from slide 51.
    n_candidates:
        Candidate-set size for acquisition maximisation.
    refit_every:
        Re-optimise GP hyperparameters every k-th trial (conditioning on new
        data happens every trial regardless).
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        n_init: int = 8,
        acquisition: AcquisitionFunction | None = None,
        encoding: str = "ordinal",
        n_candidates: int = 512,
        refit_every: int = 4,
        objectives: Objective | list[Objective] | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(space, objectives, seed=seed)
        if n_init < 1:
            raise OptimizerError(f"n_init must be >= 1, got {n_init}")
        if n_candidates < 2:
            raise OptimizerError(f"n_candidates must be >= 2, got {n_candidates}")
        self.n_init = int(n_init)
        self.acquisition = acquisition if acquisition is not None else ExpectedImprovement()
        self.encoder = self._make_encoder(encoding, space)
        self.n_candidates = int(n_candidates)
        self.refit_every = max(1, int(refit_every))
        self.model = GaussianProcessRegressor(
            kernel=default_kernel(self.encoder.n_features), seed=seed
        )
        self._model_stale = True
        self._fit_count = 0
        # Per-trial feature-row memo: each fit re-encodes only new trials.
        self._encoding_cache = TrialEncodingCache(self.encoder)
        # Constant-liar state for batch suggestions.
        self._lies: list[np.ndarray] = []
        self._fantasies_total = 0

    @staticmethod
    def _make_encoder(encoding: str, space: ConfigurationSpace) -> SpaceEncoder:
        if encoding == "ordinal":
            return OrdinalEncoder(space)
        if encoding == "onehot":
            return OneHotEncoder(space)
        raise OptimizerError(f"encoding must be 'ordinal' or 'onehot', got {encoding!r}")

    # -- training data ---------------------------------------------------------
    def _training_data(self) -> tuple[np.ndarray, np.ndarray]:
        # Failed trials enter with live-imputed penalty scores: the model
        # must learn where the crash region is, on the current y-scale.
        trials, y = self.history.training_data(self.objective, self.crash_penalty_factor)
        X = self._encoding_cache.encode_trials(trials)
        if self._lies:
            X = np.vstack([X, np.stack(self._lies)]) if len(X) else np.stack(self._lies)
            lie_value = float(y.min()) if len(y) else 0.0
            y = np.concatenate([y, np.full(len(self._lies), lie_value)])
        return X, y

    def _ensure_model(self) -> None:
        X, y = self._training_data()
        if len(X) == 0:
            return
        # Lie fits (mid-batch refits on fantasized rows) never re-optimize
        # hyperparameters and don't advance the refit cadence — a batch of k
        # must not burn k cadence slots.
        fantasizing = bool(self._lies)
        self.model.optimize_hypers = (
            not fantasizing and self._fit_count % self.refit_every == 0
        )
        with span("surrogate.fit", n_observations=len(X), refit_hypers=self.model.optimize_hypers):
            self.model.fit(X, y)
        if not fantasizing:
            self._fit_count += 1
        self._model_stale = False

    # -- candidate generation --------------------------------------------------------
    def _candidates(self) -> list[Configuration]:
        try:
            best = self.history.best().config
        except OptimizerError:
            best = None
        return generate_candidates(
            self.space, self.rng, self.n_candidates, incumbent=best
        )

    # -- suggest ---------------------------------------------------------------------
    def _suggest(self) -> Configuration:
        n_done = len(self.history.completed())
        if n_done < self.n_init:
            return self.space.sample(self.rng)
        if self._model_stale or self._lies:
            try:
                self._ensure_model()
            except Exception as err:  # noqa: BLE001 - surrogate failure degrades, never halts
                self._model_stale = True  # retry the fit on the next suggest
                return self._degraded_suggest("surrogate.fit", err)
        if not self.model.is_fitted:
            return self.space.sample(self.rng)
        try:
            with span("acquisition.optimize", n_candidates=self.n_candidates):
                cands = self._candidates()
                X = self.encoder.encode_many(cands)
                mean, std = self.model.predict(X, return_std=True)
                best_score = float(self.history.scores().min())
                scores = self.acquisition(mean, std, best_score)
                return cands[int(np.argmax(scores))]
        except Exception as err:  # noqa: BLE001 - acquisition failure degrades, never halts
            return self._degraded_suggest("acquisition.optimize", err)

    def _suggest_batch(self, n: int) -> list[Configuration]:
        """Batch suggestion with constant-liar fantasies for diversity.

        Each pick appends a fantasized row (the incumbent's score imputed at
        the chosen point) and reconditions the GP on it — without touching
        hyperparameters, so the batch costs one hyperparameter fit plus
        ``n−1`` cheap reconditionings. Fantasies are discarded before
        returning.
        """
        out: list[Configuration] = []
        try:
            for _ in range(n):
                config = self._suggest()
                out.append(config)
                self._lies.append(self.encoder.encode(config))
                self._fantasies_total += 1
                self._model_stale = True
        finally:
            self._lies.clear()
            self._model_stale = True
        return out

    def _on_observe(self, trial: Trial) -> None:
        self._model_stale = True

    def _digest_state(self) -> dict[str, object]:
        return {
            "fit_count": self._fit_count,
            "fantasies_total": self._fantasies_total,
            "pending_lies": len(self._lies),
            "model_rng": rng_digest(self.model.rng),
        }

    def surrogate_stats(self) -> dict[str, float]:
        """Hot-path counters: GP fit/Cholesky/NLL stats plus cache hits.

        Picked up by :class:`~repro.telemetry.TelemetryCallback`, which
        attaches a snapshot to every trial span.
        """
        out = self.model.stats_dict()
        out.update(self._encoding_cache.stats())
        out["pending_fantasies"] = float(len(self._lies))
        out["fantasies_total"] = float(self._fantasies_total)
        out["degraded_total"] = float(self._degraded_total)
        return out

    # -- introspection --------------------------------------------------------------------
    def surrogate_prediction(self, configs: list[Configuration]) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean/std at given configs (for plots and safety checks)."""
        if self._model_stale:
            self._ensure_model()
        X = self.encoder.encode_many(configs)
        return self.model.predict(X, return_std=True)
