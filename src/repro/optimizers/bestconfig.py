"""BestConfig-style divide-and-conquer sampling (SoCC 2017, slide 81).

BestConfig alternates *divide-and-diverge sampling* (Latin-hypercube-like
coverage of the whole space) with *recursive bound-and-search* (resampling
inside a shrinking box around the best point so far). No model — just
disciplined sampling — which made it a popular lightweight baseline.
"""

from __future__ import annotations

import numpy as np

from ..core import Objective, Optimizer, Trial
from ..exceptions import OptimizerError
from ..space import Configuration, ConfigurationSpace

__all__ = ["BestConfigOptimizer"]


class BestConfigOptimizer(Optimizer):
    """Alternating diverge/bound-and-search rounds.

    Parameters
    ----------
    round_size:
        Samples per round.
    shrink:
        Box shrink factor per bound-and-search round (0 < shrink < 1).
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        round_size: int = 10,
        shrink: float = 0.5,
        objectives: Objective | list[Objective] | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(space, objectives, seed=seed)
        if round_size < 2:
            raise OptimizerError(f"round_size must be >= 2, got {round_size}")
        if not 0.0 < shrink < 1.0:
            raise OptimizerError(f"shrink must be in (0, 1), got {shrink}")
        self.round_size = int(round_size)
        self.shrink = float(shrink)
        self._queue: list[Configuration] = []
        self._round = 0
        self._radius = 0.5  # half-width of the current search box (unit space)

    def _lhs_round(self) -> list[Configuration]:
        """Divide-and-diverge: stratified (LHS) coverage of the full cube."""
        n, d = self.round_size, self.space.n_dims
        grid = (np.argsort(self.rng.random((d, n)), axis=1).T + self.rng.random((n, d))) / n
        out = []
        for row in grid:
            try:
                out.append(self.space.from_unit_array(row, check_constraints=True))
            except Exception:
                # One draw per rare infeasible LHS row, not a hot loop.
                out.append(self.space.sample(self.rng))  # repro: noqa AST204
        return out

    def _bounded_round(self, center: Configuration) -> list[Configuration]:
        """Bound-and-search: LHS inside a shrinking box around the incumbent."""
        c = self.space.to_unit_array(center)
        lo = np.clip(c - self._radius, 0.0, 1.0)
        hi = np.clip(c + self._radius, 0.0, 1.0)
        n, d = self.round_size, self.space.n_dims
        grid = (np.argsort(self.rng.random((d, n)), axis=1).T + self.rng.random((n, d))) / n
        out = []
        for row in grid:
            point = lo + row * (hi - lo)
            try:
                out.append(self.space.from_unit_array(point, check_constraints=True))
            except Exception:
                # Same: fallback for the occasional infeasible box point.
                out.append(self.space.neighbor(center, self.rng, scale=self._radius))  # repro: noqa AST204
        return out

    def _refill(self) -> None:
        self._round += 1
        try:
            incumbent = self.history.best().config
        except OptimizerError:
            incumbent = None
        if incumbent is None or self._round % 2 == 1:
            self._queue = self._lhs_round()
        else:
            self._queue = self._bounded_round(incumbent)
            self._radius = max(0.02, self._radius * self.shrink)

    def _suggest(self) -> Configuration:
        if not self._queue:
            self._refill()
        return self._queue.pop(0)

    def _on_observe(self, trial: Trial) -> None:
        pass  # sampling plan is refreshed lazily per round
