"""Multi-armed bandits over finite configuration sets.

Slide 51 notes that bandits are a natural fit for discrete knobs because
"AFs like UCB and EI do not require sampling from posterior". Arms are
configurations (supplied, or sampled once up front); policies are
ε-greedy, UCB1, and Gaussian Thompson sampling. These are also the
building block for OPPerTune-style hybrid online tuners
(:mod:`repro.online.hybrid`).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core import Objective, Optimizer, Trial
from ..exceptions import OptimizerError
from ..space import Configuration, ConfigurationSpace

__all__ = ["MultiArmedBanditOptimizer", "BanditArmStats"]


class BanditArmStats:
    """Running reward statistics of one arm (Welford updates)."""

    __slots__ = ("pulls", "mean", "_m2")

    def __init__(self) -> None:
        self.pulls = 0
        self.mean = 0.0
        self._m2 = 0.0

    def update(self, reward: float) -> None:
        self.pulls += 1
        delta = reward - self.mean
        self.mean += delta / self.pulls
        self._m2 += delta * (reward - self.mean)

    @property
    def variance(self) -> float:
        return self._m2 / (self.pulls - 1) if self.pulls > 1 else 1.0


class MultiArmedBanditOptimizer(Optimizer):
    """Bandit over a finite arm set of configurations.

    Rewards are the *negated canonical scores* (so better metric = higher
    reward) normalised by a running scale, making policies robust to the
    objective's units.

    Parameters
    ----------
    arms:
        Explicit configurations to choose among; when None, ``n_arms``
        random feasible configurations are drawn once.
    policy:
        "epsilon" | "ucb1" | "thompson".
    epsilon:
        Exploration rate for the ε-greedy policy.
    ucb_c:
        Exploration weight for UCB1.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        arms: Sequence[Configuration] | None = None,
        n_arms: int = 16,
        policy: str = "ucb1",
        epsilon: float = 0.1,
        ucb_c: float = 2.0,
        objectives: Objective | list[Objective] | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(space, objectives, seed=seed)
        if policy not in ("epsilon", "ucb1", "thompson"):
            raise OptimizerError(f"unknown policy {policy!r}")
        if not 0.0 <= epsilon <= 1.0:
            raise OptimizerError(f"epsilon must be in [0, 1], got {epsilon}")
        self.arms = list(arms) if arms is not None else space.sample_many(n_arms, self.rng)
        if len(self.arms) < 2:
            raise OptimizerError("need at least 2 arms")
        self.policy = policy
        self.epsilon = float(epsilon)
        self.ucb_c = float(ucb_c)
        self.stats = [BanditArmStats() for _ in self.arms]
        self._arm_of: dict[Configuration, int] = {a: i for i, a in enumerate(self.arms)}
        self._scale = 1.0

    @property
    def total_pulls(self) -> int:
        return sum(s.pulls for s in self.stats)

    def _select_arm(self) -> int:
        # Pull every arm once first.
        for i, s in enumerate(self.stats):
            if s.pulls == 0:
                return i
        if self.policy == "epsilon":
            if self.rng.random() < self.epsilon:
                return int(self.rng.integers(len(self.arms)))
            return int(np.argmax([s.mean for s in self.stats]))
        if self.policy == "ucb1":
            total = self.total_pulls
            ucb = [
                s.mean + self.ucb_c * math.sqrt(math.log(total) / s.pulls)
                for s in self.stats
            ]
            return int(np.argmax(ucb))
        # Gaussian Thompson sampling.
        draws = [
            self.rng.normal(s.mean, math.sqrt(s.variance / s.pulls))
            for s in self.stats
        ]
        return int(np.argmax(draws))

    def _suggest(self) -> Configuration:
        return self.arms[self._select_arm()]

    def _on_observe(self, trial: Trial) -> None:
        idx = self._arm_of.get(trial.config)
        if idx is None:
            return  # observation for a non-arm config (e.g. warm start)
        obj = self.objective
        score = obj.score(trial.metric(obj.name))
        self._scale = max(self._scale * 0.99, abs(score), 1e-9)
        self.stats[idx].update(-score / self._scale)

    def _digest_state(self) -> dict[str, object]:
        return {
            "pulls": [s.pulls for s in self.stats],
            "means": [round(s.mean, 12) for s in self.stats],
            "scale": round(self._scale, 12),
        }

    def best_arm(self) -> Configuration:
        """Arm with the best empirical mean reward."""
        pulled = [(s.mean, i) for i, s in enumerate(self.stats) if s.pulls > 0]
        if not pulled:
            raise OptimizerError("no arm has been pulled yet")
        return self.arms[max(pulled)[1]]
