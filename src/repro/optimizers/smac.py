"""SMAC-style optimizer: random-forest surrogate + EI + random interleaving.

Hutter, Hoos & Leyton-Brown's sequential model-based algorithm
configuration, as cited on slide 50. The forest handles categorical and
conditional knobs natively (no imposed order), and every ``interleave``-th
model-guided suggestion is random — SMAC's guarantee against model lock-in.

The suggest hot path is fully batched: candidates come from
:func:`~repro.optimizers.acquisition.generate_candidates` (two vectorized
space calls instead of 512 Python-loop samples), the forest refits on a
cadence (``refit_every``, mirroring the GP's contract) with warm
``partial_fit`` updates in between, and ``suggest(n>1)`` amortizes one fit
across the whole batch via constant-liar fantasies on a shared routed
candidate pool.
"""

from __future__ import annotations

import numpy as np

from ..core import Objective, Optimizer, Trial, rng_digest
from ..exceptions import OptimizerError
from ..telemetry.spans import span
from ..space import Configuration, ConfigurationSpace
from ..space.encoding import OneHotEncoder, TrialEncodingCache
from .acquisition import AcquisitionFunction, ExpectedImprovement, generate_candidates
from .forest import RandomForestRegressor

__all__ = ["SMACOptimizer"]


class SMACOptimizer(Optimizer):
    """Random-forest Bayesian optimization à la SMAC.

    Parameters
    ----------
    n_init:
        Random probes before the surrogate takes over.
    interleave:
        Insert one random suggestion every ``interleave`` model-guided ones
        (0 disables interleaving). Only model-phase suggestions count toward
        the interleave cycle — the ``n_init`` random phase does not shift it.
    n_candidates:
        Candidate-set size for acquisition maximisation.
    refit_every:
        Grow the forest from scratch every k-th fit; the fits in between are
        warm :meth:`~repro.optimizers.forest.RandomForestRegressor.partial_fit`
        updates (online bagging + bounded regrowth). The same cadence
        contract as the GP's hyperparameter refits.
    builder:
        Forest tree builder, ``"array"`` (vectorized, default) or
        ``"recursive"`` (parity baseline).
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        n_init: int = 8,
        interleave: int = 4,
        n_candidates: int = 512,
        n_trees: int = 24,
        acquisition: AcquisitionFunction | None = None,
        objectives: Objective | list[Objective] | None = None,
        seed: int | None = None,
        refit_every: int = 8,
        builder: str = "array",
    ) -> None:
        super().__init__(space, objectives, seed=seed)
        if n_init < 1:
            raise OptimizerError(f"n_init must be >= 1, got {n_init}")
        if interleave < 0:
            raise OptimizerError(f"interleave must be >= 0, got {interleave}")
        self.n_init = int(n_init)
        self.interleave = int(interleave)
        self.n_candidates = int(n_candidates)
        self.refit_every = max(1, int(refit_every))
        self.acquisition = acquisition if acquisition is not None else ExpectedImprovement()
        self.encoder = OneHotEncoder(space)
        self.model = RandomForestRegressor(n_trees=n_trees, seed=seed, builder=builder)
        self._model_stale = True
        # Model-guided suggestions only (satellite fix): the n_init random
        # phase must not shift the interleave cycle.
        self._suggestion_count = 0
        self._fit_count = 0
        # (trial ids, training y) the forest was last fitted on — a warm
        # partial_fit is only sound while the new data is a strict extension
        # of this prefix (crash-score re-imputation rewrites old y values,
        # which forces a full refit).
        self._fitted_ids: tuple[int, ...] = ()
        self._fitted_y: np.ndarray = np.empty(0)
        self._encoding_cache = TrialEncodingCache(self.encoder)

    def _fit_model(self) -> None:
        trials, y = self.history.training_data(self.objective, self.crash_penalty_factor)
        if not trials:
            return
        ids = tuple(t.trial_id for t in trials)
        X = self._encoding_cache.encode_trials(trials)
        k = len(self._fitted_ids)
        warm = (
            self.model.is_fitted
            and self._fit_count % self.refit_every != 0
            and len(ids) > k
            and ids[:k] == self._fitted_ids
            and np.array_equal(y[:k], self._fitted_y)
        )
        with span("surrogate.fit", n_observations=len(X), model="forest"):
            if warm:
                self.model.partial_fit(X[k:], y[k:])
            else:
                self.model.fit(X, y)
        self._fit_count += 1
        self._fitted_ids = ids
        self._fitted_y = y.copy()
        self._model_stale = False

    def _digest_state(self) -> dict[str, object]:
        return {
            "suggestion_count": self._suggestion_count,
            "fit_count": self._fit_count,
            "fitted_n": len(self._fitted_ids),
            "model_rng": rng_digest(self.model.rng),
        }

    def surrogate_stats(self) -> dict[str, float]:
        """Forest fit/predict counters plus encoding-cache stats.

        Picked up by :class:`~repro.telemetry.TelemetryCallback` and the
        service metrics endpoint, which register them as gauges — the same
        path the GP surrogate uses.
        """
        out = self.model.stats_dict()
        out.update(self._encoding_cache.stats())
        out["degraded_total"] = float(self._degraded_total)
        return out

    # -- suggest ---------------------------------------------------------------
    def _incumbent(self) -> Configuration | None:
        try:
            return self.history.best().config
        except OptimizerError:
            return None

    def _candidate_pool(self) -> list[Configuration]:
        return generate_candidates(
            self.space, self.rng, self.n_candidates, incumbent=self._incumbent()
        )

    def _interleave_due(self) -> bool:
        """Advance the model-phase counter; True on every (interleave+1)-th."""
        self._suggestion_count += 1
        return bool(self.interleave) and self._suggestion_count % (self.interleave + 1) == 0

    def _suggest(self) -> Configuration:
        if len(self.history.completed()) < self.n_init:
            return self.space.sample(self.rng)
        if self._interleave_due():
            return self.space.sample(self.rng)
        if self._model_stale:
            try:
                self._fit_model()
            except Exception as err:  # noqa: BLE001 - surrogate failure degrades, never halts
                self._model_stale = True  # retry the fit on the next suggest
                return self._degraded_suggest("surrogate.fit", err)
        if not self.model.is_fitted:
            return self.space.sample(self.rng)
        try:
            with span("acquisition.optimize", n_candidates=self.n_candidates):
                cands = self._candidate_pool()
                X = self.encoder.encode_many(cands)
                mean, std = self.model.predict(X, return_std=True)
                best_score = float(self.history.scores().min())
                scores = self.acquisition(mean, std, best_score)
                return cands[int(np.argmax(scores))]
        except Exception as err:  # noqa: BLE001 - acquisition failure degrades, never halts
            return self._degraded_suggest("acquisition.optimize", err)

    def _suggest_batch(self, n: int) -> list[Configuration] | None:
        """Constant-liar batch: one fit + one routed pool for all ``n`` picks.

        Each pick fantasizes the incumbent score at the chosen point, which
        deflates nearby leaves' EI and pushes later picks elsewhere. The
        candidate pool is routed through the forest once — fantasies only
        touch leaf statistics, never split structure, so every rescoring is
        a cheap gather. Fantasies are discarded before returning (the
        ``finally`` guarantees the honest posterior even on error).
        """
        if len(self.history.completed()) < self.n_init:
            return None  # init phase: independent random draws
        if self._model_stale:
            try:
                self._fit_model()
            except Exception:  # noqa: BLE001 - fall back to per-suggest path,
                return None  # which retries the fit and emits optimizer.degraded
        if not self.model.is_fitted:
            return None
        best_score = float(self.history.scores().min())
        out: list[Configuration] = []
        pool: list[Configuration] | None = None
        try:
            for _ in range(n):
                if self._interleave_due():
                    # One interleaved random pick per due slot; the slots are
                    # interleaved with sequential fantasy updates, so they
                    # cannot be drawn as one batch up front.
                    out.append(self.space.sample(self.rng))  # repro: noqa AST204
                    continue
                if pool is None:
                    with span("acquisition.optimize", n_candidates=self.n_candidates):
                        pool = self._candidate_pool()
                        X = self.encoder.encode_many(pool)
                        leaves = self.model.route_leaves(X)
                        taken = np.zeros(len(pool), dtype=bool)
                mean, std = self.model.predict_from_leaves(leaves)
                scores = self.acquisition(mean, std, best_score)
                scores = np.where(taken, -np.inf, scores)
                k = int(np.argmax(scores))
                taken[k] = True
                out.append(pool[k])
                self.model.add_fantasy(X[k], best_score)
        finally:
            self.model.clear_fantasies()
        return out

    def _on_observe(self, trial: Trial) -> None:
        self._model_stale = True
