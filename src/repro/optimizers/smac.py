"""SMAC-style optimizer: random-forest surrogate + EI + random interleaving.

Hutter, Hoos & Leyton-Brown's sequential model-based algorithm
configuration, as cited on slide 50. The forest handles categorical and
conditional knobs natively (no imposed order), and every ``interleave``-th
suggestion is random — SMAC's guarantee against model lock-in.
"""

from __future__ import annotations

import numpy as np

from ..core import Objective, Optimizer, Trial
from ..exceptions import OptimizerError
from ..telemetry.spans import span
from ..space import Configuration, ConfigurationSpace
from ..space.encoding import OneHotEncoder, TrialEncodingCache
from .acquisition import AcquisitionFunction, ExpectedImprovement
from .forest import RandomForestRegressor

__all__ = ["SMACOptimizer"]


class SMACOptimizer(Optimizer):
    """Random-forest Bayesian optimization à la SMAC.

    Parameters
    ----------
    n_init:
        Random probes before the surrogate takes over.
    interleave:
        Insert one random suggestion every ``interleave`` model-guided ones
        (0 disables interleaving).
    n_candidates:
        Candidate-set size for acquisition maximisation.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        n_init: int = 8,
        interleave: int = 4,
        n_candidates: int = 512,
        n_trees: int = 24,
        acquisition: AcquisitionFunction | None = None,
        objectives: Objective | list[Objective] | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(space, objectives, seed=seed)
        if n_init < 1:
            raise OptimizerError(f"n_init must be >= 1, got {n_init}")
        if interleave < 0:
            raise OptimizerError(f"interleave must be >= 0, got {interleave}")
        self.n_init = int(n_init)
        self.interleave = int(interleave)
        self.n_candidates = int(n_candidates)
        self.acquisition = acquisition if acquisition is not None else ExpectedImprovement()
        self.encoder = OneHotEncoder(space)
        self.model = RandomForestRegressor(n_trees=n_trees, seed=seed)
        self._model_stale = True
        self._suggestion_count = 0
        self._encoding_cache = TrialEncodingCache(self.encoder)

    def _fit_model(self) -> None:
        trials, y = self.history.training_data(self.objective, self.crash_penalty_factor)
        if not trials:
            return
        X = self._encoding_cache.encode_trials(trials)
        with span("surrogate.fit", n_observations=len(X), model="forest"):
            self.model.fit(X, y)
        self._model_stale = False

    def surrogate_stats(self) -> dict[str, float]:
        """Encoding-cache counters (picked up by telemetry spans)."""
        return self._encoding_cache.stats()

    def _suggest(self) -> Configuration:
        self._suggestion_count += 1
        n_done = len(self.history.completed())
        if n_done < self.n_init:
            return self.space.sample(self.rng)
        if self.interleave and self._suggestion_count % (self.interleave + 1) == 0:
            return self.space.sample(self.rng)
        if self._model_stale:
            self._fit_model()
        if not self.model.is_fitted:
            return self.space.sample(self.rng)
        with span("acquisition.optimize", n_candidates=self.n_candidates):
            n_global = int(self.n_candidates * 0.7)
            try:
                best = self.history.best().config
            except OptimizerError:
                best = None
            if best is not None and self.n_candidates - n_global < 1:
                n_global = self.n_candidates - 1  # keep >= 1 local neighbor
            cands = [self.space.sample(self.rng) for _ in range(n_global)]
            if best is not None:
                for _ in range(self.n_candidates - n_global):
                    scale = float(self.rng.choice([0.02, 0.05, 0.15]))
                    cands.append(self.space.neighbor(best, self.rng, scale=scale))
            X = self.encoder.encode_many(cands)
            mean, std = self.model.predict(X, return_std=True)
            best_score = float(self.history.scores().min())
            scores = self.acquisition(mean, std, best_score)
            return cands[int(np.argmax(scores))]

    def _on_observe(self, trial: Trial) -> None:
        self._model_stale = True
