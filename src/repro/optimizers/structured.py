"""Structured-space BO: one surrogate per activation pattern (slide 61).

Jenatton et al. (2017) model tree-structured dependencies with a mixture
of GPs selected by the active path. The practical core reproduced here:
configurations whose *active knob sets* differ (``jit=on`` vs ``off``)
live on different manifolds, so one global GP smears them together.
:class:`StructuredBayesianOptimizer` partitions the history by activation
signature, fits one GP per group over *its active dimensions only*, and
maximises EI per group — falling back to shared data when a group is
still small.
"""

from __future__ import annotations

import numpy as np

from ..core import Objective, Optimizer, Trial
from ..exceptions import OptimizerError
from ..space import Configuration, ConfigurationSpace
from .acquisition import AcquisitionFunction, ExpectedImprovement
from .gp import GaussianProcessRegressor, default_kernel

__all__ = ["StructuredBayesianOptimizer"]


class StructuredBayesianOptimizer(Optimizer):
    """Per-activation-group GPs with EI maximised across groups.

    For spaces without conditions this degrades gracefully to vanilla BO
    (one group). With conditions, each group's GP sees only the dimensions
    that are actually active there — no wasted length-scales on pinned
    knobs, which is the sample-efficiency win of exploiting structure.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        n_init: int = 8,
        n_candidates: int = 384,
        min_group_size: int = 4,
        acquisition: AcquisitionFunction | None = None,
        objectives: Objective | list[Objective] | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(space, objectives, seed=seed)
        if n_init < 1:
            raise OptimizerError(f"n_init must be >= 1, got {n_init}")
        self.n_init = int(n_init)
        self.n_candidates = int(n_candidates)
        self.min_group_size = int(min_group_size)
        self.acquisition = acquisition if acquisition is not None else ExpectedImprovement()
        self._models: dict[frozenset, GaussianProcessRegressor] = {}
        self._stale = True

    # -- group machinery --------------------------------------------------------
    @staticmethod
    def _signature(config: Configuration) -> frozenset:
        return config.active

    def _active_dims(self, signature: frozenset) -> list[int]:
        return [i for i, name in enumerate(self.space.names) if name in signature]

    def _encode(self, config: Configuration, dims: list[int]) -> np.ndarray:
        return self.space.to_unit_array(config)[dims]

    def _grouped_training(self) -> dict[frozenset, tuple[list[Configuration], np.ndarray]]:
        trials, y = self.history.training_data(self.objective, self.crash_penalty_factor)
        groups: dict[frozenset, tuple[list, list]] = {}
        for trial, score in zip(trials, y):
            sig = self._signature(trial.config)
            configs, scores = groups.setdefault(sig, ([], []))
            configs.append(trial.config)
            scores.append(float(score))
        return {sig: (cfgs, np.array(scores)) for sig, (cfgs, scores) in groups.items()}

    def _fit(self) -> None:
        self._models.clear()
        for sig, (configs, y) in self._grouped_training().items():
            if len(configs) < self.min_group_size:
                continue
            dims = self._active_dims(sig)
            X = np.stack([self._encode(c, dims) for c in configs])
            gp = GaussianProcessRegressor(kernel=default_kernel(len(dims)), seed=0)
            gp.fit(X, y)
            self._models[sig] = gp
        self._stale = False

    # -- suggest ------------------------------------------------------------------
    def _suggest(self) -> Configuration:
        if len(self.history.completed()) < self.n_init:
            return self.space.sample(self.rng)
        if self._stale:
            self._fit()
        if not self._models:
            return self.space.sample(self.rng)
        best_score = float(self.history.scores().min())
        cands = self.space.sample_many(self.n_candidates, self.rng)
        by_group: dict[frozenset, list[int]] = {}
        for i, cand in enumerate(cands):
            by_group.setdefault(self._signature(cand), []).append(i)
        best_pair: tuple[float, Configuration] | None = None
        unmodelled: list[Configuration] = []
        for sig, indices in by_group.items():
            gp = self._models.get(sig)
            if gp is None:
                # Group with too little data for a GP yet: keep one
                # representative so new structures still get explored.
                unmodelled.append(cands[indices[int(self.rng.integers(len(indices)))]])
                continue
            dims = self._active_dims(sig)
            X = np.stack([self._encode(cands[i], dims) for i in indices])
            mean, std = gp.predict(X, return_std=True)
            ei = self.acquisition(mean, std, best_score)
            j = int(np.argmax(ei))
            if best_pair is None or ei[j] > best_pair[0]:
                best_pair = (float(ei[j]), cands[indices[j]])
        if unmodelled and (best_pair is None or self.rng.random() < 0.1):
            return unmodelled[int(self.rng.integers(len(unmodelled)))]
        if best_pair is None:
            return self.space.sample(self.rng)
        return best_pair[1]

    def _on_observe(self, trial: Trial) -> None:
        self._stale = True

    @property
    def n_groups(self) -> int:
        """Activation patterns currently modelled."""
        if self._stale:
            self._fit()
        return len(self._models)
