"""Multi-task optimization with a multi-output GP (slide 59).

"Can we reuse the data collected while optimizing f₁(x) when optimizing
f₂(x)? Yes! Idea: exploit the correlations between f₁ … f_k. Separable
multi-output kernels: K((i,x),(j,x')) = K_t(i,j) · K_x(x,x')."

:class:`MultiOutputGP` implements the intrinsic coregionalisation model
(ICM): a free-form task covariance (learned as a low-rank B Bᵀ + diag)
multiplying a shared input kernel. :class:`MultiTaskOptimizer` uses it to
optimize several objectives *simultaneously* — each suggestion targets one
task's EI, but every observation of any task sharpens all tasks' models.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg, optimize

from ..core import Objective, Optimizer, Trial
from ..exceptions import NotFittedError, OptimizerError
from ..space import Configuration, ConfigurationSpace
from ..space.encoding import OrdinalEncoder, TrialEncodingCache
from .acquisition import ExpectedImprovement
from .kernels import Kernel, Matern

__all__ = ["MultiOutputGP", "MultiTaskOptimizer"]


class MultiOutputGP:
    """ICM multi-output GP: K((i,x),(j,x')) = B[i,j] · K_x(x,x') + noise.

    ``B = W Wᵀ + diag(v)`` with rank-1 W — enough to express positive and
    partial correlations between a handful of tasks while staying cheap.
    """

    def __init__(
        self,
        n_tasks: int,
        input_kernel: Kernel | None = None,
        noise: float = 1e-3,
        optimize_hypers: bool = True,
        seed: int | None = None,
    ) -> None:
        if n_tasks < 2:
            raise OptimizerError(f"need >= 2 tasks, got {n_tasks}")
        self.n_tasks = int(n_tasks)
        self.input_kernel = input_kernel if input_kernel is not None else Matern(0.3, nu=2.5)
        self.noise = float(noise)
        self.optimize_hypers = optimize_hypers
        self.rng = np.random.default_rng(seed)
        # Task covariance parameters: W (n_tasks,) rank-1 + diagonal v.
        self._w = np.ones(self.n_tasks)
        self._v = np.full(self.n_tasks, 0.1)
        self._X: np.ndarray | None = None
        self._tasks: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._L: np.ndarray | None = None
        self._y_mean = np.zeros(self.n_tasks)
        self._y_std = np.ones(self.n_tasks)

    # -- task covariance -------------------------------------------------------
    def task_covariance(self) -> np.ndarray:
        return np.outer(self._w, self._w) + np.diag(np.maximum(self._v, 1e-6))

    def task_correlation(self) -> np.ndarray:
        B = self.task_covariance()
        d = np.sqrt(np.diag(B))
        return B / np.outer(d, d)

    # -- fitting ------------------------------------------------------------------
    def fit(self, X: np.ndarray, tasks: np.ndarray, y: np.ndarray) -> "MultiOutputGP":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        tasks = np.asarray(tasks, dtype=int).ravel()
        y = np.asarray(y, dtype=float).ravel()
        if not (len(X) == len(tasks) == len(y)):
            raise OptimizerError("X, tasks, y must align")
        if len(X) == 0:
            raise OptimizerError("cannot fit to zero observations")
        if tasks.min() < 0 or tasks.max() >= self.n_tasks:
            raise OptimizerError(f"task ids must be in [0, {self.n_tasks})")
        # Per-task standardisation so tasks with different units coexist.
        y_std = y.copy().astype(float)
        for t in range(self.n_tasks):
            mask = tasks == t
            if mask.any():
                self._y_mean[t] = float(y[mask].mean())
                self._y_std[t] = float(y[mask].std()) or 1.0
            y_std[mask] = (y[mask] - self._y_mean[t]) / self._y_std[t]
        self._X, self._tasks, self._y = X, tasks, y_std
        if self.optimize_hypers and len(X) >= 4:
            self._optimize()
        self._recompute()
        return self

    def _theta(self) -> np.ndarray:
        return np.concatenate([
            self.input_kernel.theta,
            np.log(np.abs(self._w) + 1e-6),
            np.log(self._v),
            [np.log(self.noise)],
        ])

    def _set_theta(self, theta: np.ndarray) -> None:
        nk = len(self.input_kernel.theta)
        self.input_kernel.theta = theta[:nk]
        self._w = np.exp(theta[nk:nk + self.n_tasks])
        self._v = np.exp(theta[nk + self.n_tasks:nk + 2 * self.n_tasks])
        self.noise = float(np.exp(theta[-1]))

    def _nll(self, theta: np.ndarray) -> float:
        self._set_theta(theta)
        try:
            K = self._full_kernel(self._X, self._tasks)
            L = linalg.cholesky(K + 1e-8 * np.eye(len(K)), lower=True)
        except linalg.LinAlgError:
            return 1e25
        alpha = linalg.cho_solve((L, True), self._y)
        nll = 0.5 * float(self._y @ alpha) + float(np.log(np.diag(L)).sum())
        return nll if np.isfinite(nll) else 1e25

    def _optimize(self) -> None:
        start = self._theta()
        bounds = (
            [tuple(b) for b in self.input_kernel.bounds]
            + [(-3.0, 3.0)] * self.n_tasks  # log |w|
            + [(-6.0, 2.0)] * self.n_tasks  # log v
            + [(np.log(1e-6), np.log(1.0))]  # log noise
        )
        res = optimize.minimize(self._nll, start, method="L-BFGS-B", bounds=bounds, options={"maxiter": 60})
        self._set_theta(res.x if res.fun < self._nll(start) else start)

    def _full_kernel(self, X: np.ndarray, tasks: np.ndarray, X2=None, tasks2=None) -> np.ndarray:
        X2 = X if X2 is None else X2
        tasks2 = tasks if tasks2 is None else tasks2
        B = self.task_covariance()
        Kx = self.input_kernel(X, X2)
        K = B[np.ix_(tasks, tasks2)] * Kx
        if X2 is X and tasks2 is tasks:
            K = K + self.noise * np.eye(len(X))
        return K

    def _recompute(self) -> None:
        K = self._full_kernel(self._X, self._tasks)
        self._L = linalg.cholesky(K + 1e-8 * np.eye(len(K)), lower=True)
        self._alpha = linalg.cho_solve((self._L, True), self._y)

    # -- prediction -------------------------------------------------------------
    def predict(self, X: np.ndarray, task: int, return_std: bool = False):
        if self._X is None:
            raise NotFittedError("fit the multi-output GP first")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        tq = np.full(len(X), int(task))
        Ks = self._full_kernel(self._X, self._tasks, X, tq)
        mean = Ks.T @ self._alpha * self._y_std[task] + self._y_mean[task]
        if not return_std:
            return mean
        v = linalg.solve_triangular(self._L, Ks, lower=True)
        prior = self.task_covariance()[task, task] * self.input_kernel.diag(X)
        var = prior - np.sum(v * v, axis=0)
        return mean, np.sqrt(np.maximum(var, 1e-12)) * self._y_std[task]


class MultiTaskOptimizer(Optimizer):
    """Optimize k objectives at once, sharing data through an ICM GP.

    Each ``suggest`` round-robins the *focus task* and maximises that
    task's EI; every ``observe`` carries all reported task metrics into
    one shared model, so a trial run for task 0 still teaches task 1's
    surrogate (slide 59's whole point).
    """

    supports_multi_objective = True

    def __init__(
        self,
        space: ConfigurationSpace,
        objectives: list[Objective],
        n_init: int = 8,
        n_candidates: int = 256,
        seed: int | None = None,
    ) -> None:
        if len(objectives) < 2:
            raise OptimizerError("MultiTaskOptimizer needs >= 2 objectives")
        super().__init__(space, objectives, seed=seed)
        self.n_init = int(n_init)
        self.n_candidates = int(n_candidates)
        self.encoder = OrdinalEncoder(space)
        self.model = MultiOutputGP(len(objectives), seed=seed)
        self.acquisition = ExpectedImprovement()
        self._encoding_cache = TrialEncodingCache(self.encoder)
        self._focus = 0
        self._stale = True

    def surrogate_stats(self) -> dict[str, float]:
        """Encoding-cache counters (picked up by telemetry spans)."""
        return self._encoding_cache.stats()

    def _training(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        rows, tasks, ys = [], [], []
        for t in self.history.completed():
            x = self._encoding_cache.encode_trial(t)
            for i, obj in enumerate(self.objectives):
                if obj.name in t.metrics:
                    rows.append(x)
                    tasks.append(i)
                    ys.append(obj.score(t.metric(obj.name)))
        if not rows:
            return np.empty((0, self.encoder.n_features)), np.empty(0, dtype=int), np.empty(0)
        return np.stack(rows), np.array(tasks), np.array(ys)

    def _suggest(self) -> Configuration:
        self._focus = (self._focus + 1) % len(self.objectives)
        if len(self.history.completed()) < self.n_init:
            return self.space.sample(self.rng)
        if self._stale:
            X, tasks, y = self._training()
            if len(X) == 0:
                return self.space.sample(self.rng)
            self.model.fit(X, tasks, y)
            self._stale = False
        task = self._focus
        obj = self.objectives[task]
        scores = [
            obj.score(t.metric(obj.name))
            for t in self.history.completed()
            if obj.name in t.metrics
        ]
        best = float(min(scores)) if scores else 0.0
        cands = self.space.sample_many(self.n_candidates, self.rng)
        mean, std = self.model.predict(self.encoder.encode_many(cands), task, return_std=True)
        return cands[int(np.argmax(self.acquisition(mean, std, best)))]

    def _on_observe(self, trial: Trial) -> None:
        self._stale = True

    def best_for(self, task: int) -> Trial:
        """Best trial according to objective ``task``."""
        obj = self.objectives[task]
        done = [t for t in self.history.completed() if obj.name in t.metrics]
        if not done:
            raise OptimizerError(f"no trials with metric {obj.name!r}")
        return min(done, key=lambda t: obj.score(t.metric(obj.name)))
