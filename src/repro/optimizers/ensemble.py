"""OpenTuner-style ensemble: multiple search techniques, one budget.

Slide 5 lists OpenTuner among the generic autotuning frameworks; its core
idea is *technique allocation* — run several search algorithms against the
same result bank and let a bandit shift trials toward whichever is
currently producing improvements (credit assignment by area-under-curve).

:class:`EnsembleOptimizer` wraps any set of ask/tell optimizers. Each
suggestion is drawn from one member (UCB1 over improvement credit); every
observation is shared with *all* members, so no one starves for data.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core import Objective, Optimizer, Trial, TrialStatus
from ..exceptions import OptimizerError
from ..space import Configuration, ConfigurationSpace

__all__ = ["EnsembleOptimizer"]


class EnsembleOptimizer(Optimizer):
    """Technique-allocating meta-optimizer.

    Parameters
    ----------
    members:
        Mapping name → optimizer factory ``space -> Optimizer``. Members
        must be single-objective and share this optimizer's objective.
    ucb_c:
        Exploration constant of the allocation bandit.
    credit_decay:
        Exponential decay of past credit, so allocation tracks which
        technique is good *now* (search phases change).
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        members: Mapping[str, Callable[[ConfigurationSpace], Optimizer]],
        ucb_c: float = 1.0,
        credit_decay: float = 0.95,
        objectives: Objective | Sequence[Objective] | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(space, objectives, seed=seed)
        if len(members) < 2:
            raise OptimizerError("an ensemble needs at least 2 member techniques")
        if not 0.0 < credit_decay <= 1.0:
            raise OptimizerError(f"credit_decay must be in (0, 1], got {credit_decay}")
        self.members: dict[str, Optimizer] = {}
        for name, factory in members.items():
            member = factory(space)
            member.objectives = [self.objective]
            member.history.objectives = [self.objective]
            self.members[name] = member
        self.ucb_c = float(ucb_c)
        self.credit_decay = float(credit_decay)
        self._credit = {name: 0.0 for name in self.members}
        self._pulls = {name: 0 for name in self.members}
        self._pending: list[str] = []  # member that produced each suggestion
        self._best_score = math.inf

    # -- allocation ----------------------------------------------------------
    def _pick_member(self) -> str:
        for name, pulls in self._pulls.items():
            if pulls == 0:
                return name
        total = sum(self._pulls.values())
        scores = {
            name: self._credit[name] / self._pulls[name]
            + self.ucb_c * math.sqrt(math.log(total) / self._pulls[name])
            for name in self.members
        }
        return max(scores, key=scores.get)

    def allocation(self) -> dict[str, int]:
        """How many suggestions each technique has produced so far."""
        return dict(self._pulls)

    # -- ask/tell ------------------------------------------------------------------
    def _suggest(self) -> Configuration:
        name = self._pick_member()
        self._pulls[name] += 1
        self._pending.append(name)
        return self.members[name].suggest(1)[0]

    def _on_observe(self, trial: Trial) -> None:
        producer = self._pending.pop(0) if self._pending else None
        obj = self.objective
        score = obj.score(trial.metric(obj.name)) if obj.name in trial.metrics else math.inf
        # Credit: normalised improvement over the incumbent (0 if none).
        if score < self._best_score:
            if math.isfinite(self._best_score):
                improvement = (self._best_score - score) / (abs(self._best_score) + 1e-12)
            else:
                improvement = 1.0
            self._best_score = score
        else:
            improvement = 0.0
        for name in self._credit:
            self._credit[name] *= self.credit_decay
        if producer is not None:
            self._credit[producer] += min(1.0, improvement)
        # Shared result bank: the producer always learns from its own
        # suggestion; other members only when foreign data cannot corrupt
        # their suggestion↔observation bookkeeping.
        for name, member in self.members.items():
            if name != producer and not member.accepts_foreign_observations:
                continue
            if trial.status is TrialStatus.SUCCEEDED:
                member.observe(trial.config, trial.metrics, cost=trial.cost)
            else:
                member.observe(trial.config, trial.metrics, cost=trial.cost, status=trial.status)

    def _on_observe_failure(self, trial: Trial) -> None:
        self._on_observe(trial)
