"""Hyperband: principled successive halving across exploration brackets.

Extends :func:`~repro.optimizers.multifidelity.successive_halving` (the
engine the tutorial's multi-fidelity and TUNA discussions rely on) with
Li et al.'s bracket schedule: several halving runs trading off "many
configs at tiny budgets" against "few configs at full budget", so no
single aggressiveness setting has to be guessed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..exceptions import OptimizerError
from ..space import Configuration, ConfigurationSpace
from .multifidelity import HalvingRecord, successive_halving

__all__ = ["HyperbandResult", "hyperband"]


@dataclass
class HyperbandResult:
    """Winner plus the full per-bracket trace."""

    best_config: Configuration
    best_score: float
    brackets: list[list[HalvingRecord]]
    total_cost: float

    @property
    def n_brackets(self) -> int:
        return len(self.brackets)


def hyperband(
    space: ConfigurationSpace,
    evaluate: Callable[[Configuration, float], float],
    max_budget: float,
    min_budget: float = 1.0,
    eta: float = 3.0,
    rng: np.random.Generator | None = None,
    minimize: bool = True,
) -> HyperbandResult:
    """Run Hyperband over random configurations from ``space``.

    ``evaluate(config, budget)`` returns a score at the given budget;
    budgets range geometrically from ``min_budget`` to ``max_budget``.
    Evaluation cost is accounted as the budget spent.
    """
    if max_budget <= min_budget:
        raise OptimizerError(f"max_budget must exceed min_budget, got {min_budget}..{max_budget}")
    if eta <= 1.0:
        raise OptimizerError(f"eta must be > 1, got {eta}")
    rng = rng if rng is not None else np.random.default_rng(0)
    s_max = int(math.floor(math.log(max_budget / min_budget, eta)))
    best_config: Configuration | None = None
    best_score = math.inf
    sign = 1.0 if minimize else -1.0
    total_cost = 0.0
    brackets: list[list[HalvingRecord]] = []

    for s in range(s_max, -1, -1):
        n = int(math.ceil((s_max + 1) / (s + 1) * eta**s))
        budgets = [max_budget * eta ** (i - s) for i in range(s + 1)]
        candidates = space.sample_many(n, rng)

        spent = {"v": 0.0}

        def tracked(config: Configuration, budget: float) -> float:
            spent["v"] += budget
            return evaluate(config, budget)

        winner, records = successive_halving(
            candidates, tracked, budgets, eta=eta, minimize=minimize
        )
        total_cost += spent["v"]
        brackets.append(records)
        final_score = sign * records[-1].scores[0]
        if final_score < sign * best_score or best_config is None:
            # records[-1].scores are sorted raw values; index 0 is the best.
            best_score = records[-1].scores[0]
            best_config = winner
    return HyperbandResult(best_config, float(best_score), brackets, total_cost)
