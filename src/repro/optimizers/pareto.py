"""Pareto-front utilities for multi-objective tuning (slide 58).

"Pareto frontier: a set of solutions x* not dominated by any other —
no objective can be improved without degrading some other objective."
All functions assume canonical *minimize* scores in every column.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import OptimizerError

__all__ = ["dominates", "pareto_front_mask", "pareto_front", "hypervolume_2d", "crowding_distance"]


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """True iff point ``a`` Pareto-dominates ``b`` (minimization)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return bool(np.all(a <= b) and np.any(a < b))


def pareto_front_mask(points: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows in an (n, k) score matrix."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n = len(points)
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        dominated_by_i = np.all(points >= points[i], axis=1) & np.any(points > points[i], axis=1)
        mask &= ~dominated_by_i
        mask[i] = True
    return mask


def pareto_front(points: np.ndarray) -> np.ndarray:
    """The non-dominated rows, sorted by the first objective."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    front = points[pareto_front_mask(points)]
    return front[np.argsort(front[:, 0])]


def hypervolume_2d(points: np.ndarray, reference: np.ndarray) -> float:
    """Exact dominated hypervolume for two minimize-objectives.

    ``reference`` is the nadir point; rows beyond it contribute nothing.
    The standard quality indicator for comparing multi-objective tuners.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    reference = np.asarray(reference, dtype=float)
    if points.shape[1] != 2 or reference.shape != (2,):
        raise OptimizerError("hypervolume_2d needs (n, 2) points and a 2-vector reference")
    front = pareto_front(points)
    front = front[np.all(front <= reference, axis=1)]
    if len(front) == 0:
        return 0.0
    volume = 0.0
    prev_y = reference[1]
    for x, y in front:  # ascending x ⇒ descending y on a front
        volume += (reference[0] - x) * (prev_y - y)
        prev_y = y
    return float(volume)


def crowding_distance(points: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance (diversity pressure for evolutionary MOO)."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n, k = points.shape
    if n <= 2:
        return np.full(n, np.inf)
    distance = np.zeros(n)
    for j in range(k):
        order = np.argsort(points[:, j])
        span = points[order[-1], j] - points[order[0], j]
        distance[order[0]] = distance[order[-1]] = np.inf
        if span <= 0:
            continue
        for rank in range(1, n - 1):
            gap = points[order[rank + 1], j] - points[order[rank - 1], j]
            distance[order[rank]] += gap / span
    return distance
