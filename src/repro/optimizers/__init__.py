"""Offline tuning algorithms: classic search, BO, evolutionary, bandits,
multi-objective, multi-fidelity, transfer, and parallel execution."""

from .acquisition import (
    AcquisitionFunction,
    CostAwareEI,
    ExpectedImprovement,
    LowerConfidenceBound,
    ProbabilityOfImprovement,
    ThompsonSampling,
)
from .adapted import ProjectedOptimizer
from .annealing import SimulatedAnnealingOptimizer
from .bandits import BanditArmStats, MultiArmedBanditOptimizer
from .bestconfig import BestConfigOptimizer
from .bo import BayesianOptimizer
from .constrained_bo import ConstrainedBayesianOptimizer
from .cmaes import CMAESOptimizer
from .ensemble import EnsembleOptimizer
from .forest import RandomForestRegressor, RegressionTree
from .gp import GaussianProcessRegressor, SurrogateStats, default_kernel
from .grid import GridSearchOptimizer
from .hyperband import HyperbandResult, hyperband
from .kernels import RBF, ConstantKernel, Kernel, Matern, Product, Sum, WhiteKernel
from .multifidelity import FidelityLevel, HalvingRecord, MultiFidelityBO, successive_halving
from .multitask import MultiOutputGP, MultiTaskOptimizer
from .parego import LinearScalarizationOptimizer, ParEGOOptimizer
from .pareto import (
    crowding_distance,
    dominates,
    hypervolume_2d,
    pareto_front,
    pareto_front_mask,
)
from .pso import ParticleSwarmOptimizer
from .random_search import RandomSearchOptimizer
from .scheduler import ParallelResult, ParallelRunner
from .smac import SMACOptimizer
from .structured import StructuredBayesianOptimizer
from .transfer import (
    DBMS_VM_SCALING,
    PriorBank,
    PriorRun,
    priors_from_trials,
    scale_config_for_vm,
    space_with_priors,
    warm_start_from_history,
)

__all__ = [
    "AcquisitionFunction",
    "CostAwareEI",
    "ExpectedImprovement",
    "LowerConfidenceBound",
    "ProbabilityOfImprovement",
    "ThompsonSampling",
    "ProjectedOptimizer",
    "SimulatedAnnealingOptimizer",
    "BanditArmStats",
    "MultiArmedBanditOptimizer",
    "BestConfigOptimizer",
    "BayesianOptimizer",
    "ConstrainedBayesianOptimizer",
    "HyperbandResult",
    "hyperband",
    "MultiOutputGP",
    "MultiTaskOptimizer",
    "DBMS_VM_SCALING",
    "scale_config_for_vm",
    "CMAESOptimizer",
    "EnsembleOptimizer",
    "RandomForestRegressor",
    "RegressionTree",
    "GaussianProcessRegressor",
    "SurrogateStats",
    "default_kernel",
    "GridSearchOptimizer",
    "RBF",
    "ConstantKernel",
    "Kernel",
    "Matern",
    "Product",
    "Sum",
    "WhiteKernel",
    "FidelityLevel",
    "HalvingRecord",
    "MultiFidelityBO",
    "successive_halving",
    "LinearScalarizationOptimizer",
    "ParEGOOptimizer",
    "crowding_distance",
    "dominates",
    "hypervolume_2d",
    "pareto_front",
    "pareto_front_mask",
    "ParticleSwarmOptimizer",
    "RandomSearchOptimizer",
    "ParallelResult",
    "ParallelRunner",
    "SMACOptimizer",
    "StructuredBayesianOptimizer",
    "PriorBank",
    "PriorRun",
    "priors_from_trials",
    "space_with_priors",
    "warm_start_from_history",
]
