"""CMA-ES — covariance matrix adaptation evolution strategy (slide 50).

Hansen's (μ/μ_w, λ) strategy operating in the unit cube of the encoded
configuration space: sample a population from N(m, σ²C), rank by observed
score, move the mean toward the weighted best, adapt the step size via the
evolution path, and adapt C with rank-1 + rank-μ updates.

The ask/tell adaptation buffers one population at a time, so it plugs into
the same sessions as every other optimizer (and parallelises naturally —
see the "Parallel Optimization" slide, which points at CMA-ES).
"""

from __future__ import annotations

import math

import numpy as np

from ..core import Objective, Optimizer, Trial
from ..exceptions import OptimizerError
from ..space import Configuration, ConfigurationSpace

__all__ = ["CMAESOptimizer"]


class CMAESOptimizer(Optimizer):
    """(μ/μ_w, λ)-CMA-ES over the unit-encoded space.

    Parameters
    ----------
    popsize:
        λ; defaults to Hansen's 4 + ⌊3 ln n⌋.
    sigma0:
        Initial step size in unit-cube units.
    x0:
        Starting configuration (defaults to the space default).
    """

    #: Observations are matched to suggestions by queue order, so
    #: foreign observations would corrupt the population state.
    accepts_foreign_observations = False

    def __init__(
        self,
        space: ConfigurationSpace,
        popsize: int | None = None,
        sigma0: float = 0.3,
        x0: Configuration | None = None,
        objectives: Objective | list[Objective] | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(space, objectives, seed=seed)
        n = space.n_dims
        self.n = n
        self.lam = popsize if popsize is not None else 4 + int(3 * math.log(n + 1e-9)) if n > 1 else 6
        self.lam = max(4, int(self.lam))
        if sigma0 <= 0:
            raise OptimizerError(f"sigma0 must be positive, got {sigma0}")
        self.mu = self.lam // 2
        w = np.log(self.mu + 0.5) - np.log(np.arange(1, self.mu + 1))
        self.weights = w / w.sum()
        self.mueff = 1.0 / float((self.weights**2).sum())

        # Strategy parameters (Hansen's defaults).
        self.cc = (4.0 + self.mueff / n) / (n + 4.0 + 2.0 * self.mueff / n)
        self.cs = (self.mueff + 2.0) / (n + self.mueff + 5.0)
        self.c1 = 2.0 / ((n + 1.3) ** 2 + self.mueff)
        self.cmu = min(
            1.0 - self.c1,
            2.0 * (self.mueff - 2.0 + 1.0 / self.mueff) / ((n + 2.0) ** 2 + self.mueff),
        )
        self.damps = 1.0 + 2.0 * max(0.0, math.sqrt((self.mueff - 1.0) / (n + 1.0)) - 1.0) + self.cs
        self.chi_n = math.sqrt(n) * (1.0 - 1.0 / (4.0 * n) + 1.0 / (21.0 * n * n))

        start = x0 if x0 is not None else space.default_configuration()
        self.mean = space.to_unit_array(start)
        self.sigma = float(sigma0)
        self.C = np.eye(n)
        self.p_sigma = np.zeros(n)
        self.p_c = np.zeros(n)
        self._eigen_stale = True
        self._B = np.eye(n)
        self._D = np.ones(n)
        self.generation = 0

        self._pending_z: list[np.ndarray] = []
        self._results: list[tuple[np.ndarray, float]] = []
        self._awaiting = 0

    # -- sampling ----------------------------------------------------------
    def _update_eigen(self) -> None:
        if not self._eigen_stale:
            return
        self.C = (self.C + self.C.T) / 2.0
        vals, vecs = np.linalg.eigh(self.C)
        self._D = np.sqrt(np.maximum(vals, 1e-20))
        self._B = vecs
        self._eigen_stale = False

    def _sample_point(self) -> np.ndarray:
        self._update_eigen()
        z = self.rng.standard_normal(self.n)
        y = self._B @ (self._D * z)
        return self.mean + self.sigma * y

    def _suggest(self) -> Configuration:
        x = np.clip(self._sample_point(), 0.0, 1.0)
        self._pending_z.append(x)
        self._awaiting += 1
        return self.space.from_unit_array(x)

    # -- updates -------------------------------------------------------------
    def _on_observe(self, trial: Trial) -> None:
        if self._awaiting <= 0:
            return  # warm-start data: not part of any population
        self._awaiting -= 1
        x = self._pending_z.pop(0)
        obj = self.objective
        self._results.append((x, obj.score(trial.metric(obj.name))))
        if len(self._results) >= self.lam:
            self._update_distribution()

    def _digest_state(self) -> dict[str, object]:
        return {
            "generation": self.generation,
            "sigma": round(float(self.sigma), 12),
            "mean": [round(float(v), 12) for v in self.mean],
            "awaiting": self._awaiting,
            "buffered": len(self._results),
        }

    def _update_distribution(self) -> None:
        self._results.sort(key=lambda pair: pair[1])
        selected = np.stack([x for x, _ in self._results[: self.mu]])
        self._results.clear()
        old_mean = self.mean.copy()
        self.mean = self.weights @ selected

        self._update_eigen()
        y_w = (self.mean - old_mean) / self.sigma
        inv_sqrt_c = self._B @ np.diag(1.0 / self._D) @ self._B.T
        self.p_sigma = (1.0 - self.cs) * self.p_sigma + math.sqrt(
            self.cs * (2.0 - self.cs) * self.mueff
        ) * (inv_sqrt_c @ y_w)
        ps_norm = float(np.linalg.norm(self.p_sigma))
        hsig = ps_norm / math.sqrt(
            1.0 - (1.0 - self.cs) ** (2 * (self.generation + 1))
        ) < (1.4 + 2.0 / (self.n + 1.0)) * self.chi_n
        self.p_c = (1.0 - self.cc) * self.p_c + (
            math.sqrt(self.cc * (2.0 - self.cc) * self.mueff) * y_w if hsig else 0.0
        )

        ys = (selected - old_mean) / self.sigma
        rank_mu = (self.weights[:, None] * ys).T @ ys
        self.C = (
            (1.0 - self.c1 - self.cmu) * self.C
            + self.c1 * (np.outer(self.p_c, self.p_c) + (0.0 if hsig else self.cc * (2.0 - self.cc)) * self.C)
            + self.cmu * rank_mu
        )
        self.sigma *= math.exp((self.cs / self.damps) * (ps_norm / self.chi_n - 1.0))
        self.sigma = float(np.clip(self.sigma, 1e-8, 1.0))
        self._eigen_stale = True
        self.generation += 1
