"""Constrained Bayesian optimization — the SCBO idea (slide 60).

"SCBO: Eriksson & Poloczek (2021), Scalable constrained Bayesian
optimization — supports black-box constraints!"

The target returns, besides the objective, one or more *constraint
metrics* whose feasible region is ``value <= 0`` (canonical form). Each
constraint gets its own GP; candidates are scored by

    EI(x) × Π_i P(c_i(x) <= 0)

— expected improvement weighted by the probability of feasibility (the
classical Gardner/Gelbart formulation SCBO builds on). Crashes count as
maximally infeasible observations, so even "the system refuses to start"
black-box constraints are learnable.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..core import Objective, Optimizer, Trial
from ..exceptions import OptimizerError
from ..space import Configuration, ConfigurationSpace
from ..space.encoding import OrdinalEncoder, TrialEncodingCache
from .acquisition import ExpectedImprovement
from .gp import GaussianProcessRegressor, default_kernel

__all__ = ["ConstrainedBayesianOptimizer"]


class ConstrainedBayesianOptimizer(Optimizer):
    """GP-EI weighted by the modelled probability of feasibility.

    Parameters
    ----------
    constraint_metrics:
        Names of metrics the evaluator reports; feasible iff <= 0. E.g.
        report ``{"latency": ..., "mem_overrun_mb": used - budget}``.
    crash_constraint_value:
        Constraint value recorded for crashed trials (strongly infeasible).
    feasibility_weight_floor:
        Lower bound on the feasibility weight, so EI information is never
        fully erased in unexplored regions.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        constraint_metrics: list[str],
        n_init: int = 8,
        n_candidates: int = 512,
        crash_constraint_value: float = 1.0,
        feasibility_weight_floor: float = 1e-6,
        objectives: Objective | list[Objective] | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(space, objectives, seed=seed)
        if not constraint_metrics:
            raise OptimizerError("need at least one constraint metric")
        if n_init < 1:
            raise OptimizerError(f"n_init must be >= 1, got {n_init}")
        self.constraint_metrics = list(constraint_metrics)
        self.n_init = int(n_init)
        self.n_candidates = int(n_candidates)
        self.crash_constraint_value = float(crash_constraint_value)
        self.feasibility_weight_floor = float(feasibility_weight_floor)
        self.encoder = OrdinalEncoder(space)
        self.objective_model = GaussianProcessRegressor(
            kernel=default_kernel(self.encoder.n_features), seed=seed
        )
        self.constraint_models = {
            name: GaussianProcessRegressor(kernel=default_kernel(self.encoder.n_features), seed=seed)
            for name in self.constraint_metrics
        }
        self.acquisition = ExpectedImprovement()
        self._encoding_cache = TrialEncodingCache(self.encoder)
        self._stale = True

    # -- data -----------------------------------------------------------------
    def _rows(self) -> list[Trial]:
        return [t for t in self.history if t.metrics]

    def feasible_trials(self) -> list[Trial]:
        """Completed trials satisfying every observed constraint."""
        out = []
        for t in self.history.completed():
            values = [t.metrics.get(c) for c in self.constraint_metrics]
            if all(v is not None and v <= 0 for v in values):
                out.append(t)
        return out

    def _constraint_value(self, trial: Trial, name: str) -> float:
        if trial.ok and name in trial.metrics:
            return trial.metrics[name]
        return self.crash_constraint_value  # crashed or missing: infeasible

    def _fit(self) -> None:
        trials, y = self.history.training_data(self.objective, self.crash_penalty_factor)
        if not trials:
            return
        # One encode per new trial; objective and constraint GPs share rows.
        X = self._encoding_cache.encode_trials(trials)
        self.objective_model.fit(X, y)
        for name, model in self.constraint_models.items():
            cv = np.array([self._constraint_value(t, name) for t in trials])
            model.fit(X, cv)
        self._stale = False

    def surrogate_stats(self) -> dict[str, float]:
        """Objective-GP + encoding-cache counters (for telemetry spans)."""
        out = self.objective_model.stats_dict()
        out.update(self._encoding_cache.stats())
        return out

    # -- suggest --------------------------------------------------------------
    def _suggest(self) -> Configuration:
        if len(self.history.completed()) < self.n_init:
            return self.space.sample(self.rng)
        if self._stale:
            self._fit()
        if not self.objective_model.is_fitted:
            return self.space.sample(self.rng)
        cands = self.space.sample_many(self.n_candidates, self.rng)
        X = self.encoder.encode_many(cands)
        mean, std = self.objective_model.predict(X, return_std=True)
        feasible = self.feasible_trials()
        if feasible:
            best = min(
                self.objective.score(t.metric(self.objective.name)) for t in feasible
            )
            ei = self.acquisition(mean, std, best)
        else:
            # No feasible point yet: chase feasibility alone.
            ei = np.ones(len(cands))
        weight = np.ones(len(cands))
        for model in self.constraint_models.values():
            c_mean, c_std = model.predict(X, return_std=True)
            weight *= stats.norm.cdf(-c_mean / np.maximum(c_std, 1e-12))
        scores = ei * weight
        if scores.max() <= self.feasibility_weight_floor:
            # Nothing both promising and plausibly feasible: chase the most
            # plausibly feasible point instead of a confident violation.
            return cands[int(np.argmax(weight))]
        return cands[int(np.argmax(scores))]

    def _on_observe(self, trial: Trial) -> None:
        self._stale = True

    def best_feasible_trial(self) -> Trial:
        """Best trial among those satisfying every constraint."""
        feasible = self.feasible_trials()
        if not feasible:
            raise OptimizerError("no feasible trial observed yet")
        obj = self.objective
        return min(feasible, key=lambda t: obj.score(t.metric(obj.name)))
