"""Optimizing through a space adapter (LlamaTune-style pipelines).

:class:`ProjectedOptimizer` exposes the *target* space to the tuning
session while internally driving any optimizer over the adapter's smaller
*adapted* space. Observations are routed back through the pending-
suggestion queue so the inner model trains on the latent points it
actually proposed.
"""

from __future__ import annotations

from typing import Callable

from ..core import Objective, Optimizer, Trial, TrialStatus
from ..exceptions import OptimizerError
from ..space import Configuration
from ..space.adapters import SpaceAdapter

__all__ = ["ProjectedOptimizer"]


class ProjectedOptimizer(Optimizer):
    """Tune a big space by searching a small adapted one.

    Parameters
    ----------
    adapter:
        Maps adapted-space points into the target space (e.g.
        :class:`~repro.space.adapters.LlamaTuneAdapter`).
    inner_factory:
        Builds the optimizer over ``adapter.adapted_space`` (e.g.
        ``lambda s: BayesianOptimizer(s, seed=0)``).
    """

    def __init__(
        self,
        adapter: SpaceAdapter,
        inner_factory: Callable[..., Optimizer],
        objectives: Objective | list[Objective] | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(adapter.target_space, objectives, seed=seed)
        self.adapter = adapter
        self.inner = inner_factory(adapter.adapted_space)
        # FIFO of latent points whose projections are awaiting observation.
        self._pending: list[tuple[Configuration, Configuration]] = []

    def _suggest(self) -> Configuration:
        latent = self.inner.suggest(1)[0]
        target = self.adapter.project(latent)
        self._pending.append((latent, target))
        return target

    def _match_latent(self, target: Configuration) -> Configuration | None:
        for i, (latent, projected) in enumerate(self._pending):
            if projected == target:
                del self._pending[i]
                return latent
        return None

    def _on_observe(self, trial: Trial) -> None:
        latent = self._match_latent(trial.config)
        if latent is None:
            # Observation for a config we did not project (e.g. warm start):
            # the latent optimizer cannot learn from it.
            return
        if trial.status is TrialStatus.SUCCEEDED:
            self.inner.observe(latent, trial.metrics, cost=trial.cost)
        else:
            self.inner.observe(latent, trial.metrics, cost=trial.cost, status=trial.status)

    def _on_observe_failure(self, trial: Trial) -> None:
        self._on_observe(trial)
