"""Parallel trial execution (simulated wall clock) — slide 57.

"Optimizer suggests many configurations at once. Synchronous: always
suggest k points, batch execute trials. Asynchronous: suggest 1 point at a
time, track up to k in-progress configurations."

:class:`ParallelRunner` simulates a pool of ``n_workers`` benchmark
machines: each trial has a duration (its cost), and the runner advances a
virtual clock, so experiments can compare wall-clock speedups and
sample-efficiency penalties of batching without real concurrency.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable

from ..core import Optimizer, TrialStatus
from ..core.result import TuningResult
from ..exceptions import OptimizerError, SystemCrashError, TrialAbortedError
from ..space import Configuration

__all__ = ["ParallelRunner", "ParallelResult"]


@dataclass
class ParallelResult:
    """Outcome of a (simulated) parallel tuning run."""

    result: TuningResult
    wall_clock_s: float
    n_workers: int
    mode: str


class ParallelRunner:
    """Runs an optimizer against an evaluator on ``n_workers`` simulated
    machines.

    Parameters
    ----------
    optimizer:
        Any ask/tell optimizer. Batch modes exploit optimizers whose
        ``suggest(n)`` diversifies (e.g. BO's constant liar).
    evaluator:
        ``config -> (metrics, duration_s)``.
    n_workers:
        Pool size k.
    mode:
        "serial", "sync" (suggest k, barrier), or "async" (refill each
        worker the moment it frees up).
    """

    def __init__(
        self,
        optimizer: Optimizer,
        evaluator: Callable[[Configuration], tuple],
        n_workers: int = 4,
        mode: str = "async",
    ) -> None:
        if n_workers < 1:
            raise OptimizerError(f"n_workers must be >= 1, got {n_workers}")
        if mode not in ("serial", "sync", "async"):
            raise OptimizerError(f"mode must be serial|sync|async, got {mode!r}")
        self.optimizer = optimizer
        self.evaluator = evaluator
        self.n_workers = 1 if mode == "serial" else int(n_workers)
        self.mode = mode

    def _evaluate(self, config: Configuration) -> tuple:
        """Returns (metrics_or_none, duration, status)."""
        try:
            metrics, duration = self.evaluator(config)
            return metrics, float(duration), TrialStatus.SUCCEEDED
        except SystemCrashError:
            return None, 1.0, TrialStatus.FAILED
        except TrialAbortedError:
            return None, 1.0, TrialStatus.ABORTED

    def _observe(self, config: Configuration, outcome: tuple) -> None:
        metrics, duration, status = outcome
        if status is TrialStatus.SUCCEEDED:
            self.optimizer.observe(config, metrics, cost=duration)
        else:
            self.optimizer.observe_failure(config, cost=duration, status=status)

    def run(self, max_trials: int) -> ParallelResult:
        if max_trials < 1:
            raise OptimizerError(f"max_trials must be >= 1, got {max_trials}")
        if self.mode in ("serial", "sync"):
            wall = self._run_sync(max_trials)
        else:
            wall = self._run_async(max_trials)
        obj = self.optimizer.objective
        best = self.optimizer.history.best(obj)
        result = TuningResult(
            best_config=best.config,
            best_value=best.metric(obj.name),
            objective=obj,
            history=self.optimizer.history,
            n_trials=len(self.optimizer.history),
            total_cost=self.optimizer.history.total_cost(),
        )
        return ParallelResult(result, wall, self.n_workers, self.mode)

    def _run_sync(self, max_trials: int) -> float:
        wall = 0.0
        remaining = max_trials
        while remaining > 0:
            batch = min(self.n_workers, remaining)
            configs = self.optimizer.suggest(batch)
            outcomes = [self._evaluate(c) for c in configs]
            # Barrier: the batch takes as long as its slowest trial.
            wall += max(o[1] for o in outcomes)
            for config, outcome in zip(configs, outcomes):
                self._observe(config, outcome)
            remaining -= batch
        return wall

    def _run_async(self, max_trials: int) -> float:
        # Event-driven simulation: a heap of (finish_time, seq, config, outcome).
        clock = 0.0
        seq = 0
        in_flight: list[tuple[float, int, Configuration, tuple]] = []
        started = 0

        def launch(at: float) -> None:
            nonlocal seq, started
            config = self.optimizer.suggest(1)[0]
            outcome = self._evaluate(config)
            heapq.heappush(in_flight, (at + outcome[1], seq, config, outcome))
            seq += 1
            started += 1

        while started < min(self.n_workers, max_trials):
            launch(clock)
        while in_flight:
            finish, _, config, outcome = heapq.heappop(in_flight)
            clock = finish
            self._observe(config, outcome)
            if started < max_trials:
                launch(clock)
        return clock
