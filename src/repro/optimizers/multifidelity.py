"""Multi-fidelity optimization: mix cheap and expensive measurements.

Slide 65: "Combine expensive more accurate measurements and cheaper less
accurate ones — use cost-adjusted utility functions, e.g. cost-adjusted
Expected Improvement." Slide 66 adds the systems caveat: knowledge from
TPC-H SF1 is only partially transferable to SF100 (knob sensitivities
change), so the fidelity dimension must be *modelled*, not just scaled.

Two tools:

* :class:`MultiFidelityBO` — a GP over the joint (configuration, fidelity)
  space; each suggestion picks the (config, fidelity) pair maximising EI at
  the target fidelity per unit cost, with a guaranteed share of trials at
  full fidelity.
* :func:`successive_halving` — rung-based elimination (also the engine
  inside TUNA's noise handling, slide 71).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core import Objective, Optimizer, Trial, rng_digest
from ..exceptions import OptimizerError
from ..space import Configuration, ConfigurationSpace
from ..space.encoding import OrdinalEncoder
from .acquisition import ExpectedImprovement
from .gp import GaussianProcessRegressor, default_kernel

__all__ = ["FidelityLevel", "MultiFidelityBO", "successive_halving", "HalvingRecord"]


@dataclass(frozen=True)
class FidelityLevel:
    """One rung of the fidelity ladder.

    ``value`` is the lever (e.g. TPC-H scale factor or benchmark minutes);
    ``cost`` its relative evaluation cost. The highest ``value`` is the
    target fidelity the final recommendation must hold at.
    """

    value: float
    cost: float

    def __post_init__(self) -> None:
        if self.cost <= 0:
            raise OptimizerError(f"fidelity cost must be positive, got {self.cost}")


class MultiFidelityBO(Optimizer):
    """Joint-space GP: inputs are (encoded config, normalised fidelity).

    Observations carry their fidelity (``observe(..., fidelity=...)``). The
    acquisition is EI at the *target* fidelity divided by the candidate
    fidelity's cost; every ``full_every``-th suggestion is forced to the
    target fidelity so the incumbent is always backed by a real
    high-fidelity measurement.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        fidelities: Sequence[FidelityLevel],
        n_init: int = 6,
        n_candidates: int = 384,
        full_every: int = 4,
        objectives: Objective | list[Objective] | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(space, objectives, seed=seed)
        if len(fidelities) < 2:
            raise OptimizerError("need at least two fidelity levels")
        self.fidelities = sorted(fidelities, key=lambda f: f.value)
        self.target_fidelity = self.fidelities[-1]
        self.n_init = int(n_init)
        self.n_candidates = int(n_candidates)
        self.full_every = max(1, int(full_every))
        self.encoder = OrdinalEncoder(space)
        self.model = GaussianProcessRegressor(
            kernel=default_kernel(self.encoder.n_features + 1), seed=seed
        )
        self.acquisition = ExpectedImprovement()
        self.next_fidelity: FidelityLevel = self.fidelities[0]
        self._n_suggested = 0

    def _fid_unit(self, value: float) -> float:
        lo = self.fidelities[0].value
        hi = self.target_fidelity.value
        return (value - lo) / (hi - lo) if hi > lo else 1.0

    def _joint(self, configs: list[Configuration], fid_value: float) -> np.ndarray:
        X = self.encoder.encode_many(configs)
        return np.column_stack([X, np.full(len(X), self._fid_unit(fid_value))])

    def _training(self) -> tuple[np.ndarray, np.ndarray]:
        trials, y = self.history.training_data(self.objective, self.crash_penalty_factor)
        rows = []
        for t in trials:
            fid = t.fidelity if t.fidelity is not None else self.target_fidelity.value
            rows.append(
                np.append(self.encoder.encode(t.config), self._fid_unit(fid))
            )
        return (np.stack(rows) if rows else np.empty((0, self.encoder.n_features + 1))), np.asarray(y)

    def _best_target_score(self, X: np.ndarray, y: np.ndarray) -> float:
        at_target = X[:, -1] >= 0.999
        if at_target.any():
            return float(y[at_target].min())
        return float(y.min())

    def _suggest(self) -> Configuration:
        self._n_suggested += 1
        if len(self.history.completed()) < self.n_init:
            # Initial design at the cheapest fidelity.
            self.next_fidelity = self.fidelities[0]
            return self.space.sample(self.rng)
        X, y = self._training()
        self.model.fit(X, y)
        force_full = self._n_suggested % self.full_every == 0
        cands = self.space.sample_many(self.n_candidates, self.rng)
        best = self._best_target_score(X, y)
        best_pair: tuple[float, Configuration, FidelityLevel] | None = None
        levels = [self.target_fidelity] if force_full else self.fidelities
        for level in levels:
            mean, std = self.model.predict(self._joint(cands, level.value), return_std=True)
            ei = self.acquisition(mean, std, best)
            # Low-fidelity probes are discounted by their transferability:
            # correlation decays as fidelity departs from the target.
            afinity = 0.3 + 0.7 * self._fid_unit(level.value)
            utility = ei * afinity / level.cost
            i = int(np.argmax(utility))
            if best_pair is None or utility[i] > best_pair[0]:
                best_pair = (float(utility[i]), cands[i], level)
        _, config, level = best_pair
        self.next_fidelity = level
        return config

    def _on_observe(self, trial: Trial) -> None:
        pass  # model refits lazily on each suggest

    def _digest_state(self) -> dict[str, object]:
        return {
            "n_suggested": self._n_suggested,
            "next_fidelity": float(self.next_fidelity.value),
            "model_rng": rng_digest(self.model.rng),
        }


@dataclass
class HalvingRecord:
    """Trace of one successive-halving rung."""

    rung: int
    budget: float
    survivors: list[Configuration]
    scores: list[float]


def successive_halving(
    candidates: Sequence[Configuration],
    evaluate: Callable[[Configuration, float], float],
    budgets: Sequence[float],
    eta: float = 3.0,
    minimize: bool = True,
) -> tuple[Configuration, list[HalvingRecord]]:
    """Classic successive halving over explicit budget rungs.

    ``evaluate(config, budget)`` returns a (canonical minimize) score at the
    given budget. Each rung keeps the best ``1/eta`` fraction and re-runs
    them at the next, larger budget.
    """
    if not candidates:
        raise OptimizerError("need at least one candidate")
    if not budgets:
        raise OptimizerError("need at least one budget rung")
    if eta <= 1.0:
        raise OptimizerError(f"eta must be > 1, got {eta}")
    alive = list(candidates)
    records: list[HalvingRecord] = []
    sign = 1.0 if minimize else -1.0
    for rung, budget in enumerate(budgets):
        scores = [sign * evaluate(c, budget) for c in alive]
        order = np.argsort(scores)
        keep = max(1, int(np.ceil(len(alive) / eta))) if rung < len(budgets) - 1 else 1
        alive = [alive[i] for i in order[:keep]]
        records.append(
            HalvingRecord(rung, float(budget), list(alive), [float(sign * s) for s in sorted(scores)])
        )
        if len(alive) == 1 and rung < len(budgets) - 1:
            # Re-confirm the single survivor at the final budget.
            continue
    return alive[0], records
