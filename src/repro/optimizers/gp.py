"""Gaussian-process regression — the surrogate model M of the tutorial.

"Model random functions f̂ ~ GP(μ(x), Σ(x, x′)) … condition on observed
points, extract the expected function and confidence interval." This is a
from-scratch implementation: Cholesky conditioning (the slide's closed
form), marginal-likelihood hyperparameter fitting, and posterior sampling.

Hot-path notes (the suggest loop refits this model every trial):

* When the kernel hyperparameters are unchanged and the training matrix
  only grew by appended rows, :meth:`fit` extends the existing Cholesky
  factor by a rank-k block update — O(n²·k) instead of the O(n³) full
  factorization. Parity with the full recompute is exact up to floating-
  point rounding; any doubt (refit, jitter escalation, shrunk or edited
  history) falls back to the full path.
* Hyperparameter search uses analytic marginal-likelihood gradients
  (``jac=True`` L-BFGS-B) via ``kernel(X, eval_gradient=True)`` — one
  kernel-matrix construction per NLL evaluation instead of one per
  gradient component.
* :attr:`stats` (a :class:`SurrogateStats`) counts NLL evaluations,
  kernel-matrix constructions, full vs incremental Cholesky updates, and
  accumulates factorization wall-clock, so callers can wire surrogate
  timings into telemetry.
"""

from __future__ import annotations

import math
import time
from dataclasses import asdict, dataclass

import numpy as np
from scipy import linalg, optimize

from ..exceptions import NotFittedError, OptimizerError
from ..telemetry.spans import emit_event, span
from .kernels import ConstantKernel, Kernel, Matern, WhiteKernel

__all__ = ["GaussianProcessRegressor", "SurrogateStats", "default_kernel"]


def default_kernel(ard_dims: int | None = None) -> Kernel:
    """The BO workhorse: scaled Matérn-5/2 plus learned white noise."""
    length_scale = np.full(ard_dims, 0.3) if ard_dims else 0.3
    return ConstantKernel(1.0) * Matern(length_scale, nu=2.5) + WhiteKernel(1e-3)


@dataclass
class SurrogateStats:
    """Cumulative hot-path counters and timings for one GP instance."""

    fits: int = 0
    cholesky_full: int = 0
    cholesky_incremental: int = 0
    cholesky_ms: float = 0.0
    fit_ms: float = 0.0
    nll_evals: int = 0
    nll_grad_evals: int = 0
    kernel_constructions: int = 0
    jitter_escalations: int = 0

    def to_dict(self) -> dict[str, float]:
        return {k: float(v) for k, v in asdict(self).items()}


class GaussianProcessRegressor:
    """GP regression on (typically unit-cube) inputs.

    Parameters
    ----------
    kernel:
        Covariance function; defaults to Constant × Matérn(2.5) + White.
    optimize_hypers:
        Maximise the log marginal likelihood over kernel hyperparameters on
        each :meth:`fit`.
    n_restarts:
        Extra random restarts for the hyperparameter search.
    jitter:
        Diagonal stabiliser added before Cholesky.
    normalize_y:
        Standardise targets internally (predictions are de-standardised).
    analytic_gradients:
        Use closed-form marginal-likelihood gradients for the L-BFGS-B
        hyperparameter search (default). When False, falls back to
        finite-difference gradients — kept for parity benchmarking.
    incremental:
        Allow the rank-k Cholesky append when refitting on a grown prefix
        of the previous training matrix (default). When False, every fit
        refactorizes from scratch — the full-refit baseline.
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        optimize_hypers: bool = True,
        n_restarts: int = 1,
        jitter: float = 1e-8,
        normalize_y: bool = True,
        seed: int | None = None,
        analytic_gradients: bool = True,
        incremental: bool = True,
    ) -> None:
        self.kernel = kernel if kernel is not None else default_kernel()
        self.optimize_hypers = optimize_hypers
        self.n_restarts = int(n_restarts)
        self.jitter = float(jitter)
        self.normalize_y = normalize_y
        self.analytic_gradients = bool(analytic_gradients)
        self.incremental = bool(incremental)
        self.rng = np.random.default_rng(seed)
        self.stats = SurrogateStats()
        self._X: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._L: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        # Incremental-update bookkeeping: the θ the current factor was built
        # with, and whether it needed an escalated jitter (which disables the
        # incremental path until the next clean full factorization).
        self._chol_theta: np.ndarray | None = None
        self._jitter_escalated = False

    # -- fitting --------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        t0 = time.perf_counter()
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y):
            raise OptimizerError(f"X and y disagree: {len(X)} vs {len(y)}")
        if len(X) == 0:
            raise OptimizerError("cannot fit a GP to zero observations")
        if self.normalize_y:
            self._y_mean = float(y.mean())
            self._y_std = float(y.std()) or 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        self._y = (y - self._y_mean) / self._y_std

        if self.optimize_hypers and len(X) >= 2:
            self._X = X
            self._optimize_theta()
            self._recompute()
        else:
            n_old = self._appendable_rows(X)
            if n_old is None:
                self._X = X
                self._recompute()
            else:
                self._update_incremental(X, n_old)
        self.stats.fits += 1
        self.stats.fit_ms += (time.perf_counter() - t0) * 1e3
        return self

    def _appendable_rows(self, X: np.ndarray) -> int | None:
        """Rows of the current factor reusable for ``X``, or None.

        The incremental path is valid only when the previous training matrix
        is an unchanged prefix of ``X``, the kernel hyperparameters match the
        ones the factor was computed with, and that factorization did not
        need jitter escalation.
        """
        if not self.incremental:
            return None
        if self._L is None or self._X is None or self._chol_theta is None:
            return None
        if self._jitter_escalated:
            return None
        n_old = len(self._X)
        if len(X) < n_old or X.shape[1] != self._X.shape[1]:
            return None
        if not np.array_equal(self.kernel.theta, self._chol_theta):
            return None
        if not np.array_equal(X[:n_old], self._X):
            return None
        return n_old

    def _update_incremental(self, X: np.ndarray, n_old: int) -> None:
        """Extend the Cholesky factor by the appended rows of ``X``.

        Block update: with K = [[K11, K12], [K12ᵀ, K22]] and K11 = L L ᵀ,
        the new factor is [[L, 0], [L12ᵀ, L22]] where L12 = L⁻¹K12 and
        L22 L22ᵀ = K22 − L12ᵀL12. Cost is O(n²·k) for k appended rows.
        """
        k = len(X) - n_old
        if k == 0:
            # Same inputs, (possibly) new targets: only α changes — O(n²).
            self._alpha = linalg.cho_solve((self._L, True), self._y)
            return
        t0 = time.perf_counter()
        X_new = X[n_old:]
        K12 = self.kernel(self._X, X_new)
        K22 = self.kernel(X_new) + self.jitter * np.eye(k)
        L12 = linalg.solve_triangular(self._L, K12, lower=True)
        S = K22 - L12.T @ L12
        try:
            L22 = linalg.cholesky(S, lower=True)
        except linalg.LinAlgError:
            # Schur complement lost positive-definiteness (near-duplicate
            # rows): fall back to the full path with jitter escalation.
            self._X = X
            self._recompute()
            return
        n = len(X)
        L = np.zeros((n, n))
        L[:n_old, :n_old] = self._L
        L[n_old:, :n_old] = L12.T
        L[n_old:, n_old:] = L22
        self._L = L
        self._X = X
        self._alpha = linalg.cho_solve((self._L, True), self._y)
        self.stats.cholesky_incremental += 1
        self.stats.cholesky_ms += (time.perf_counter() - t0) * 1e3

    def _nll(self, theta: np.ndarray) -> float:
        self.stats.nll_evals += 1
        self.stats.kernel_constructions += 1
        self.kernel.theta = theta
        K = self.kernel(self._X) + self.jitter * np.eye(len(self._X))
        try:
            L = linalg.cholesky(K, lower=True)
        except linalg.LinAlgError:
            return 1e25
        alpha = linalg.cho_solve((L, True), self._y)
        nll = (
            0.5 * float(self._y @ alpha)
            + float(np.log(np.diag(L)).sum())
            + 0.5 * len(self._X) * math.log(2.0 * math.pi)
        )
        return nll if np.isfinite(nll) else 1e25

    def _nll_and_grad(self, theta: np.ndarray) -> tuple[float, np.ndarray]:
        """NLL and its analytic gradient — one kernel construction per call.

        ∂NLL/∂θ_j = −½ tr((ααᵀ − K⁻¹) ∂K/∂θ_j) with α = K⁻¹y.
        """
        self.stats.nll_evals += 1
        self.stats.nll_grad_evals += 1
        self.stats.kernel_constructions += 1
        self.kernel.theta = theta
        n = len(self._X)
        K, dK = self.kernel(self._X, eval_gradient=True)
        K = K + self.jitter * np.eye(n)
        try:
            L = linalg.cholesky(K, lower=True)
        except linalg.LinAlgError:
            return 1e25, np.zeros_like(theta)
        alpha = linalg.cho_solve((L, True), self._y)
        nll = (
            0.5 * float(self._y @ alpha)
            + float(np.log(np.diag(L)).sum())
            + 0.5 * n * math.log(2.0 * math.pi)
        )
        if not np.isfinite(nll):
            return 1e25, np.zeros_like(theta)
        K_inv = linalg.cho_solve((L, True), np.eye(n))
        tmp = np.outer(alpha, alpha) - K_inv
        grad = -0.5 * np.einsum("ij,ijk->k", tmp, dK)
        return nll, grad

    def _optimize_theta(self) -> None:
        with span("gp.hyperopt", n_restarts=self.n_restarts, analytic=self.analytic_gradients):
            bounds = self.kernel.bounds
            starts = [self.kernel.theta.copy()]
            for _ in range(self.n_restarts):
                starts.append(self.rng.uniform(bounds[:, 0], bounds[:, 1]))
            best_theta, best_nll = starts[0], np.inf
            use_jac = self.analytic_gradients
            fun = self._nll_and_grad if use_jac else self._nll
            for start in starts:
                res = optimize.minimize(
                    fun, start, method="L-BFGS-B", bounds=bounds, jac=use_jac,
                    options={"maxiter": 50},
                )
                if res.fun < best_nll:
                    best_nll, best_theta = float(res.fun), res.x
            self.kernel.theta = best_theta

    def _recompute(self) -> None:
        t0 = time.perf_counter()
        self.stats.kernel_constructions += 1
        K = self.kernel(self._X) + self.jitter * np.eye(len(self._X))
        self._jitter_escalated = False
        try:
            self._L = linalg.cholesky(K, lower=True)
        except linalg.LinAlgError:
            # Escalate the jitter rather than fail: noisy-system data can
            # contain near-duplicate rows.
            K += 1e-4 * np.eye(len(self._X))
            self._L = linalg.cholesky(K, lower=True)
            self._jitter_escalated = True
            self.stats.jitter_escalations += 1
            emit_event(
                "surrogate.jitter_escalation", severity="warning",
                message="kernel matrix not positive definite; jitter escalated to 1e-4",
                n_observations=len(self._X),
            )
        self._alpha = linalg.cho_solve((self._L, True), self._y)
        self._chol_theta = self.kernel.theta.copy()
        self.stats.cholesky_full += 1
        self.stats.cholesky_ms += (time.perf_counter() - t0) * 1e3

    @property
    def is_fitted(self) -> bool:
        return self._X is not None

    def log_marginal_likelihood(self) -> float:
        self._require_fit()
        return -self._nll(self.kernel.theta)

    def stats_dict(self) -> dict[str, float]:
        """Counters/timings, including kernel distance-cache hit rates."""
        out = self.stats.to_dict()
        hits = misses = 0
        for k in self.kernel.walk():
            hits += getattr(k, "cache_hits", 0)
            misses += getattr(k, "cache_misses", 0)
        out["distance_cache_hits"] = float(hits)
        out["distance_cache_misses"] = float(misses)
        return out

    # -- prediction ----------------------------------------------------------------
    def predict(self, X: np.ndarray, return_std: bool = False):
        """Posterior mean (and optionally std) at query points.

        The slide's conditioning formula:
        ``μ* = K*ᵀ K⁻¹ y`` and ``Σ* = K** − K*ᵀ K⁻¹ K*``.
        """
        self._require_fit()
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Ks = self.kernel(self._X, X)
        mean = Ks.T @ self._alpha * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = linalg.solve_triangular(self._L, Ks, lower=True)
        var = self.kernel.diag(X) - np.sum(v * v, axis=0)
        std = np.sqrt(np.maximum(var, 1e-12)) * self._y_std
        return mean, std

    @staticmethod
    def _sample_mvn(
        mean: np.ndarray, cov: np.ndarray, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw N(mean, cov) samples via Cholesky — O(n³) once, then O(n²·s).

        ``rng.multivariate_normal`` factorizes with SVD; the direct Cholesky
        draw is several times faster and numerically adequate with a little
        jitter (escalated on failure, eigen-clip as the last resort).
        """
        n = len(cov)
        jitter = 1e-10
        L = None
        for _ in range(6):
            try:
                L = linalg.cholesky(cov + jitter * np.eye(n), lower=True)
                break
            except linalg.LinAlgError:
                jitter *= 100.0
        if L is None:
            w, V = linalg.eigh(cov)
            L = V * np.sqrt(np.maximum(w, 0.0))
        z = rng.standard_normal((n, n_samples))
        return (mean[:, None] + L @ z).T

    def sample_y(self, X: np.ndarray, n_samples: int = 1, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw posterior function samples at X — shape (n_samples, len(X))."""
        self._require_fit()
        rng = rng if rng is not None else self.rng
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Ks = self.kernel(self._X, X)
        mean = Ks.T @ self._alpha
        v = linalg.solve_triangular(self._L, Ks, lower=True)
        cov = self.kernel(X) - v.T @ v
        draws = self._sample_mvn(mean, cov, n_samples, rng)
        return draws * self._y_std + self._y_mean

    def prior_sample(self, X: np.ndarray, n_samples: int = 1, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw from the GP *prior* (no data) — the slide's 'model random
        functions' picture."""
        rng = rng if rng is not None else self.rng
        X = np.atleast_2d(np.asarray(X, dtype=float))
        cov = self.kernel(X)
        return self._sample_mvn(np.zeros(len(X)), cov, n_samples, rng)

    def _require_fit(self) -> None:
        if not self.is_fitted:
            raise NotFittedError("call fit() before querying the GP")
