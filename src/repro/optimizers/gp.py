"""Gaussian-process regression — the surrogate model M of the tutorial.

"Model random functions f̂ ~ GP(μ(x), Σ(x, x′)) … condition on observed
points, extract the expected function and confidence interval." This is a
from-scratch implementation: Cholesky conditioning (the slide's closed
form), marginal-likelihood hyperparameter fitting, and posterior sampling.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import linalg, optimize

from ..exceptions import NotFittedError, OptimizerError
from .kernels import ConstantKernel, Kernel, Matern, WhiteKernel

__all__ = ["GaussianProcessRegressor", "default_kernel"]


def default_kernel(ard_dims: int | None = None) -> Kernel:
    """The BO workhorse: scaled Matérn-5/2 plus learned white noise."""
    length_scale = np.full(ard_dims, 0.3) if ard_dims else 0.3
    return ConstantKernel(1.0) * Matern(length_scale, nu=2.5) + WhiteKernel(1e-3)


class GaussianProcessRegressor:
    """GP regression on (typically unit-cube) inputs.

    Parameters
    ----------
    kernel:
        Covariance function; defaults to Constant × Matérn(2.5) + White.
    optimize_hypers:
        Maximise the log marginal likelihood over kernel hyperparameters on
        each :meth:`fit`.
    n_restarts:
        Extra random restarts for the hyperparameter search.
    jitter:
        Diagonal stabiliser added before Cholesky.
    normalize_y:
        Standardise targets internally (predictions are de-standardised).
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        optimize_hypers: bool = True,
        n_restarts: int = 1,
        jitter: float = 1e-8,
        normalize_y: bool = True,
        seed: int | None = None,
    ) -> None:
        self.kernel = kernel if kernel is not None else default_kernel()
        self.optimize_hypers = optimize_hypers
        self.n_restarts = int(n_restarts)
        self.jitter = float(jitter)
        self.normalize_y = normalize_y
        self.rng = np.random.default_rng(seed)
        self._X: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._L: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0

    # -- fitting --------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y):
            raise OptimizerError(f"X and y disagree: {len(X)} vs {len(y)}")
        if len(X) == 0:
            raise OptimizerError("cannot fit a GP to zero observations")
        if self.normalize_y:
            self._y_mean = float(y.mean())
            self._y_std = float(y.std()) or 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        self._X = X
        self._y = (y - self._y_mean) / self._y_std

        if self.optimize_hypers and len(X) >= 2:
            self._optimize_theta()
        self._recompute()
        return self

    def _nll(self, theta: np.ndarray) -> float:
        self.kernel.theta = theta
        K = self.kernel(self._X) + self.jitter * np.eye(len(self._X))
        try:
            L = linalg.cholesky(K, lower=True)
        except linalg.LinAlgError:
            return 1e25
        alpha = linalg.cho_solve((L, True), self._y)
        nll = (
            0.5 * float(self._y @ alpha)
            + float(np.log(np.diag(L)).sum())
            + 0.5 * len(self._X) * math.log(2.0 * math.pi)
        )
        return nll if np.isfinite(nll) else 1e25

    def _optimize_theta(self) -> None:
        bounds = self.kernel.bounds
        starts = [self.kernel.theta.copy()]
        for _ in range(self.n_restarts):
            starts.append(self.rng.uniform(bounds[:, 0], bounds[:, 1]))
        best_theta, best_nll = starts[0], self._nll(starts[0])
        for start in starts:
            res = optimize.minimize(
                self._nll, start, method="L-BFGS-B", bounds=bounds,
                options={"maxiter": 50},
            )
            if res.fun < best_nll:
                best_nll, best_theta = float(res.fun), res.x
        self.kernel.theta = best_theta

    def _recompute(self) -> None:
        K = self.kernel(self._X) + self.jitter * np.eye(len(self._X))
        try:
            self._L = linalg.cholesky(K, lower=True)
        except linalg.LinAlgError:
            # Escalate the jitter rather than fail: noisy-system data can
            # contain near-duplicate rows.
            K += 1e-4 * np.eye(len(self._X))
            self._L = linalg.cholesky(K, lower=True)
        self._alpha = linalg.cho_solve((self._L, True), self._y)

    @property
    def is_fitted(self) -> bool:
        return self._X is not None

    def log_marginal_likelihood(self) -> float:
        self._require_fit()
        return -self._nll(self.kernel.theta)

    # -- prediction ----------------------------------------------------------------
    def predict(self, X: np.ndarray, return_std: bool = False):
        """Posterior mean (and optionally std) at query points.

        The slide's conditioning formula:
        ``μ* = K*ᵀ K⁻¹ y`` and ``Σ* = K** − K*ᵀ K⁻¹ K*``.
        """
        self._require_fit()
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Ks = self.kernel(self._X, X)
        mean = Ks.T @ self._alpha * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = linalg.solve_triangular(self._L, Ks, lower=True)
        var = self.kernel.diag(X) - np.sum(v * v, axis=0)
        std = np.sqrt(np.maximum(var, 1e-12)) * self._y_std
        return mean, std

    def sample_y(self, X: np.ndarray, n_samples: int = 1, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw posterior function samples at X — shape (n_samples, len(X))."""
        self._require_fit()
        rng = rng if rng is not None else self.rng
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Ks = self.kernel(self._X, X)
        mean = Ks.T @ self._alpha
        v = linalg.solve_triangular(self._L, Ks, lower=True)
        cov = self.kernel(X) - v.T @ v + 1e-10 * np.eye(len(X))
        draws = rng.multivariate_normal(mean, cov, size=n_samples)
        return draws * self._y_std + self._y_mean

    def prior_sample(self, X: np.ndarray, n_samples: int = 1, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw from the GP *prior* (no data) — the slide's 'model random
        functions' picture."""
        rng = rng if rng is not None else self.rng
        X = np.atleast_2d(np.asarray(X, dtype=float))
        cov = self.kernel(X) + 1e-10 * np.eye(len(X))
        return rng.multivariate_normal(np.zeros(len(X)), cov, size=n_samples)

    def _require_fit(self) -> None:
        if not self.is_fitted:
            raise NotFittedError("call fit() before querying the GP")
