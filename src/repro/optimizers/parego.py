"""ParEGO — multi-objective BO via random Tchebycheff scalarisation.

Knowles (2006), cited on slide 58: each iteration draws a random weight
vector θ, collapses the observed objective vectors into one augmented-
Tchebycheff score, fits the surrogate to that, and maximises EI. Over many
iterations the rotating weights trace out the whole Pareto frontier.

Also provides :class:`LinearScalarizationOptimizer` (the slide's simpler
``min Σ θᵢ fᵢ(x)`` alternative) as the baseline ParEGO is compared against:
linear scalarisation cannot reach concave regions of the front.
"""

from __future__ import annotations

import numpy as np

from ..core import Objective, Optimizer, Trial
from ..exceptions import OptimizerError
from ..space import Configuration, ConfigurationSpace
from ..space.encoding import OrdinalEncoder
from .acquisition import ExpectedImprovement
from .gp import GaussianProcessRegressor, default_kernel
from .pareto import pareto_front_mask

__all__ = ["ParEGOOptimizer", "LinearScalarizationOptimizer"]


class _ScalarizingBO(Optimizer):
    """Shared machinery: GP-EI over a scalarisation recomputed per suggest."""

    supports_multi_objective = True

    def __init__(
        self,
        space: ConfigurationSpace,
        objectives: list[Objective],
        n_init: int = 8,
        n_candidates: int = 512,
        seed: int | None = None,
    ) -> None:
        if len(objectives) < 2:
            raise OptimizerError("multi-objective optimizers need >= 2 objectives")
        super().__init__(space, objectives, seed=seed)
        self.n_init = int(n_init)
        self.n_candidates = int(n_candidates)
        self.encoder = OrdinalEncoder(space)
        self.model = GaussianProcessRegressor(kernel=default_kernel(self.encoder.n_features), seed=seed)
        self.acquisition = ExpectedImprovement()

    # -- scalarisation -------------------------------------------------------
    def _objective_matrix(self) -> tuple[list[Configuration], np.ndarray]:
        done = self.history.completed()
        configs = [t.config for t in done]
        F = np.array([[obj.score(t.metric(obj.name)) for obj in self.objectives] for t in done])
        return configs, F

    @staticmethod
    def _normalize(F: np.ndarray) -> np.ndarray:
        lo = F.min(axis=0)
        span = F.max(axis=0) - lo
        span[span <= 0] = 1.0
        return (F - lo) / span

    def _draw_weights(self) -> np.ndarray:
        w = self.rng.dirichlet(np.ones(len(self.objectives)))
        return np.maximum(w, 1e-6)

    def _scalarize(self, F_norm: np.ndarray, weights: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- suggest -----------------------------------------------------------------
    def _suggest(self) -> Configuration:
        configs, F = self._objective_matrix()
        if len(configs) < self.n_init:
            return self.space.sample(self.rng)
        weights = self._draw_weights()
        y = self._scalarize(self._normalize(F), weights)
        X = self.encoder.encode_many(configs)
        self.model.fit(X, y)
        cands = self.space.sample_many(self.n_candidates, self.rng)
        mean, std = self.model.predict(self.encoder.encode_many(cands), return_std=True)
        scores = self.acquisition(mean, std, float(y.min()))
        return cands[int(np.argmax(scores))]

    # -- results ------------------------------------------------------------------
    def pareto_trials(self) -> list[Trial]:
        """Completed trials whose objective vectors are non-dominated."""
        done = self.history.completed()
        if not done:
            return []
        _, F = self._objective_matrix()
        mask = pareto_front_mask(F)
        return [t for t, keep in zip(done, mask) if keep]

    def objective_values(self) -> np.ndarray:
        """(n, k) matrix of canonical scores of completed trials."""
        _, F = self._objective_matrix()
        return F


class ParEGOOptimizer(_ScalarizingBO):
    """Augmented Tchebycheff: g(f) = max_i θᵢ fᵢ + ρ Σ θᵢ fᵢ."""

    def __init__(self, *args, rho: float = 0.05, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if rho < 0:
            raise OptimizerError(f"rho must be >= 0, got {rho}")
        self.rho = float(rho)

    def _scalarize(self, F_norm: np.ndarray, weights: np.ndarray) -> np.ndarray:
        weighted = F_norm * weights
        return weighted.max(axis=1) + self.rho * weighted.sum(axis=1)


class LinearScalarizationOptimizer(_ScalarizingBO):
    """Plain weighted sum — misses concave Pareto regions (the lesson)."""

    def _scalarize(self, F_norm: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return (F_norm * weights).sum(axis=1)
