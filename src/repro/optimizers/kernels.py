"""Covariance kernels for Gaussian-process surrogates.

Implements the kernels the tutorial's "Kernel Functions" slides cover: RBF
(the scikit-learn default), Matérn (the "most popular kernel nowadays", with
ν controlling smoothness and converging to RBF as ν→∞), plus Constant and
White noise kernels, and Sum/Product composition ("kernels can be combined").

All hyperparameters live in log-space vectors (``theta``) so the marginal-
likelihood optimizer can do unconstrained-ish box search.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from ..exceptions import OptimizerError

__all__ = ["Kernel", "ConstantKernel", "WhiteKernel", "RBF", "Matern", "Sum", "Product"]


def _cdist_sq(X1: np.ndarray, X2: np.ndarray, length_scale: np.ndarray) -> np.ndarray:
    """Squared Euclidean distance after per-dimension scaling."""
    A = X1 / length_scale
    B = X2 / length_scale
    sq = (
        np.sum(A * A, axis=1)[:, None]
        + np.sum(B * B, axis=1)[None, :]
        - 2.0 * A @ B.T
    )
    return np.maximum(sq, 0.0)


class Kernel(ABC):
    """A positive-semidefinite covariance function with log-space params."""

    @abstractmethod
    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None) -> np.ndarray:
        """Covariance matrix K(X1, X2); X2=None means K(X1, X1)."""

    @abstractmethod
    def diag(self, X: np.ndarray) -> np.ndarray:
        """Diagonal of K(X, X) without forming the matrix."""

    @property
    @abstractmethod
    def theta(self) -> np.ndarray:
        """Log-space hyperparameter vector."""

    @theta.setter
    @abstractmethod
    def theta(self, value: np.ndarray) -> None: ...

    @property
    @abstractmethod
    def bounds(self) -> np.ndarray:
        """(n_params, 2) log-space bounds."""

    # -- composition ---------------------------------------------------------
    def __add__(self, other: "Kernel") -> "Sum":
        return Sum(self, other)

    def __mul__(self, other: "Kernel") -> "Product":
        return Product(self, other)


class ConstantKernel(Kernel):
    """K(x, x') = variance. Scales other kernels via products."""

    def __init__(self, variance: float = 1.0, bounds: tuple[float, float] = (1e-4, 1e4)) -> None:
        if variance <= 0:
            raise OptimizerError(f"variance must be positive, got {variance}")
        self.variance = float(variance)
        self._bounds = bounds

    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None) -> np.ndarray:
        n2 = len(X1) if X2 is None else len(X2)
        return np.full((len(X1), n2), self.variance)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(len(X), self.variance)

    @property
    def theta(self) -> np.ndarray:
        return np.array([math.log(self.variance)])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self.variance = float(np.exp(value[0]))

    @property
    def bounds(self) -> np.ndarray:
        return np.log(np.array([self._bounds]))


class WhiteKernel(Kernel):
    """Observation-noise kernel: adds ``noise`` on the diagonal only.

    Essential for tuning noisy systems — the GP stops interpolating
    measurement noise and starts averaging it out.
    """

    def __init__(self, noise: float = 1e-3, bounds: tuple[float, float] = (1e-8, 1e2)) -> None:
        if noise <= 0:
            raise OptimizerError(f"noise must be positive, got {noise}")
        self.noise = float(noise)
        self._bounds = bounds

    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None) -> np.ndarray:
        if X2 is None:
            return self.noise * np.eye(len(X1))
        return np.zeros((len(X1), len(X2)))

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(len(X), self.noise)

    @property
    def theta(self) -> np.ndarray:
        return np.array([math.log(self.noise)])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self.noise = float(np.exp(value[0]))

    @property
    def bounds(self) -> np.ndarray:
        return np.log(np.array([self._bounds]))


class _StationaryKernel(Kernel):
    """Shared machinery for distance-based kernels with ARD length-scales."""

    def __init__(self, length_scale: float | np.ndarray = 1.0, bounds: tuple[float, float] = (1e-3, 1e3)) -> None:
        ls = np.atleast_1d(np.asarray(length_scale, dtype=float))
        if np.any(ls <= 0):
            raise OptimizerError(f"length_scale must be positive, got {length_scale}")
        self.length_scale = ls
        self._bounds = bounds

    @property
    def theta(self) -> np.ndarray:
        return np.log(self.length_scale)

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self.length_scale = np.exp(np.asarray(value, dtype=float))

    @property
    def bounds(self) -> np.ndarray:
        return np.log(np.tile(np.array([self._bounds]), (len(self.length_scale), 1)))

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.ones(len(X))


class RBF(_StationaryKernel):
    """Radial basis function: ``exp(-d² / 2ℓ²)``; infinitely smooth.

    ``length_scale`` may be a vector for ARD (one ℓ per input dimension).
    """

    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None) -> np.ndarray:
        X2 = X1 if X2 is None else X2
        return np.exp(-0.5 * _cdist_sq(X1, X2, self.length_scale))


class Matern(_StationaryKernel):
    """Matérn kernel with ν ∈ {0.5, 1.5, 2.5} (the closed-form cases).

    ν = 0.5 is the rough exponential kernel; 2.5 is the BO workhorse.
    """

    _SUPPORTED_NU = (0.5, 1.5, 2.5)

    def __init__(
        self,
        length_scale: float | np.ndarray = 1.0,
        nu: float = 2.5,
        bounds: tuple[float, float] = (1e-3, 1e3),
    ) -> None:
        super().__init__(length_scale, bounds)
        if nu not in self._SUPPORTED_NU:
            raise OptimizerError(f"nu must be one of {self._SUPPORTED_NU}, got {nu}")
        self.nu = float(nu)

    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None) -> np.ndarray:
        X2 = X1 if X2 is None else X2
        d = np.sqrt(_cdist_sq(X1, X2, self.length_scale))
        if self.nu == 0.5:
            return np.exp(-d)
        if self.nu == 1.5:
            s = math.sqrt(3.0) * d
            return (1.0 + s) * np.exp(-s)
        s = math.sqrt(5.0) * d
        return (1.0 + s + s * s / 3.0) * np.exp(-s)


class _CompositeKernel(Kernel):
    def __init__(self, k1: Kernel, k2: Kernel) -> None:
        self.k1 = k1
        self.k2 = k2

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate([self.k1.theta, self.k2.theta])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        n1 = len(self.k1.theta)
        self.k1.theta = value[:n1]
        self.k2.theta = value[n1:]

    @property
    def bounds(self) -> np.ndarray:
        return np.vstack([self.k1.bounds, self.k2.bounds])


class Sum(_CompositeKernel):
    """K = K1 + K2 (e.g. signal kernel + white noise)."""

    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None) -> np.ndarray:
        return self.k1(X1, X2) + self.k2(X1, X2)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.k1.diag(X) + self.k2.diag(X)


class Product(_CompositeKernel):
    """K = K1 ⊙ K2 (e.g. constant variance × RBF)."""

    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None) -> np.ndarray:
        return self.k1(X1, X2) * self.k2(X1, X2)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.k1.diag(X) * self.k2.diag(X)
