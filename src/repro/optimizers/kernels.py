"""Covariance kernels for Gaussian-process surrogates.

Implements the kernels the tutorial's "Kernel Functions" slides cover: RBF
(the scikit-learn default), Matérn (the "most popular kernel nowadays", with
ν controlling smoothness and converging to RBF as ν→∞), plus Constant and
White noise kernels, and Sum/Product composition ("kernels can be combined").

All hyperparameters live in log-space vectors (``theta``) so the marginal-
likelihood optimizer can do unconstrained-ish box search.

Every kernel supports ``__call__(X, eval_gradient=True)``, returning
``(K, dK)`` where ``dK[:, :, j] = ∂K/∂θ_j`` (log-space). This powers the
analytic marginal-likelihood gradients in
:class:`~repro.optimizers.gp.GaussianProcessRegressor`, replacing the
finite-difference L-BFGS-B search that re-formed the kernel matrix once per
gradient component.

Stationary kernels additionally cache the raw (unscaled) squared-difference
tensor of the training matrix: within one hyperparameter fit the inputs are
the same array object across every θ evaluation, so a length-scale change
only rescales cached differences instead of recomputing O(n²·d) distances.
"""

from __future__ import annotations

import math
import weakref
from abc import ABC, abstractmethod

import numpy as np

from ..exceptions import OptimizerError

__all__ = ["Kernel", "ConstantKernel", "WhiteKernel", "RBF", "Matern", "Sum", "Product"]

#: Raw squared-difference tensors larger than this many elements are
#: recomputed on demand instead of cached (bounds memory to ~256 MB).
_CACHE_MAX_ELEMENTS = 32_000_000


def _cdist_sq(X1: np.ndarray, X2: np.ndarray, length_scale: np.ndarray) -> np.ndarray:
    """Squared Euclidean distance after per-dimension scaling."""
    A = X1 / length_scale
    B = X2 / length_scale
    sq = (
        np.sum(A * A, axis=1)[:, None]
        + np.sum(B * B, axis=1)[None, :]
        - 2.0 * A @ B.T
    )
    return np.maximum(sq, 0.0)


class Kernel(ABC):
    """A positive-semidefinite covariance function with log-space params."""

    @abstractmethod
    def __call__(
        self, X1: np.ndarray, X2: np.ndarray | None = None, eval_gradient: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Covariance matrix K(X1, X2); X2=None means K(X1, X1).

        With ``eval_gradient=True`` (only valid when ``X2 is None``), returns
        ``(K, dK)`` where ``dK`` has shape ``(n, n, len(theta))`` and
        ``dK[:, :, j]`` is the derivative of K w.r.t. the j-th log-space
        hyperparameter.
        """

    @abstractmethod
    def diag(self, X: np.ndarray) -> np.ndarray:
        """Diagonal of K(X, X) without forming the matrix."""

    @property
    @abstractmethod
    def theta(self) -> np.ndarray:
        """Log-space hyperparameter vector."""

    @theta.setter
    @abstractmethod
    def theta(self, value: np.ndarray) -> None: ...

    @property
    @abstractmethod
    def bounds(self) -> np.ndarray:
        """(n_params, 2) log-space bounds."""

    def walk(self):
        """Yield this kernel and (for composites) every nested kernel."""
        yield self

    # -- composition ---------------------------------------------------------
    def __add__(self, other: "Kernel") -> "Sum":
        return Sum(self, other)

    def __mul__(self, other: "Kernel") -> "Product":
        return Product(self, other)


def _require_no_x2(X2: np.ndarray | None) -> None:
    if X2 is not None:
        raise OptimizerError("eval_gradient=True requires X2 is None (training matrix only)")


class ConstantKernel(Kernel):
    """K(x, x') = variance. Scales other kernels via products."""

    def __init__(self, variance: float = 1.0, bounds: tuple[float, float] = (1e-4, 1e4)) -> None:
        if variance <= 0:
            raise OptimizerError(f"variance must be positive, got {variance}")
        self.variance = float(variance)
        self._bounds = bounds

    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None, eval_gradient: bool = False):
        n2 = len(X1) if X2 is None else len(X2)
        K = np.full((len(X1), n2), self.variance)
        if not eval_gradient:
            return K
        _require_no_x2(X2)
        # ∂(v·1)/∂log v = v·1 = K.
        return K, K[:, :, None].copy()

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(len(X), self.variance)

    @property
    def theta(self) -> np.ndarray:
        return np.array([math.log(self.variance)])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self.variance = float(np.exp(value[0]))

    @property
    def bounds(self) -> np.ndarray:
        return np.log(np.array([self._bounds]))


class WhiteKernel(Kernel):
    """Observation-noise kernel: adds ``noise`` on the diagonal only.

    Essential for tuning noisy systems — the GP stops interpolating
    measurement noise and starts averaging it out.
    """

    def __init__(self, noise: float = 1e-3, bounds: tuple[float, float] = (1e-8, 1e2)) -> None:
        if noise <= 0:
            raise OptimizerError(f"noise must be positive, got {noise}")
        self.noise = float(noise)
        self._bounds = bounds

    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None, eval_gradient: bool = False):
        K = self.noise * np.eye(len(X1)) if X2 is None else np.zeros((len(X1), len(X2)))
        if not eval_gradient:
            return K
        _require_no_x2(X2)
        # ∂(σ·I)/∂log σ = σ·I = K.
        return K, K[:, :, None].copy()

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(len(X), self.noise)

    @property
    def theta(self) -> np.ndarray:
        return np.array([math.log(self.noise)])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self.noise = float(np.exp(value[0]))

    @property
    def bounds(self) -> np.ndarray:
        return np.log(np.array([self._bounds]))


class _StationaryKernel(Kernel):
    """Shared machinery for distance-based kernels with ARD length-scales.

    Caches the *unscaled* squared-difference tensor of the last training
    matrix (keyed by array identity, held via weakref): summed over
    dimensions for isotropic kernels, per-dimension for ARD. θ evaluations
    within one fit pass the same array object, so hyperparameter search
    rescales cached differences instead of recomputing them.
    """

    def __init__(self, length_scale: float | np.ndarray = 1.0, bounds: tuple[float, float] = (1e-3, 1e3)) -> None:
        ls = np.atleast_1d(np.asarray(length_scale, dtype=float))
        if np.any(ls <= 0):
            raise OptimizerError(f"length_scale must be positive, got {length_scale}")
        self.length_scale = ls
        self._bounds = bounds
        self._diff_ref: weakref.ref | None = None
        self._diff_cache: np.ndarray | None = None
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def anisotropic(self) -> bool:
        return self.length_scale.shape[0] > 1

    def _raw_sq_diffs(self, X: np.ndarray) -> np.ndarray:
        """Unscaled squared differences of X with itself (cached).

        Shape ``(n, n)`` summed over dims for isotropic kernels, ``(n, n, d)``
        per dimension for ARD. The cache assumes X is not mutated in place.
        """
        if self._diff_ref is not None and self._diff_ref() is X:
            self.cache_hits += 1
            return self._diff_cache
        self.cache_misses += 1
        if self.anisotropic:
            diff = X[:, None, :] - X[None, :, :]
            raw = diff * diff
        else:
            raw = _cdist_sq(X, X, np.ones(1))
        if raw.size <= _CACHE_MAX_ELEMENTS:
            try:
                self._diff_ref = weakref.ref(X)
                self._diff_cache = raw
            except TypeError:
                self._diff_ref = None
                self._diff_cache = None
        return raw

    def _train_D2(self, X: np.ndarray) -> np.ndarray:
        """Scaled squared distances D² of the training matrix (via cache)."""
        raw = self._raw_sq_diffs(X)
        if self.anisotropic:
            return raw @ (1.0 / (self.length_scale**2))
        return raw / (self.length_scale[0] ** 2)

    def _train_components(self, X: np.ndarray) -> tuple[np.ndarray | None, np.ndarray]:
        """(per-dim scaled sq diffs or None if isotropic, total D²)."""
        raw = self._raw_sq_diffs(X)
        if self.anisotropic:
            comps = raw * (1.0 / (self.length_scale**2))
            return comps, comps.sum(axis=2)
        return None, raw / (self.length_scale[0] ** 2)

    def _D2(self, X1: np.ndarray, X2: np.ndarray | None) -> np.ndarray:
        if X2 is None:
            return self._train_D2(X1)
        return _cdist_sq(X1, X2, self.length_scale)

    @property
    def theta(self) -> np.ndarray:
        return np.log(self.length_scale)

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self.length_scale = np.exp(np.asarray(value, dtype=float))

    @property
    def bounds(self) -> np.ndarray:
        return np.log(np.tile(np.array([self._bounds]), (len(self.length_scale), 1)))

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.ones(len(X))


class RBF(_StationaryKernel):
    """Radial basis function: ``exp(-d² / 2ℓ²)``; infinitely smooth.

    ``length_scale`` may be a vector for ARD (one ℓ per input dimension).
    """

    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None, eval_gradient: bool = False):
        if not eval_gradient:
            return np.exp(-0.5 * self._D2(X1, X2))
        _require_no_x2(X2)
        comps, D2 = self._train_components(X1)
        K = np.exp(-0.5 * D2)
        # ∂K/∂log ℓ_d = K · (Δ_d²/ℓ_d²); isotropic folds the sum into D².
        if comps is not None:
            dK = K[:, :, None] * comps
        else:
            dK = (K * D2)[:, :, None]
        return K, dK


class Matern(_StationaryKernel):
    """Matérn kernel with ν ∈ {0.5, 1.5, 2.5} (the closed-form cases).

    ν = 0.5 is the rough exponential kernel; 2.5 is the BO workhorse.
    """

    _SUPPORTED_NU = (0.5, 1.5, 2.5)

    def __init__(
        self,
        length_scale: float | np.ndarray = 1.0,
        nu: float = 2.5,
        bounds: tuple[float, float] = (1e-3, 1e3),
    ) -> None:
        super().__init__(length_scale, bounds)
        if nu not in self._SUPPORTED_NU:
            raise OptimizerError(f"nu must be one of {self._SUPPORTED_NU}, got {nu}")
        self.nu = float(nu)

    def _from_dist(self, d: np.ndarray) -> np.ndarray:
        if self.nu == 0.5:
            return np.exp(-d)
        if self.nu == 1.5:
            s = math.sqrt(3.0) * d
            return (1.0 + s) * np.exp(-s)
        s = math.sqrt(5.0) * d
        return (1.0 + s + s * s / 3.0) * np.exp(-s)

    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None, eval_gradient: bool = False):
        if not eval_gradient:
            return self._from_dist(np.sqrt(self._D2(X1, X2)))
        _require_no_x2(X2)
        comps, D2 = self._train_components(X1)
        d = np.sqrt(D2)
        K = self._from_dist(d)
        # Per-dimension factor g such that ∂K/∂log ℓ_d = g · (Δ_d²/ℓ_d²).
        if self.nu == 0.5:
            # g = e^{-d}/d, with the d→0 limit 0 (Δ_d = 0 there anyway).
            with np.errstate(divide="ignore", invalid="ignore"):
                g = np.where(d > 0.0, np.exp(-d) / np.where(d > 0.0, d, 1.0), 0.0)
        elif self.nu == 1.5:
            g = 3.0 * np.exp(-math.sqrt(3.0) * d)
        else:
            s = math.sqrt(5.0) * d
            g = (5.0 / 3.0) * (1.0 + s) * np.exp(-s)
        if comps is not None:
            dK = g[:, :, None] * comps
        else:
            dK = (g * D2)[:, :, None]
        return K, dK


class _CompositeKernel(Kernel):
    def __init__(self, k1: Kernel, k2: Kernel) -> None:
        self.k1 = k1
        self.k2 = k2

    def walk(self):
        yield self
        yield from self.k1.walk()
        yield from self.k2.walk()

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate([self.k1.theta, self.k2.theta])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        n1 = len(self.k1.theta)
        self.k1.theta = value[:n1]
        self.k2.theta = value[n1:]

    @property
    def bounds(self) -> np.ndarray:
        return np.vstack([self.k1.bounds, self.k2.bounds])


class Sum(_CompositeKernel):
    """K = K1 + K2 (e.g. signal kernel + white noise)."""

    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None, eval_gradient: bool = False):
        if not eval_gradient:
            return self.k1(X1, X2) + self.k2(X1, X2)
        _require_no_x2(X2)
        K1, d1 = self.k1(X1, eval_gradient=True)
        K2, d2 = self.k2(X1, eval_gradient=True)
        return K1 + K2, np.concatenate([d1, d2], axis=2)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.k1.diag(X) + self.k2.diag(X)


class Product(_CompositeKernel):
    """K = K1 ⊙ K2 (e.g. constant variance × RBF)."""

    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None, eval_gradient: bool = False):
        if not eval_gradient:
            return self.k1(X1, X2) * self.k2(X1, X2)
        _require_no_x2(X2)
        K1, d1 = self.k1(X1, eval_gradient=True)
        K2, d2 = self.k2(X1, eval_gradient=True)
        dK = np.concatenate([d1 * K2[:, :, None], K1[:, :, None] * d2], axis=2)
        return K1 * K2, dK

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.k1.diag(X) * self.k2.diag(X)
