"""Random-forest regression with predictive uncertainty (SMAC's surrogate).

"Random Forest: SMAC — learn f̂(x) with RF, use regression tree outputs to
estimate mean and variance" (slide 50). Trees split on encoded features, so
categorical knobs are handled natively without imposing an order — the
alternative-surrogate answer to discrete/hybrid spaces on slide 51.

Implemented from scratch on numpy: variance-reduction splits, bootstrap
bagging, and the SMAC-style uncertainty estimate (variance of tree means
plus mean of leaf variances).

Two tree builders share one flat node-array representation
(``feature``/``threshold``/``left``/``right``/``value``/``variance``):

* ``builder="array"`` (default) grows each tree breadth-first, searching a
  whole level's splits at once with presorted per-feature sweeps and
  segment prefix sums — no Python recursion on the fit hot path.
* ``builder="recursive"`` is the original per-node :class:`RegressionTree`,
  kept as the parity reference (same split criterion, stopping rules, and
  tie-breaks, so both builders produce the same trees on the same data).

The forest also supports a warm :meth:`~RandomForestRegressor.partial_fit`
(online bagging: appended rows enter each tree's bootstrap with Poisson(1)
multiplicity; leaf statistics absorb them immediately and only stale trees
regrow) and constant-liar *fantasies* for batch suggestion
(:meth:`~RandomForestRegressor.add_fantasy` /
:meth:`~RandomForestRegressor.clear_fantasies`).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

import numpy as np

from ..exceptions import NotFittedError, OptimizerError

__all__ = ["RegressionTree", "RandomForestRegressor", "ForestStats"]

# np.allclose defaults — the array builder replicates the recursive
# builder's constant-leaf test exactly.
_CONST_RTOL = 1e-5
_CONST_ATOL = 1e-8


@dataclass
class _Node:
    # Leaf fields
    value: float = 0.0
    variance: float = 0.0
    # Split fields (children None ⇒ leaf)
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """CART regression tree minimising within-node squared error."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        max_features: float | None = None,
        seed: int | None = None,
    ) -> None:
        if max_depth < 1:
            raise OptimizerError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise OptimizerError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        if max_features is not None and not 0.0 < max_features <= 1.0:
            raise OptimizerError(f"max_features must be in (0, 1], got {max_features}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = np.random.default_rng(seed)
        self._root: _Node | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y) or len(X) == 0:
            raise OptimizerError(f"bad training data: {X.shape}, {y.shape}")
        self._n_features = X.shape[1]
        self._root = self._build(X, y, depth=0)
        self._compile()
        return self

    def _compile(self) -> None:
        """Flatten the node tree into arrays for vectorized routing.

        ``feature == -1`` marks a leaf. ``left``/``right`` hold node indices,
        so prediction is a handful of fancy-indexing sweeps (one per tree
        level) instead of a Python walk per sample.
        """
        features: list[int] = []
        thresholds: list[float] = []
        lefts: list[int] = []
        rights: list[int] = []
        values: list[float] = []
        variances: list[float] = []

        def add(node: _Node) -> int:
            i = len(features)
            features.append(-1 if node.is_leaf else node.feature)
            thresholds.append(node.threshold)
            values.append(node.value)
            variances.append(node.variance)
            lefts.append(-1)
            rights.append(-1)
            if not node.is_leaf:
                lefts[i] = add(node.left)
                rights[i] = add(node.right)
            return i

        add(self._root)
        self._features = np.array(features, dtype=np.intp)
        self._thresholds = np.array(thresholds)
        self._lefts = np.array(lefts, dtype=np.intp)
        self._rights = np.array(rights, dtype=np.intp)
        self._values = np.array(values)
        self._variances = np.array(variances)

    def _route(self, X: np.ndarray) -> np.ndarray:
        """Leaf index for every row of X, routed level-by-level."""
        idx = np.zeros(len(X), dtype=np.intp)
        while True:
            f = self._features[idx]
            active = np.nonzero(f >= 0)[0]
            if len(active) == 0:
                return idx
            cur = idx[active]
            go_left = X[active, self._features[cur]] <= self._thresholds[cur]
            idx[active] = np.where(go_left, self._lefts[cur], self._rights[cur])

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()), variance=float(y.var()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf or np.allclose(y, y[0]):
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray) -> tuple[int, float] | None:
        n, d = X.shape
        features = np.arange(d)
        if self.max_features is not None:
            k = max(1, int(round(d * self.max_features)))
            features = self.rng.choice(d, size=k, replace=False)
        best: tuple[float, int, float] | None = None
        # Sequential (cumsum) totals, not np.sum's pairwise ones: the array
        # builder accumulates its per-node totals sequentially, and exact
        # SSE ties between features (same induced partition) must break the
        # same way in both builders for split parity to hold bit-for-bit.
        total_sq, total_sum = float(np.cumsum(y * y)[-1]), float(np.cumsum(y)[-1])
        for f in features:
            order = np.argsort(X[:, f], kind="stable")
            xs, ys = X[order, f], y[order]
            csum = np.cumsum(ys)
            csq = np.cumsum(ys * ys)
            # Candidate split after position i (1-based sizes).
            sizes = np.arange(1, n)
            valid = (xs[:-1] < xs[1:]) & (sizes >= self.min_samples_leaf) & (n - sizes >= self.min_samples_leaf)
            if not valid.any():
                continue
            left_sse = csq[:-1] - csum[:-1] ** 2 / sizes
            right_sum = total_sum - csum[:-1]
            right_sq = total_sq - csq[:-1]
            right_sse = right_sq - right_sum**2 / (n - sizes)
            sse = np.where(valid, left_sse + right_sse, np.inf)
            i = int(np.argmin(sse))
            if np.isfinite(sse[i]) and (best is None or sse[i] < best[0]):
                best = (float(sse[i]), int(f), float((xs[i] + xs[i + 1]) / 2.0))
        if best is None:
            return None
        return best[1], best[2]

    def predict(self, X: np.ndarray, return_var: bool = False):
        if self._root is None:
            raise NotFittedError("tree is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        idx = self._route(X)
        mean = self._values[idx]
        if not return_var:
            return mean
        return mean, self._variances[idx]


@dataclass
class _TreeArrays:
    """One tree flattened into parallel node arrays (``feature == -1`` ⇒ leaf)."""

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    value: np.ndarray
    variance: np.ndarray
    count: np.ndarray  # training rows per node (float for streaming updates)

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    def route(self, X: np.ndarray) -> np.ndarray:
        """Leaf index for every row of X, routed level-by-level."""
        idx = np.zeros(len(X), dtype=np.intp)
        while True:
            f = self.feature[idx]
            active = np.nonzero(f >= 0)[0]
            if len(active) == 0:
                return idx
            cur = idx[active]
            go_left = X[active, self.feature[cur]] <= self.threshold[cur]
            idx[active] = np.where(go_left, self.left[cur], self.right[cur])

    def absorb(self, X: np.ndarray, y: np.ndarray) -> None:
        """Stream new observations into leaf statistics without regrowing.

        Leaf mean/variance update via running (count, sum, sum-of-squares);
        the split structure is untouched, so the tree gradually goes stale
        until the forest regrows it from its full bootstrap.
        """
        leaves = self.route(X)
        s = self.value * self.count
        sq = (self.variance + self.value**2) * self.count
        cnt = self.count.copy()
        np.add.at(s, leaves, y)
        np.add.at(sq, leaves, y * y)
        np.add.at(cnt, leaves, 1.0)
        touched = np.zeros(self.n_nodes, dtype=bool)
        touched[leaves] = True
        denom = np.maximum(cnt, 1.0)
        self.value = np.where(touched, s / denom, self.value)
        self.variance = np.where(
            touched, np.maximum(sq / denom - (s / denom) ** 2, 0.0), self.variance
        )
        self.count = cnt


def _grow_tree_arrays(
    X: np.ndarray,
    y: np.ndarray,
    max_depth: int,
    min_samples_leaf: int,
    max_features: float | None,
    rng: np.random.Generator,
) -> _TreeArrays:
    """Grow one CART tree breadth-first, directly into flat node arrays.

    Split criterion, stopping rules, and tie-breaks replicate
    :meth:`RegressionTree._build` (first feature / first position wins on
    ties, midpoint thresholds, ``np.allclose`` constant-leaf test), but an
    entire level is searched at once: for each feature the level's rows are
    presorted with one ``lexsort`` keyed by (node, value), and every node's
    candidate SSEs come from segment prefix sums over that ordering.
    """
    n, d = X.shape
    n_sub = None
    if max_features is not None:
        n_sub = max(1, int(round(d * max_features)))
        if n_sub >= d:
            n_sub = None

    chunks: list[tuple[np.ndarray, ...]] = []
    rows = np.arange(n, dtype=np.intp)
    nid = np.zeros(n, dtype=np.intp)  # local node index within the level
    base = 0  # global id of the level's first node (BFS ids are contiguous)
    m = 1
    depth = 0

    while len(rows):
        order = np.argsort(nid, kind="stable")
        rows, nid = rows[order], nid[order]
        counts = np.bincount(nid, minlength=m)
        starts = np.zeros(m, dtype=np.intp)
        np.cumsum(counts[:-1], out=starts[1:])

        ys = y[rows]
        means = np.add.reduceat(ys, starts) / counts
        dev = ys - means[nid]
        variances = np.add.reduceat(dev * dev, starts) / counts

        lv_feature = np.full(m, -1, dtype=np.intp)
        lv_threshold = np.zeros(m)
        lv_left = np.full(m, -1, dtype=np.intp)
        lv_right = np.full(m, -1, dtype=np.intp)

        # Constant-leaf test, matching allclose(y, y[0]) bit-for-bit:
        # |yᵢ−y₀| ≤ atol + rtol·|y₀| ⇔ |yᵢ−y₀| − (atol + rtol·|y₀|) ≤ 0
        # (IEEE subtraction preserves the comparison's sign exactly).
        y0 = ys[starts]
        thresh = _CONST_ATOL + _CONST_RTOL * np.abs(y0[nid])
        excess = np.abs(ys - y0[nid]) - thresh
        allconst = np.maximum.reduceat(excess, starts) <= 0.0
        trym = ~((depth >= max_depth) | (counts < 2 * min_samples_leaf) | allconst)

        if not trym.any():
            chunks.append((lv_feature, lv_threshold, lv_left, lv_right, means, variances, counts))
            break

        # Compact the level to the nodes still looking for a split.
        t_idx = np.nonzero(trym)[0]
        mt = len(t_idx)
        remap = np.full(m, -1, dtype=np.intp)
        remap[t_idx] = np.arange(mt)
        rmask = trym[nid]
        rows_t = rows[rmask]
        nid_t = remap[nid[rmask]]
        cnt_t = counts[t_idx]
        starts_t = np.zeros(mt, dtype=np.intp)
        np.cumsum(cnt_t[:-1], out=starts_t[1:])

        allow = None
        if n_sub is not None:
            # Per-node feature subset, drawn as the n_sub smallest of d
            # uniforms — one vectorized draw for the whole level.
            r = rng.random((mt, d))
            pick = np.argpartition(r, n_sub - 1, axis=1)[:, :n_sub]
            allow = np.zeros((mt, d), dtype=bool)
            np.put_along_axis(allow, pick, True, axis=1)

        R = len(rows_t)
        pos = np.arange(R)
        seg = nid_t  # ascending; lexsort below keeps segments in place
        col = pos - starts_t[seg]  # position within the segment
        lsize = col + 1
        rsize = cnt_t[seg] - lsize
        cmax = int(cnt_t.max())
        # Per-node *local* prefix sums via one padded (node × position)
        # cumsum: each row accumulates sequentially from its own segment
        # start, bit-identical to the per-node cumsum the recursive builder
        # computes — so exact SSE ties between features that induce the
        # same partition (common at small nodes) resolve to the first
        # feature in both builders. A global cumsum minus segment offsets
        # would perturb those ties and flip splits. Stale cells from the
        # previous feature sit past each segment's end and are never read.
        P = np.empty((mt, cmax))
        rowsel = np.arange(mt)
        # Node totals accumulate over *node order* (not per-feature sorted
        # order), shared by every feature — the same single sequential sum
        # the recursive builder takes before its feature loop. Per-feature
        # totals would sum in a different order, drift by an ulp, and flip
        # exact SSE ties.
        ysn = y[rows_t]
        P[seg, col] = ysn
        tot_sum = np.cumsum(P, axis=1)[rowsel, cnt_t - 1]
        P[seg, col] = ysn * ysn
        tot_sq = np.cumsum(P, axis=1)[rowsel, cnt_t - 1]
        best_sse = np.full((mt, d), np.inf)
        best_thr = np.zeros((mt, d))
        for f in range(d):
            xf = X[rows_t, f]
            order_f = np.lexsort((xf, nid_t))
            xs = xf[order_f]
            ysf = y[rows_t[order_f]]
            P[seg, col] = ysf
            csumM = np.cumsum(P, axis=1)
            left_sum = csumM[seg, col]
            P[seg, col] = ysf * ysf
            csqM = np.cumsum(P, axis=1)
            left_sq = csqM[seg, col]
            valid = np.zeros(R, dtype=bool)
            if R > 1:
                valid[:-1] = (seg[:-1] == seg[1:]) & (xs[:-1] < xs[1:])
            valid &= (lsize >= min_samples_leaf) & (rsize >= min_samples_leaf)
            with np.errstate(invalid="ignore", divide="ignore"):
                lsse = left_sq - left_sum**2 / lsize
                rsum = tot_sum[seg] - left_sum
                rsq = tot_sq[seg] - left_sq
                rsse = rsq - rsum**2 / np.maximum(rsize, 1)
            sse = np.where(valid, lsse + rsse, np.inf)
            seg_min = np.minimum.reduceat(sse, starts_t)
            # First position attaining each segment's min (argmin semantics).
            hit = np.where(sse == seg_min[seg], pos, R)
            arg = np.minimum.reduceat(hit, starts_t)
            ok = np.isfinite(seg_min)
            best_sse[:, f] = np.where(ok, seg_min, np.inf)
            safe = np.where(ok, arg, 0)
            best_thr[:, f] = (xs[safe] + xs[np.minimum(safe + 1, R - 1)]) / 2.0

        if allow is not None:
            best_sse = np.where(allow, best_sse, np.inf)
        fbest = np.argmin(best_sse, axis=1)  # first feature wins ties
        can_split = np.isfinite(best_sse[np.arange(mt), fbest])
        split_t = np.nonzero(can_split)[0]
        ns = len(split_t)

        if ns:
            feat_sel = fbest[split_t]
            thr_sel = best_thr[split_t, feat_sel]
            local = t_idx[split_t]
            left_ids = base + m + 2 * np.arange(ns)
            lv_feature[local] = feat_sel
            lv_threshold[local] = thr_sel
            lv_left[local] = left_ids
            lv_right[local] = left_ids + 1
        chunks.append((lv_feature, lv_threshold, lv_left, lv_right, means, variances, counts))
        if ns == 0:
            break

        # Route the split nodes' rows to their children for the next level.
        remap2 = np.full(mt, -1, dtype=np.intp)
        remap2[split_t] = np.arange(ns)
        k_of = remap2[nid_t]
        keep = k_of >= 0
        rows_n = rows_t[keep]
        k_of = k_of[keep]
        go_left = X[rows_n, feat_sel[k_of]] <= thr_sel[k_of]
        rows = rows_n
        nid = 2 * k_of + np.where(go_left, 0, 1)
        base += m
        m = 2 * ns
        depth += 1

    return _TreeArrays(
        feature=np.concatenate([c[0] for c in chunks]),
        threshold=np.concatenate([c[1] for c in chunks]),
        left=np.concatenate([c[2] for c in chunks]),
        right=np.concatenate([c[3] for c in chunks]),
        value=np.concatenate([c[4] for c in chunks]),
        variance=np.concatenate([c[5] for c in chunks]),
        count=np.concatenate([c[6] for c in chunks]).astype(float),
    )


def _arrays_from_recursive(tree: RegressionTree, X: np.ndarray) -> _TreeArrays:
    """Flatten a fitted recursive tree, filling leaf counts by routing its
    own training rows (internal-node counts stay 0 — only leaves stream)."""
    count = np.zeros(len(tree._features))
    np.add.at(count, tree._route(X), 1.0)
    return _TreeArrays(
        feature=tree._features.copy(),
        threshold=tree._thresholds.copy(),
        left=tree._lefts.copy(),
        right=tree._rights.copy(),
        value=tree._values.copy(),
        variance=tree._variances.copy(),
        count=count,
    )


@dataclass
class ForestStats:
    """Fit/predict counters for the forest surrogate (mirrors the GP's
    ``SurrogateStats``); exported as telemetry gauges via
    ``surrogate_stats()``."""

    n_fits: int = 0
    n_partial_fits: int = 0
    trees_grown: int = 0
    fit_ms: float = 0.0
    predict_ms: float = 0.0
    n_predicts: int = 0
    n_trees: int = 0
    n_nodes: int = 0
    pending_fantasies: int = 0
    fantasies_total: int = 0

    def to_dict(self) -> dict[str, float]:
        return {k: float(v) for k, v in asdict(self).items()}


class RandomForestRegressor:
    """Bagged regression trees with SMAC-style mean/variance prediction.

    Parameters
    ----------
    builder:
        ``"array"`` (level-wise vectorized growth, the default) or
        ``"recursive"`` (the original per-node builder, kept for parity
        benchmarks). Both produce the same splits on the same bootstrap.
    stale_fraction:
        A tree regrows during :meth:`partial_fit` once its pending bootstrap
        appends exceed this fraction of its bootstrap size; one tree per
        call regrows regardless (round-robin) so structure tracks the data.
    """

    def __init__(
        self,
        n_trees: int = 24,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        max_features: float = 0.8,
        seed: int | None = None,
        builder: str = "array",
        stale_fraction: float = 0.25,
    ) -> None:
        if n_trees < 1:
            raise OptimizerError(f"n_trees must be >= 1, got {n_trees}")
        if builder not in ("array", "recursive"):
            raise OptimizerError(f"builder must be 'array' or 'recursive', got {builder!r}")
        if not 0.0 < stale_fraction <= 1.0:
            raise OptimizerError(f"stale_fraction must be in (0, 1], got {stale_fraction}")
        self.n_trees = int(n_trees)
        self.builder = builder
        self.stale_fraction = float(stale_fraction)
        self.rng = np.random.default_rng(seed)
        self._tree_params = dict(
            max_depth=max_depth, min_samples_leaf=min_samples_leaf, max_features=max_features
        )
        self._trees: list[_TreeArrays] = []
        self._boot: list[np.ndarray] = []
        self._tree_seeds: list[int] = []
        self._pending: list[int] = []
        self._regrow_cursor = 0
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._fantasy_backup: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self.stats = ForestStats()

    @property
    def is_fitted(self) -> bool:
        return bool(self._trees)

    def stats_dict(self) -> dict[str, float]:
        return self.stats.to_dict()

    def _grow(self, idx: np.ndarray, seed: int) -> _TreeArrays:
        Xb, yb = self._X[idx], self._y[idx]
        if self.builder == "recursive":
            tree = RegressionTree(seed=seed, **self._tree_params)
            tree.fit(Xb, yb)
            return _arrays_from_recursive(tree, Xb)
        return _grow_tree_arrays(Xb, yb, rng=np.random.default_rng(seed), **self._tree_params)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y) or len(X) == 0:
            raise OptimizerError(f"bad training data: {X.shape}, {y.shape}")
        t0 = time.perf_counter()
        self._fantasy_backup = None
        self.stats.pending_fantasies = 0
        self._X, self._y = X.copy(), y.copy()
        self._trees, self._boot, self._tree_seeds, self._pending = [], [], [], []
        n = len(X)
        for _ in range(self.n_trees):
            idx = self.rng.integers(0, n, size=n)  # bootstrap
            seed = int(self.rng.integers(2**31))
            self._trees.append(self._grow(idx, seed))
            self._boot.append(idx)
            self._tree_seeds.append(seed)
            self._pending.append(0)
        self._compile()
        self.stats.n_fits += 1
        self.stats.trees_grown += self.n_trees
        self.stats.fit_ms += (time.perf_counter() - t0) * 1e3
        return self

    def partial_fit(self, X_new: np.ndarray, y_new: np.ndarray) -> "RandomForestRegressor":
        """Warm update with appended observations (online bagging).

        Each new row enters each tree's bootstrap with Poisson(1)
        multiplicity (Oza & Russell). Trees absorb their copies into leaf
        statistics immediately; a tree only regrows from its full bootstrap
        once ``stale_fraction`` of it is pending (plus one round-robin
        regrow per call), so the per-call cost is a small, bounded slice of
        a full refit.
        """
        if not self.is_fitted:
            raise NotFittedError("partial_fit needs a fitted forest; call fit first")
        X_new = np.atleast_2d(np.asarray(X_new, dtype=float))
        y_new = np.asarray(y_new, dtype=float).ravel()
        if len(X_new) != len(y_new) or len(X_new) == 0:
            raise OptimizerError(f"bad update data: {X_new.shape}, {y_new.shape}")
        if X_new.shape[1] != self._X.shape[1]:
            raise OptimizerError(
                f"feature-count mismatch: fitted {self._X.shape[1]}, got {X_new.shape[1]}"
            )
        t0 = time.perf_counter()
        self._fantasy_backup = None
        self.stats.pending_fantasies = 0
        start = len(self._X)
        self._X = np.vstack([self._X, X_new])
        self._y = np.concatenate([self._y, y_new])
        new_ids = np.arange(start, len(self._X))

        extras: list[np.ndarray] = []
        for t in range(self.n_trees):
            reps = self.rng.poisson(1.0, size=len(new_ids))
            extra = np.repeat(new_ids, reps)
            extras.append(extra)
            self._boot[t] = np.concatenate([self._boot[t], extra])
            self._pending[t] += len(extra)

        regrow = {
            t
            for t in range(self.n_trees)
            if self._pending[t] >= self.stale_fraction * len(self._boot[t])
        }
        cursor = self._regrow_cursor % self.n_trees
        self._regrow_cursor += 1
        if self._pending[cursor] > 0:
            regrow.add(cursor)
        for t in range(self.n_trees):
            if t in regrow:
                self._trees[t] = self._grow(self._boot[t], self._tree_seeds[t])
                self._pending[t] = 0
            elif len(extras[t]):
                self._trees[t].absorb(self._X[extras[t]], self._y[extras[t]])
        self._compile()
        self.stats.n_partial_fits += 1
        self.stats.trees_grown += len(regrow)
        self.stats.fit_ms += (time.perf_counter() - t0) * 1e3
        return self

    def _compile(self) -> None:
        """Concatenate all trees' node arrays so one routing sweep predicts
        the whole ensemble — (n_trees × n_samples) states advance together,
        one vectorized step per tree level."""
        offsets = np.cumsum([0] + [t.n_nodes for t in self._trees[:-1]])
        self._roots = np.asarray(offsets, dtype=np.intp)
        self._features = np.concatenate([t.feature for t in self._trees])
        self._thresholds = np.concatenate([t.threshold for t in self._trees])
        # Child indices shift by each tree's offset; leaves keep -1.
        lefts, rights = [], []
        for t, off in zip(self._trees, offsets):
            internal = t.feature >= 0
            lefts.append(np.where(internal, t.left + off, -1))
            rights.append(np.where(internal, t.right + off, -1))
        self._lefts = np.concatenate(lefts)
        self._rights = np.concatenate(rights)
        self._values = np.concatenate([t.value for t in self._trees])
        self._variances = np.concatenate([t.variance for t in self._trees])
        self._counts = np.concatenate([t.count for t in self._trees])
        self.stats.n_trees = len(self._trees)
        self.stats.n_nodes = len(self._features)

    def _route_compiled(self, X: np.ndarray) -> np.ndarray:
        """Leaf index in the concatenated arrays for every (tree, row) pair."""
        n = len(X)
        idx = np.repeat(self._roots, n)
        col = np.tile(np.arange(n), self.n_trees)
        while True:
            f = self._features[idx]
            active = np.nonzero(f >= 0)[0]
            if len(active) == 0:
                return idx
            cur = idx[active]
            go_left = X[col[active], self._features[cur]] <= self._thresholds[cur]
            idx[active] = np.where(go_left, self._lefts[cur], self._rights[cur])

    # -- constant-liar fantasies ---------------------------------------------
    def add_fantasy(self, x: np.ndarray, y_lie: float) -> None:
        """Condition predictions on a pretend observation without refitting.

        The lie enters every tree's routed leaf statistics in the *compiled*
        arrays only — per-tree arrays are untouched, so
        :meth:`clear_fantasies` (or any recompile) restores the honest
        posterior exactly. Used by batch suggestion to push later picks away
        from already-chosen points.
        """
        if not self.is_fitted:
            raise NotFittedError("add_fantasy needs a fitted forest")
        if self._fantasy_backup is None:
            self._fantasy_backup = (
                self._values.copy(),
                self._variances.copy(),
                self._counts.copy(),
            )
        x = np.atleast_2d(np.asarray(x, dtype=float))
        leaves = self._route_compiled(x)
        y_lie = float(y_lie)
        s = self._values * self._counts
        sq = (self._variances + self._values**2) * self._counts
        np.add.at(s, leaves, y_lie)
        np.add.at(sq, leaves, y_lie**2)
        np.add.at(self._counts, leaves, 1.0)
        touched = np.unique(leaves)
        cnt = self._counts[touched]
        self._values[touched] = s[touched] / cnt
        self._variances[touched] = np.maximum(
            sq[touched] / cnt - (s[touched] / cnt) ** 2, 0.0
        )
        self.stats.pending_fantasies += 1
        self.stats.fantasies_total += 1

    def clear_fantasies(self) -> None:
        """Discard all pending fantasies, restoring the honest posterior."""
        if self._fantasy_backup is not None:
            self._values, self._variances, self._counts = self._fantasy_backup
            self._fantasy_backup = None
        self.stats.pending_fantasies = 0

    def route_leaves(self, X: np.ndarray) -> np.ndarray:
        """Leaf indices for ``X`` — the routing half of :meth:`predict`.

        Routing depends only on split structure, never on leaf statistics,
        so a cached result stays valid across :meth:`add_fantasy` /
        :meth:`clear_fantasies`. Batch suggestion routes its candidate pool
        once and rescores each pick from the cached leaves.
        """
        if not self._trees:
            raise NotFittedError("forest is not fitted")
        return self._route_compiled(np.atleast_2d(np.asarray(X, dtype=float)))

    def predict_from_leaves(self, leaves: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Mean/std from cached :meth:`route_leaves` output (current leaf
        statistics, including any pending fantasies)."""
        n = len(leaves) // self.n_trees
        means = self._values[leaves].reshape(self.n_trees, n)
        mean = means.mean(axis=0)
        # Law of total variance across the ensemble.
        variances = self._variances[leaves].reshape(self.n_trees, n)
        var = means.var(axis=0) + variances.mean(axis=0)
        return mean, np.sqrt(np.maximum(var, 1e-12))

    def predict(self, X: np.ndarray, return_std: bool = False):
        if not self._trees:
            raise NotFittedError("forest is not fitted")
        t0 = time.perf_counter()
        X = np.atleast_2d(np.asarray(X, dtype=float))
        n = len(X)
        idx = self._route_compiled(X)
        means = self._values[idx].reshape(self.n_trees, n)
        mean = means.mean(axis=0)
        if not return_std:
            self.stats.n_predicts += 1
            self.stats.predict_ms += (time.perf_counter() - t0) * 1e3
            return mean
        # Law of total variance across the ensemble.
        variances = self._variances[idx].reshape(self.n_trees, n)
        var = means.var(axis=0) + variances.mean(axis=0)
        self.stats.n_predicts += 1
        self.stats.predict_ms += (time.perf_counter() - t0) * 1e3
        return mean, np.sqrt(np.maximum(var, 1e-12))
