"""Random-forest regression with predictive uncertainty (SMAC's surrogate).

"Random Forest: SMAC — learn f̂(x) with RF, use regression tree outputs to
estimate mean and variance" (slide 50). Trees split on encoded features, so
categorical knobs are handled natively without imposing an order — the
alternative-surrogate answer to discrete/hybrid spaces on slide 51.

Implemented from scratch on numpy: variance-reduction splits, bootstrap
bagging, and the SMAC-style uncertainty estimate (variance of tree means
plus mean of leaf variances).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import NotFittedError, OptimizerError

__all__ = ["RegressionTree", "RandomForestRegressor"]


@dataclass
class _Node:
    # Leaf fields
    value: float = 0.0
    variance: float = 0.0
    # Split fields (children None ⇒ leaf)
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """CART regression tree minimising within-node squared error."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        max_features: float | None = None,
        seed: int | None = None,
    ) -> None:
        if max_depth < 1:
            raise OptimizerError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise OptimizerError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        if max_features is not None and not 0.0 < max_features <= 1.0:
            raise OptimizerError(f"max_features must be in (0, 1], got {max_features}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = np.random.default_rng(seed)
        self._root: _Node | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y) or len(X) == 0:
            raise OptimizerError(f"bad training data: {X.shape}, {y.shape}")
        self._n_features = X.shape[1]
        self._root = self._build(X, y, depth=0)
        self._compile()
        return self

    def _compile(self) -> None:
        """Flatten the node tree into arrays for vectorized routing.

        ``feature == -1`` marks a leaf. ``left``/``right`` hold node indices,
        so prediction is a handful of fancy-indexing sweeps (one per tree
        level) instead of a Python walk per sample.
        """
        features: list[int] = []
        thresholds: list[float] = []
        lefts: list[int] = []
        rights: list[int] = []
        values: list[float] = []
        variances: list[float] = []

        def add(node: _Node) -> int:
            i = len(features)
            features.append(-1 if node.is_leaf else node.feature)
            thresholds.append(node.threshold)
            values.append(node.value)
            variances.append(node.variance)
            lefts.append(-1)
            rights.append(-1)
            if not node.is_leaf:
                lefts[i] = add(node.left)
                rights[i] = add(node.right)
            return i

        add(self._root)
        self._features = np.array(features, dtype=np.intp)
        self._thresholds = np.array(thresholds)
        self._lefts = np.array(lefts, dtype=np.intp)
        self._rights = np.array(rights, dtype=np.intp)
        self._values = np.array(values)
        self._variances = np.array(variances)

    def _route(self, X: np.ndarray) -> np.ndarray:
        """Leaf index for every row of X, routed level-by-level."""
        idx = np.zeros(len(X), dtype=np.intp)
        while True:
            f = self._features[idx]
            active = np.nonzero(f >= 0)[0]
            if len(active) == 0:
                return idx
            cur = idx[active]
            go_left = X[active, self._features[cur]] <= self._thresholds[cur]
            idx[active] = np.where(go_left, self._lefts[cur], self._rights[cur])

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()), variance=float(y.var()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf or np.allclose(y, y[0]):
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray) -> tuple[int, float] | None:
        n, d = X.shape
        features = np.arange(d)
        if self.max_features is not None:
            k = max(1, int(round(d * self.max_features)))
            features = self.rng.choice(d, size=k, replace=False)
        best: tuple[float, int, float] | None = None
        total_sq, total_sum = float((y * y).sum()), float(y.sum())
        for f in features:
            order = np.argsort(X[:, f], kind="stable")
            xs, ys = X[order, f], y[order]
            csum = np.cumsum(ys)
            csq = np.cumsum(ys * ys)
            # Candidate split after position i (1-based sizes).
            sizes = np.arange(1, n)
            valid = (xs[:-1] < xs[1:]) & (sizes >= self.min_samples_leaf) & (n - sizes >= self.min_samples_leaf)
            if not valid.any():
                continue
            left_sse = csq[:-1] - csum[:-1] ** 2 / sizes
            right_sum = total_sum - csum[:-1]
            right_sq = total_sq - csq[:-1]
            right_sse = right_sq - right_sum**2 / (n - sizes)
            sse = np.where(valid, left_sse + right_sse, np.inf)
            i = int(np.argmin(sse))
            if np.isfinite(sse[i]) and (best is None or sse[i] < best[0]):
                best = (float(sse[i]), int(f), float((xs[i] + xs[i + 1]) / 2.0))
        if best is None:
            return None
        return best[1], best[2]

    def predict(self, X: np.ndarray, return_var: bool = False):
        if self._root is None:
            raise NotFittedError("tree is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        idx = self._route(X)
        mean = self._values[idx]
        if not return_var:
            return mean
        return mean, self._variances[idx]


class RandomForestRegressor:
    """Bagged regression trees with SMAC-style mean/variance prediction."""

    def __init__(
        self,
        n_trees: int = 24,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        max_features: float = 0.8,
        seed: int | None = None,
    ) -> None:
        if n_trees < 1:
            raise OptimizerError(f"n_trees must be >= 1, got {n_trees}")
        self.n_trees = int(n_trees)
        self.rng = np.random.default_rng(seed)
        self._tree_params = dict(
            max_depth=max_depth, min_samples_leaf=min_samples_leaf, max_features=max_features
        )
        self._trees: list[RegressionTree] = []

    @property
    def is_fitted(self) -> bool:
        return bool(self._trees)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y) or len(X) == 0:
            raise OptimizerError(f"bad training data: {X.shape}, {y.shape}")
        self._trees = []
        n = len(X)
        for _ in range(self.n_trees):
            idx = self.rng.integers(0, n, size=n)  # bootstrap
            tree = RegressionTree(seed=int(self.rng.integers(2**31)), **self._tree_params)
            tree.fit(X[idx], y[idx])
            self._trees.append(tree)
        self._compile()
        return self

    def _compile(self) -> None:
        """Concatenate all trees' node arrays so one routing sweep predicts
        the whole ensemble — (n_trees × n_samples) states advance together,
        one vectorized step per tree level."""
        offsets = np.cumsum([0] + [len(t._features) for t in self._trees[:-1]])
        self._roots = np.asarray(offsets, dtype=np.intp)
        self._features = np.concatenate([t._features for t in self._trees])
        self._thresholds = np.concatenate([t._thresholds for t in self._trees])
        # Child indices shift by each tree's offset; leaves keep -1.
        lefts, rights = [], []
        for t, off in zip(self._trees, offsets):
            internal = t._features >= 0
            lefts.append(np.where(internal, t._lefts + off, -1))
            rights.append(np.where(internal, t._rights + off, -1))
        self._lefts = np.concatenate(lefts)
        self._rights = np.concatenate(rights)
        self._values = np.concatenate([t._values for t in self._trees])
        self._variances = np.concatenate([t._variances for t in self._trees])

    def predict(self, X: np.ndarray, return_std: bool = False):
        if not self._trees:
            raise NotFittedError("forest is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        n = len(X)
        idx = np.repeat(self._roots, n)
        col = np.tile(np.arange(n), self.n_trees)
        while True:
            f = self._features[idx]
            active = np.nonzero(f >= 0)[0]
            if len(active) == 0:
                break
            cur = idx[active]
            go_left = X[col[active], self._features[cur]] <= self._thresholds[cur]
            idx[active] = np.where(go_left, self._lefts[cur], self._rights[cur])
        means = self._values[idx].reshape(self.n_trees, n)
        mean = means.mean(axis=0)
        if not return_std:
            return mean
        # Law of total variance across the ensemble.
        variances = self._variances[idx].reshape(self.n_trees, n)
        var = means.var(axis=0) + variances.mean(axis=0)
        return mean, np.sqrt(np.maximum(var, 1e-12))
