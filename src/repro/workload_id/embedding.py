"""Workload embeddings (slide 89).

"Map each workload to a multi-dimensional vector … compact representation
of heterogeneous features, comparison of not-exactly-alike workloads,
clustering, input to other ML models."

The embedder standardises heterogeneous feature blocks (telemetry,
query-log) and projects with PCA (from-scratch SVD) or a random projection.
Multi-modal fusion — slide 93's "combine time series and graph data" —
is concatenation before projection.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import NotFittedError, ReproError
from ..sysim.telemetry import TelemetryTrace
from ..workload_id.features import (
    query_log_features,
    synthetic_query_log,
    telemetry_features,
)
from ..workloads import Workload

__all__ = ["PCAEmbedding", "RandomProjectionEmbedding", "WorkloadEmbedder"]


class PCAEmbedding:
    """Principal-component projection via SVD, with standardisation."""

    def __init__(self, n_components: int = 4) -> None:
        if n_components < 1:
            raise ReproError(f"n_components must be >= 1, got {n_components}")
        self.n_components = int(n_components)
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self._components: np.ndarray | None = None
        self.explained_variance_ratio: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "PCAEmbedding":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if len(X) < 2:
            raise ReproError("PCA needs at least 2 samples")
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        # Near-constant features must not explode at transform time, so the
        # threshold is absolute, not just "non-zero".
        self._std = np.where(std > 1e-9, std, 1.0)
        Z = (X - self._mean) / self._std
        _, s, vt = np.linalg.svd(Z, full_matrices=False)
        k = min(self.n_components, vt.shape[0])
        self._components = vt[:k]
        var = s**2
        self.explained_variance_ratio = var[:k] / var.sum() if var.sum() > 0 else np.zeros(k)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self._components is None:
            raise NotFittedError("fit the embedding first")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return ((X - self._mean) / self._std) @ self._components.T

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class RandomProjectionEmbedding:
    """Gaussian random projection (Johnson–Lindenstrauss style)."""

    def __init__(self, n_components: int = 4, seed: int | None = None) -> None:
        if n_components < 1:
            raise ReproError(f"n_components must be >= 1, got {n_components}")
        self.n_components = int(n_components)
        self.rng = np.random.default_rng(seed)
        self._matrix: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "RandomProjectionEmbedding":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        self._std = np.where(std > 1e-9, std, 1.0)
        self._matrix = self.rng.standard_normal((X.shape[1], self.n_components))
        self._matrix /= np.sqrt(self.n_components)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self._matrix is None:
            raise NotFittedError("fit the embedding first")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return ((X - self._mean) / self._std) @ self._matrix

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class WorkloadEmbedder:
    """End-to-end embedder: workload → raw features → embedding vector.

    Parameters
    ----------
    use_telemetry, use_query_log:
        Which modalities to extract (multi-modal when both).
    n_components:
        Embedding dimensionality.
    n_steps:
        Telemetry length per workload observation.
    noise:
        Telemetry noise level (the realism knob).
    """

    def __init__(
        self,
        use_telemetry: bool = True,
        use_query_log: bool = True,
        n_components: int = 4,
        n_steps: int = 128,
        noise: float = 0.04,
        seed: int | None = None,
    ) -> None:
        if not (use_telemetry or use_query_log):
            raise ReproError("enable at least one modality")
        self.use_telemetry = use_telemetry
        self.use_query_log = use_query_log
        self.n_steps = int(n_steps)
        self.noise = float(noise)
        self.rng = np.random.default_rng(seed)
        self.projection = PCAEmbedding(n_components)
        self._fitted = False

    def raw_features(self, workload: Workload) -> np.ndarray:
        """One observation of the workload's features (stochastic)."""
        parts = []
        if self.use_telemetry:
            trace = self._observe_telemetry(workload)
            parts.append(telemetry_features(trace))
        if self.use_query_log:
            log = synthetic_query_log(workload, rng=self.rng)
            parts.append(query_log_features(log))
        return np.concatenate(parts)

    def _observe_telemetry(self, workload: Workload) -> TelemetryTrace:
        from ..sysim.telemetry import generate_telemetry

        return generate_telemetry(workload, n_steps=self.n_steps, noise=self.noise, rng=self.rng)

    def fit(self, workloads: list[Workload], observations_per_workload: int = 3) -> "WorkloadEmbedder":
        X = np.stack(
            [self.raw_features(w) for w in workloads for _ in range(observations_per_workload)]
        )
        self.projection.fit(X)
        self._fitted = True
        return self

    def embed(self, workload: Workload) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("fit the embedder on a workload corpus first")
        return self.projection.transform(self.raw_features(workload)[None, :])[0]

    def embed_many(self, workloads: list[Workload]) -> np.ndarray:
        return np.stack([self.embed(w) for w in workloads])
