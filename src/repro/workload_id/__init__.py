"""Workload identification: features, embeddings, similarity, shift
detection, synthetic benchmark generation."""

from .embedding import PCAEmbedding, RandomProjectionEmbedding, WorkloadEmbedder
from .forecasting import SeasonalForecaster
from .features import (
    QUERY_FEATURE_NAMES,
    TELEMETRY_FEATURE_NAMES,
    QueryRecord,
    query_log_features,
    synthetic_query_log,
    telemetry_features,
)
from .shift_detection import PageHinkleyDetector, WindowShiftDetector
from .similarity import (
    clustering_accuracy,
    cosine_similarity,
    euclidean_distance,
    kmeans,
    knn_indices,
    silhouette_score,
)
from .synthesis import blend_mixture, mixture_weights, synthesize_benchmark

__all__ = [
    "PCAEmbedding",
    "RandomProjectionEmbedding",
    "WorkloadEmbedder",
    "QUERY_FEATURE_NAMES",
    "TELEMETRY_FEATURE_NAMES",
    "QueryRecord",
    "query_log_features",
    "synthetic_query_log",
    "telemetry_features",
    "SeasonalForecaster",
    "PageHinkleyDetector",
    "WindowShiftDetector",
    "clustering_accuracy",
    "cosine_similarity",
    "euclidean_distance",
    "kmeans",
    "knn_indices",
    "silhouette_score",
    "blend_mixture",
    "mixture_weights",
    "synthesize_benchmark",
]
