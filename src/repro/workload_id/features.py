"""Feature extraction from the data sources slide 90 lists.

* **Telemetry (time series)** — per-channel summary statistics, temporal
  structure (lag autocorrelation), and spectral shape. "Easy to collect;
  noisy!"
* **Query logs (graph-ish)** — a synthetic query log generator consistent
  with a workload's mix, and histogram/cost features over it. "Captures
  most of the information about the workload (but not all!)"
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ReproError
from ..sysim.telemetry import TELEMETRY_CHANNELS, TelemetryTrace
from ..workloads import Workload

__all__ = [
    "telemetry_features",
    "TELEMETRY_FEATURE_NAMES",
    "QueryRecord",
    "synthetic_query_log",
    "query_log_features",
    "QUERY_FEATURE_NAMES",
]


def _autocorr(x: np.ndarray, lag: int) -> float:
    if len(x) <= lag or x.std() == 0:
        return 0.0
    a = x[:-lag] - x.mean()
    b = x[lag:] - x.mean()
    return float((a * b).mean() / (x.var() + 1e-12))


def _dominant_frequency(x: np.ndarray) -> float:
    """Index (normalised) of the strongest non-DC Fourier component."""
    if len(x) < 8 or x.std() == 0:
        return 0.0
    spectrum = np.abs(np.fft.rfft(x - x.mean()))
    if len(spectrum) <= 1:
        return 0.0
    peak = int(np.argmax(spectrum[1:])) + 1
    return peak / len(spectrum)


#: Feature names produced per telemetry channel.
_PER_CHANNEL = ("mean", "std", "p95", "autocorr1", "dom_freq")
TELEMETRY_FEATURE_NAMES = tuple(
    f"{ch}_{f}" for ch in TELEMETRY_CHANNELS for f in _PER_CHANNEL
)


def telemetry_features(trace: TelemetryTrace) -> np.ndarray:
    """Fixed-width feature vector from a telemetry trace."""
    rows = []
    for i in range(trace.data.shape[1]):
        x = trace.data[:, i]
        rows.extend(
            [
                float(x.mean()),
                float(x.std()),
                float(np.percentile(x, 95)),
                _autocorr(x, 1),
                _dominant_frequency(x),
            ]
        )
    return np.array(rows)


@dataclass(frozen=True)
class QueryRecord:
    """One entry of a (synthetic) query log."""

    kind: str  # point_select | range_scan | insert | update
    tables: int
    est_cost: float


_QUERY_KINDS = ("point_select", "range_scan", "insert", "update")


def synthetic_query_log(
    workload: Workload,
    n_queries: int = 500,
    rng: np.random.Generator | None = None,
) -> list[QueryRecord]:
    """Sample a query log consistent with the workload's operation mix.

    Stands in for the production query logs slide 90 describes (real ones
    are sensitive; synthetic ones keep the experiments self-contained).
    """
    if n_queries < 1:
        raise ReproError(f"n_queries must be >= 1, got {n_queries}")
    rng = rng if rng is not None else np.random.default_rng(0)
    p_point = workload.read_fraction * (1.0 - workload.scan_fraction)
    p_scan = workload.read_fraction * workload.scan_fraction
    p_insert = (1.0 - workload.read_fraction) * 0.6
    p_update = (1.0 - workload.read_fraction) * 0.4
    probs = np.array([p_point, p_scan, p_insert, p_update])
    probs = probs / probs.sum()
    log = []
    data_gb = workload.data_size_mb / 1024.0
    for _ in range(n_queries):
        kind = _QUERY_KINDS[int(rng.choice(4, p=probs))]
        if kind == "range_scan":
            tables = 1 + int(rng.poisson(1.0 + 3.0 * workload.sort_intensity))
            cost = float(rng.lognormal(np.log(10.0 + 50.0 * data_gb), 0.5))
        elif kind == "point_select":
            tables = 1 + int(rng.random() < 0.2)
            cost = float(rng.lognormal(0.0, 0.3))
        else:
            tables = 1
            cost = float(rng.lognormal(0.5 + workload.commit_sensitivity, 0.3))
        log.append(QueryRecord(kind, tables, cost))
    return log


QUERY_FEATURE_NAMES = (
    "frac_point_select",
    "frac_range_scan",
    "frac_insert",
    "frac_update",
    "mean_tables",
    "log_mean_cost",
    "log_p95_cost",
    "cost_skewness",
)


def query_log_features(log: list[QueryRecord]) -> np.ndarray:
    """Mix shares + plan-shape + cost-distribution features."""
    if not log:
        raise ReproError("query log is empty")
    kinds = np.array([q.kind for q in log])
    costs = np.array([q.est_cost for q in log])
    tables = np.array([q.tables for q in log])
    fracs = [float((kinds == k).mean()) for k in _QUERY_KINDS]
    log_costs = np.log1p(costs)
    std = log_costs.std() or 1.0
    skew = float(((log_costs - log_costs.mean()) ** 3).mean() / std**3)
    return np.array(
        fracs
        + [
            float(tables.mean()),
            float(np.log1p(costs.mean())),
            float(np.log1p(np.percentile(costs, 95))),
            skew,
        ]
    )
