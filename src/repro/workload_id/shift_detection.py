"""Workload-shift detection (slide 92: "identify changes in workload over
time").

Two detectors over an embedding stream:

* :class:`WindowShiftDetector` — compares the current sliding window's mean
  embedding against a frozen reference window; alarms when the distance
  exceeds a z-score threshold calibrated on the reference's spread.
* :class:`PageHinkleyDetector` — the classic sequential change-point test
  on a scalar drift statistic.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..exceptions import ReproError
from ..telemetry.spans import emit_event

__all__ = ["WindowShiftDetector", "PageHinkleyDetector"]


class WindowShiftDetector:
    """Reference-vs-sliding-window distance test on embedding vectors.

    Parameters
    ----------
    reference_size:
        Observations used to freeze the reference distribution.
    window:
        Sliding window length compared against the reference.
    threshold_z:
        Alarm when the window-mean distance exceeds mean + z·std of the
        reference self-distances.
    cooldown:
        Steps to suppress repeated alarms after one fires (the detector
        re-references on alarm).
    """

    def __init__(
        self,
        reference_size: int = 20,
        window: int = 8,
        threshold_z: float = 4.0,
        cooldown: int = 10,
    ) -> None:
        if reference_size < 4 or window < 2:
            raise ReproError("reference_size must be >= 4 and window >= 2")
        self.reference_size = int(reference_size)
        self.window = int(window)
        self.threshold_z = float(threshold_z)
        self.cooldown = int(cooldown)
        self._reference: list[np.ndarray] = []
        self._window: deque[np.ndarray] = deque(maxlen=self.window)
        self._ref_mean: np.ndarray | None = None
        self._dist_mean = 0.0
        self._dist_std = 1.0
        self._cooldown_left = 0
        self.alarms: list[int] = []
        self._step = -1

    def _freeze_reference(self) -> None:
        R = np.stack(self._reference)
        self._ref_mean = R.mean(axis=0)
        dists = np.linalg.norm(R - self._ref_mean, axis=1)
        self._dist_mean = float(dists.mean())
        self._dist_std = float(dists.std()) or 1e-6

    def update(self, embedding: np.ndarray) -> bool:
        """Feed one embedding; returns True when a shift alarm fires."""
        self._step += 1
        embedding = np.asarray(embedding, dtype=float)
        if self._ref_mean is None:
            self._reference.append(embedding)
            if len(self._reference) >= self.reference_size:
                self._freeze_reference()
            return False
        self._window.append(embedding)
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return False
        if len(self._window) < self.window:
            return False
        window_mean = np.stack(self._window).mean(axis=0)
        dist = float(np.linalg.norm(window_mean - self._ref_mean))
        z = (dist - self._dist_mean) / self._dist_std
        if z > self.threshold_z:
            self.alarms.append(self._step)
            self._cooldown_left = self.cooldown
            emit_event(
                "workload.shift", severity="warning",
                message=f"window distance z={z:.2f} exceeded threshold {self.threshold_z:g}",
                detector="window", step=self._step, z=float(z),
            )
            # Re-reference on the new regime.
            self._reference = list(self._window)
            self._window.clear()
            self._freeze_reference()
            return True
        return False


class PageHinkleyDetector:
    """Page–Hinkley sequential test on a scalar statistic."""

    def __init__(self, delta: float = 0.02, threshold: float = 1.0, burn_in: int = 10) -> None:
        if threshold <= 0:
            raise ReproError(f"threshold must be positive, got {threshold}")
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.burn_in = int(burn_in)
        self._mean = 0.0
        self._n = 0
        self._cum = 0.0
        self._min_cum = 0.0
        self.alarms: list[int] = []

    def update(self, value: float) -> bool:
        self._n += 1
        self._mean += (value - self._mean) / self._n
        self._cum += value - self._mean - self.delta
        self._min_cum = min(self._min_cum, self._cum)
        if self._n <= self.burn_in:
            return False
        if self._cum - self._min_cum > self.threshold:
            self.alarms.append(self._n - 1)
            emit_event(
                "workload.shift", severity="warning",
                message=f"Page-Hinkley statistic exceeded threshold {self.threshold:g}",
                detector="page_hinkley", step=self._n - 1,
                statistic=float(self._cum - self._min_cum),
            )
            self._n = 0
            self._mean = 0.0
            self._cum = 0.0
            self._min_cum = 0.0
            return True
        return False
