"""Similarity, clustering, and matching over workload embeddings (slide 88).

"Problem: how to determine what systems/workloads are similar? … need a
distance / similarity metric between workloads." Provides the kernel
distances, k-means (with k-means++ seeding), kNN matching, and a silhouette
quality score — all from scratch on numpy.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ReproError

__all__ = [
    "euclidean_distance",
    "cosine_similarity",
    "kmeans",
    "knn_indices",
    "silhouette_score",
    "clustering_accuracy",
]


def euclidean_distance(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.linalg.norm(np.asarray(a, dtype=float) - np.asarray(b, dtype=float)))


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0:
        return 0.0
    return float(a @ b / denom)


def _pairwise_sq(X: np.ndarray, C: np.ndarray) -> np.ndarray:
    return (
        np.sum(X * X, axis=1)[:, None]
        + np.sum(C * C, axis=1)[None, :]
        - 2.0 * X @ C.T
    )


def kmeans(
    X: np.ndarray,
    k: int,
    n_iter: int = 50,
    rng: np.random.Generator | None = None,
    n_init: int = 8,
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm, k-means++ seeding, best of ``n_init`` restarts.

    Returns (labels, centroids) of the restart with the lowest within-
    cluster sum of squares — single inits routinely merge nearby clusters.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    if k < 1 or k > len(X):
        raise ReproError(f"k must be in [1, {len(X)}], got {k}")
    if n_init < 1:
        raise ReproError(f"n_init must be >= 1, got {n_init}")
    rng = rng if rng is not None else np.random.default_rng(0)
    best: tuple[float, np.ndarray, np.ndarray] | None = None
    for _ in range(n_init):
        labels, C = _kmeans_once(X, k, n_iter, rng)
        inertia = float(np.sum((X - C[labels]) ** 2))
        if best is None or inertia < best[0]:
            best = (inertia, labels, C)
    return best[1], best[2]


def _kmeans_once(X: np.ndarray, k: int, n_iter: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    # k-means++ seeding.
    centroids = [X[int(rng.integers(len(X)))]]
    while len(centroids) < k:
        d2 = np.min(_pairwise_sq(X, np.stack(centroids)), axis=1)
        d2 = np.maximum(d2, 0.0)
        probs = d2 / d2.sum() if d2.sum() > 0 else np.full(len(X), 1.0 / len(X))
        centroids.append(X[int(rng.choice(len(X), p=probs))])
    C = np.stack(centroids)
    labels = np.zeros(len(X), dtype=int)
    for iteration in range(n_iter):
        new_labels = np.argmin(_pairwise_sq(X, C), axis=1)
        if np.array_equal(new_labels, labels) and iteration > 0:
            break
        labels = new_labels
        for j in range(k):
            members = X[labels == j]
            if len(members):
                C[j] = members.mean(axis=0)
    return labels, C


def knn_indices(query: np.ndarray, corpus: np.ndarray, k: int = 1) -> np.ndarray:
    """Indices of the k nearest corpus rows to the query vector."""
    corpus = np.atleast_2d(np.asarray(corpus, dtype=float))
    if k < 1 or k > len(corpus):
        raise ReproError(f"k must be in [1, {len(corpus)}], got {k}")
    d = np.linalg.norm(corpus - np.asarray(query, dtype=float)[None, :], axis=1)
    return np.argsort(d)[:k]


def silhouette_score(X: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient (clustering quality in [−1, 1])."""
    X = np.atleast_2d(np.asarray(X, dtype=float))
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ReproError("silhouette needs >= 2 clusters")
    D = np.sqrt(np.maximum(_pairwise_sq(X, X), 0.0))
    scores = []
    for i in range(len(X)):
        same = labels == labels[i]
        same[i] = False
        a = D[i, same].mean() if same.any() else 0.0
        b = min(
            D[i, labels == other].mean()
            for other in unique
            if other != labels[i]
        )
        denom = max(a, b)
        scores.append(0.0 if denom == 0 else (b - a) / denom)
    return float(np.mean(scores))


def clustering_accuracy(labels: np.ndarray, truth: np.ndarray) -> float:
    """Best-map accuracy: each cluster votes for its majority true class."""
    labels = np.asarray(labels)
    truth = np.asarray(truth)
    if labels.shape != truth.shape:
        raise ReproError("labels and truth must align")
    correct = 0
    for cluster in np.unique(labels):
        members = truth[labels == cluster]
        values, counts = np.unique(members, return_counts=True)
        correct += int(counts.max())
    return correct / len(labels)
