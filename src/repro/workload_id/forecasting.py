"""Workload forecasting — acting *before* the shift arrives.

The tutorial's future-work slide points at time-series foundation models
(MOIRAI, Chronos) for workload understanding; the classical core of that
idea is already useful: forecast the diurnal load curve and let a
proactive policy apply the configuration the *upcoming* load needs,
instead of reacting a step late.

:class:`SeasonalForecaster` combines a seasonal-naive component (yesterday
at the same time) with an AR(1) correction on the residual — tiny, robust,
and exactly what capacity planners actually run first.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import NotFittedError, ReproError

__all__ = ["SeasonalForecaster"]


class SeasonalForecaster:
    """Seasonal-naive + AR(1)-residual forecaster for scalar load series.

    Parameters
    ----------
    period:
        Season length in steps (e.g. 24 for hourly data with a daily cycle).
    """

    def __init__(self, period: int) -> None:
        if period < 2:
            raise ReproError(f"period must be >= 2, got {period}")
        self.period = int(period)
        self._history: list[float] = []
        self._phi = 0.0  # AR(1) coefficient on seasonal residuals
        self._resid_std = 0.0

    # -- online updates -----------------------------------------------------
    def update(self, value: float) -> None:
        """Append one observation (call once per step)."""
        self._history.append(float(value))
        if len(self._history) >= 2 * self.period:
            self._refit()

    def fit(self, series: np.ndarray) -> "SeasonalForecaster":
        """Bulk-load a history."""
        for v in np.asarray(series, dtype=float).ravel():
            self._history.append(float(v))
        if len(self._history) < 2 * self.period:
            raise ReproError(f"need at least {2 * self.period} observations")
        self._refit()
        return self

    def _residuals(self) -> np.ndarray:
        h = np.asarray(self._history)
        return h[self.period:] - h[:-self.period]

    def _refit(self) -> None:
        r = self._residuals()
        if len(r) >= 3:
            num = float(r[1:] @ r[:-1])
            den = float(r[:-1] @ r[:-1])
            self._phi = 0.0 if den <= 1e-12 else float(np.clip(num / den, -0.99, 0.99))
            self._resid_std = float(np.std(r[1:] - self._phi * r[:-1]))

    @property
    def is_fitted(self) -> bool:
        return len(self._history) >= 2 * self.period

    # -- forecasting ----------------------------------------------------------
    def forecast(self, horizon: int = 1) -> np.ndarray:
        """Point forecasts for the next ``horizon`` steps."""
        if not self.is_fitted:
            raise NotFittedError(f"need {2 * self.period} observations before forecasting")
        if horizon < 1:
            raise ReproError(f"horizon must be >= 1, got {horizon}")
        h = list(self._history)
        last_resid = self._residuals()[-1]
        out = []
        for step in range(1, horizon + 1):
            seasonal = h[len(h) - self.period + (step - 1)] if step <= self.period else out[step - self.period - 1]
            resid = last_resid * (self._phi ** step)
            out.append(float(seasonal + resid))
        return np.array(out)

    def forecast_interval(self, horizon: int = 1, z: float = 1.64) -> tuple[np.ndarray, np.ndarray]:
        """(lower, upper) bands — widen with the AR-residual uncertainty."""
        point = self.forecast(horizon)
        scale = self._resid_std * np.sqrt(np.arange(1, horizon + 1))
        return point - z * scale, point + z * scale

    def detect_anomaly(self, value: float, z: float = 3.0) -> bool:
        """Is the next observation far outside the forecast band?

        A cheap workload-shift signal that complements the embedding-based
        detectors in :mod:`repro.workload_id.shift_detection`.
        """
        if not self.is_fitted or self._resid_std <= 0:
            return False
        expected = self.forecast(1)[0]
        return abs(value - expected) > z * self._resid_std
