"""Synthetic benchmark generation (slide 92, Stitcher-style).

"Generate the optimal mixture of queries to mimic the workload in
production; offline-optimize the system for that new synthetic benchmark;
use the optimized config on the system in prod."

Given a library of base workloads and only the *observable* signature of a
production workload, :func:`synthesize_benchmark` finds the non-negative
mixture of base workloads whose blended signature best matches, via NNLS.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from ..exceptions import ReproError
from ..workloads import Workload

__all__ = ["mixture_weights", "blend_mixture", "synthesize_benchmark"]


def mixture_weights(
    target_signature: np.ndarray,
    library_signatures: np.ndarray,
    min_weight: float = 0.02,
) -> np.ndarray:
    """Convex weights w ≥ 0, Σw = 1 minimising ‖Sᵀw − target‖².

    Solved as NNLS on standardised signatures with a sum-to-one penalty
    row, then thresholded (tiny weights are noise) and renormalised.
    """
    S = np.atleast_2d(np.asarray(library_signatures, dtype=float))
    t = np.asarray(target_signature, dtype=float)
    if S.shape[1] != len(t):
        raise ReproError(f"signature widths differ: {S.shape[1]} vs {len(t)}")
    # Standardise feature columns so no single feature dominates the fit.
    mean = S.mean(axis=0)
    std = S.std(axis=0)
    std[std <= 0] = 1.0
    Sz = (S - mean) / std
    tz = (t - mean) / std
    # Augment with a strong sum-to-one row.
    rho = 10.0
    A = np.vstack([Sz.T, rho * np.ones(len(S))])
    b = np.concatenate([tz, [rho]])
    w, _ = optimize.nnls(A, b)
    if w.sum() <= 0:
        raise ReproError("NNLS produced an all-zero mixture")
    w = w / w.sum()
    w[w < min_weight] = 0.0
    if w.sum() <= 0:
        raise ReproError("all mixture weights fell below min_weight")
    return w / w.sum()


def blend_mixture(library: list[Workload], weights: np.ndarray, name: str = "synthetic") -> Workload:
    """Fold a weighted list of workloads into one blended workload."""
    if len(library) != len(weights):
        raise ReproError("library and weights must align")
    active = [(w, float(wt)) for w, wt in zip(library, weights) if wt > 0]
    if not active:
        raise ReproError("no active components in the mixture")
    blended, acc = active[0][0], active[0][1]
    for workload, weight in active[1:]:
        alpha = weight / (acc + weight)
        blended = blended.blend(workload, alpha)
        acc += weight
    import dataclasses

    return dataclasses.replace(blended, name=name)


def synthesize_benchmark(
    target: Workload,
    library: list[Workload],
    name: str | None = None,
) -> tuple[Workload, np.ndarray]:
    """Build the library mixture that best mimics ``target``.

    Returns the synthetic workload and the mixture weights. The target's
    signature is all we use — standing in for "can't replay their workload
    (side effects), can't look at it (privacy)" from slide 73: signatures
    are aggregate, non-sensitive statistics.
    """
    if not library:
        raise ReproError("need a non-empty workload library")
    S = np.stack([w.signature() for w in library])
    weights = mixture_weights(target.signature(), S)
    synthetic = blend_mixture(library, weights, name=name or f"synthetic<{target.name}>")
    return synthetic, weights
