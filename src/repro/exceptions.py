"""Exception hierarchy for the autotuning library.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SpaceError(ReproError):
    """Invalid configuration-space definition or use."""


class DuplicateParameterError(SpaceError):
    """A parameter with the same name was added twice."""


class UnknownParameterError(SpaceError, KeyError):
    """A referenced parameter does not exist in the space."""


class InvalidValueError(SpaceError, ValueError):
    """A value is outside a parameter's domain."""


class ConstraintViolationError(SpaceError):
    """A configuration violates a hard constraint."""


class SamplingError(SpaceError):
    """Rejection sampling could not find a feasible configuration."""


class OptimizerError(ReproError):
    """An optimizer was driven incorrectly or failed internally."""


class NotFittedError(OptimizerError):
    """A model was queried before it was fit to any data."""


class ExhaustedError(OptimizerError):
    """An exhaustive optimizer (e.g. grid search) has no suggestions left."""


class BudgetExhaustedError(ReproError):
    """The tuning session's trial or cost budget was consumed."""


class SystemCrashError(ReproError):
    """A simulated system crashed under the applied configuration.

    Mirrors a DBMS failing to start (e.g. buffer pool larger than RAM).
    Tuning harnesses catch this and record a failed trial.
    """


class TrialAbortedError(ReproError):
    """A trial was aborted early (early-abort policy or guardrail)."""


class GuardrailViolationError(ReproError):
    """An online guardrail detected a performance regression."""
