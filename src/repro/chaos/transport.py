"""Wire- and evaluator-level fault injection.

The client side consults the injector inside
:meth:`~repro.service.client.ServiceClient._request` (via the
``transport_faults`` constructor argument) at site ``client.request``,
keyed by request path — so each session's wire-fault sequence is
deterministic.
The server side is a :class:`ServerFaultHook` passed to
:class:`~repro.service.server.TuningServer`, consulted once per accepted
connection at site ``server.connection``.

:func:`chaotic_evaluator` wraps any evaluator with deterministic,
per-key-sequenced trial crashes (``crash`` → raises
:class:`~repro.exceptions.SystemCrashError`, folded into a failed trial by
the executor) and metric noise spikes (``noise`` → every metric scaled by
``1 + magnitude``).
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Mapping

from ..exceptions import SystemCrashError
from .plan import FaultDecision, FaultInjector

__all__ = ["ClientFaultTransport", "ServerFaultHook", "chaotic_evaluator"]


class ClientFaultTransport:
    """Client-side wire faults: resets, added latency, forced timeouts.

    ``await transport.before_request(path)`` is called by the client before
    opening the connection; it raises (or delays) according to the plan.
    """

    def __init__(self, injector: FaultInjector, site: str = "client.request") -> None:
        self.injector = injector
        self.site = site

    async def before_request(self, path: str) -> None:
        decision = self.injector.decide(self.site, path)
        if decision is None:
            return
        if decision.kind == "latency":
            await asyncio.sleep(max(0.0, decision.magnitude))
            return
        if decision.kind in ("reset", "torn", "error", "ack_lost", "crash"):
            raise ConnectionResetError(decision.message)
        if decision.kind == "noise":  # pragma: no cover - meaningless on the wire
            return


class ServerFaultHook:
    """Server-side connection faults, consulted once per accepted connection.

    ``reset`` aborts the connection before reading the request (the client
    observes a reset / empty response); ``latency`` stalls the connection
    (slow peer) before serving it.
    """

    def __init__(self, injector: FaultInjector, site: str = "server.connection") -> None:
        self.injector = injector
        self.site = site

    async def on_connection(self) -> bool:
        """Returns ``False`` when the connection must be dropped."""
        decision = self.injector.decide(self.site)
        if decision is None:
            return True
        if decision.kind == "latency":
            await asyncio.sleep(max(0.0, decision.magnitude))
            return True
        return False


def chaotic_evaluator(
    evaluator: Callable[[Any], Any],
    injector: FaultInjector,
    key: str = "",
    site: str = "evaluator.run",
) -> Callable[[Any], Any]:
    """Wrap an evaluator with deterministic crashes and noise spikes.

    The wrapper consults the injector once per evaluation (keyed so each
    session or worker gets an independent deterministic sequence):

    * ``crash`` — raises :class:`SystemCrashError`; executors fold it into
      a failed trial with an imputed score.
    * ``noise`` — runs the evaluation, then scales every numeric metric by
      ``1 + magnitude`` (a measurement-noise spike, per TUNA's unstable-
      cloud-evaluation setting).
    """

    def evaluate(config: Any) -> Any:
        decision = injector.decide(site, key)
        if decision is not None and decision.kind == "crash":
            raise SystemCrashError(decision.message)
        result = evaluator(config)
        if decision is not None and decision.kind == "noise":
            return _spike(result, decision)
        return result

    return evaluate


def _spike(result: Any, decision: FaultDecision) -> Any:
    scale = 1.0 + decision.magnitude
    if isinstance(result, Mapping):
        return {
            name: value * scale if isinstance(value, (int, float)) and not isinstance(value, bool) else value
            for name, value in result.items()
        }
    if isinstance(result, (int, float)) and not isinstance(result, bool):
        return result * scale
    return result  # tuples/EvaluationResult shapes pass through unspiked
