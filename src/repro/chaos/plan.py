"""Declarative, seeded fault plans with replayable schedules.

A :class:`FaultPlan` is a seed plus an ordered list of :class:`FaultRule`
entries, each naming an injection *site* (``"store.append"``,
``"client.request"``, ``"evaluator.run"``, …), a fault *kind*, a firing
rate, and an optional window. The plan is pure data — ``to_dict`` /
``from_dict`` round-trip it through JSON, so a chaos campaign's exact
failure schedule travels with its artefacts.

Determinism is the whole point. Whether invocation ``i`` of a site (for a
given *key* — usually a session id) suffers a fault is a pure function of
``(seed, site, key, i)``: a SHA-256 of that tuple drives the Bernoulli
draw. No mutable RNG stream is shared across sites or keys, so thread
interleaving between concurrent sessions cannot perturb the schedule —
the same seed produces the same fault sequence for every key no matter
how the event loop slices the work. ``max_fires`` windows stay
deterministic too, because which earlier indices fired is itself fixed by
the hash.

:class:`FaultInjector` is the runtime half: it tracks per-``(site, key)``
invocation counters, applies the rules, records every decision in an
in-memory :class:`FaultEvent` log (canonically sortable, for run-to-run
equality assertions), and mirrors fired faults into the telemetry event
log as ``chaos.fault`` events.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..exceptions import ReproError
from ..telemetry.spans import emit_event

__all__ = [
    "FaultRule",
    "FaultPlan",
    "FaultDecision",
    "FaultEvent",
    "FaultInjector",
    "KINDS",
]

#: The closed vocabulary of fault kinds. What each means is defined by the
#: site that consults the injector (see docs/robustness.md's fault model):
#:
#: ``error``     operation fails cleanly before any effect (store IO error,
#:               connection refused).
#: ``torn``      operation fails mid-effect (partial journal append).
#: ``ack_lost``  operation succeeds but the acknowledgement is lost — the
#:               caller sees a failure and must retry idempotently.
#: ``reset``     connection reset (client transport / server hook).
#: ``latency``   the operation is delayed by ``magnitude`` seconds.
#: ``crash``     the evaluated trial crashes (``SystemCrashError``).
#: ``noise``     the trial's metrics are scaled by ``1 + magnitude``.
KINDS = frozenset({"error", "torn", "ack_lost", "reset", "latency", "crash", "noise"})

PLAN_FORMAT_VERSION = 1


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: *where*, *what*, *how often*, *when*.

    ``rate`` is the per-invocation firing probability within the
    ``[start, stop)`` invocation-index window (per key); ``max_fires``
    bounds total fires per key. ``magnitude`` parameterises the kind
    (latency seconds, noise fraction); ``message`` is carried into the
    injected error text.
    """

    site: str
    kind: str
    rate: float = 1.0
    start: int = 0
    stop: int | None = None
    max_fires: int | None = None
    magnitude: float = 0.0
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ReproError(f"unknown fault kind {self.kind!r}; choose from {sorted(KINDS)}")
        if not 0.0 <= self.rate <= 1.0:
            raise ReproError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.start < 0 or (self.stop is not None and self.stop < self.start):
            raise ReproError(f"bad fault window [{self.start}, {self.stop})")
        if self.max_fires is not None and self.max_fires < 1:
            raise ReproError(f"max_fires must be >= 1, got {self.max_fires}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "site": self.site,
            "kind": self.kind,
            "rate": self.rate,
            "start": self.start,
            "stop": self.stop,
            "max_fires": self.max_fires,
            "magnitude": self.magnitude,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultRule":
        try:
            return cls(
                site=str(data["site"]),
                kind=str(data["kind"]),
                rate=float(data.get("rate", 1.0)),
                start=int(data.get("start", 0)),
                stop=None if data.get("stop") is None else int(data["stop"]),
                max_fires=None if data.get("max_fires") is None else int(data["max_fires"]),
                magnitude=float(data.get("magnitude", 0.0)),
                message=str(data.get("message", "")),
            )
        except (KeyError, TypeError, ValueError) as err:
            raise ReproError(f"malformed fault rule: {err}") from err


@dataclass(frozen=True)
class FaultDecision:
    """What the injector decided for one invocation: which rule fired."""

    site: str
    key: str
    index: int
    kind: str
    magnitude: float
    message: str
    rule: int  # index into FaultPlan.rules


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault, as recorded in the injector's in-memory log."""

    site: str
    key: str
    index: int
    kind: str
    rule: int

    def as_tuple(self) -> tuple[str, str, int, str, int]:
        return (self.site, self.key, self.index, self.kind, self.rule)


def _bernoulli(seed: int, rule: int, site: str, key: str, index: int) -> float:
    """Deterministic uniform draw in [0, 1) for one (rule, site, key, index)."""
    text = f"{seed}|{rule}|{site}|{key}|{index}"
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative schedule of faults.

    ``injector()`` builds the runtime :class:`FaultInjector`; calling it
    twice (or in two different processes) yields identical schedules.
    """

    seed: int
    rules: tuple[FaultRule, ...] = ()
    name: str = "chaos"

    def __init__(self, seed: int, rules: Iterable[FaultRule] = (), name: str = "chaos") -> None:
        object.__setattr__(self, "seed", int(seed))
        object.__setattr__(self, "rules", tuple(rules))
        object.__setattr__(self, "name", str(name))

    def injector(self) -> "FaultInjector":
        return FaultInjector(self)

    def schedule(self, site: str, key: str, n: int) -> list[FaultDecision | None]:
        """The first ``n`` decisions for one (site, key) — without running.

        This is the stateless view of the deterministic schedule: a fresh
        injector queried ``n`` times for the same (site, key) returns
        exactly this list.
        """
        injector = self.injector()
        return [injector.decide(site, key, record=False) for _ in range(n)]

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": PLAN_FORMAT_VERSION,
            "name": self.name,
            "seed": self.seed,
            "rules": [r.to_dict() for r in self.rules],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        version = data.get("version", PLAN_FORMAT_VERSION)
        if version != PLAN_FORMAT_VERSION:
            raise ReproError(f"unsupported fault-plan version {version!r}")
        try:
            return cls(
                seed=int(data["seed"]),
                rules=tuple(FaultRule.from_dict(r) for r in data.get("rules", [])),
                name=str(data.get("name", "chaos")),
            )
        except (KeyError, TypeError, ValueError) as err:
            raise ReproError(f"malformed fault plan: {err}") from err


class FaultInjector:
    """Runtime fault oracle over one :class:`FaultPlan`.

    Thread-safe: sites are consulted from the event loop, worker threads,
    and store wrappers concurrently. Per-``(site, key)`` invocation
    counters advance monotonically; the decision for each index is a pure
    function of the plan's seed, so concurrent interleavings cannot change
    which invocations fault.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._counts: dict[tuple[str, str], int] = {}
        self._fires: dict[tuple[int, str, str], int] = {}  # (rule, site, key) -> fires
        self._events: list[FaultEvent] = []

    # -- decisions -----------------------------------------------------------
    def _decide_at(self, site: str, key: str, index: int) -> FaultDecision | None:
        for rule_index, rule in enumerate(self.plan.rules):
            if rule.site != site:
                continue
            if index < rule.start or (rule.stop is not None and index >= rule.stop):
                continue
            if rule.max_fires is not None:
                fired = self._fires.get((rule_index, site, key), 0)
                if fired >= rule.max_fires:
                    continue
            if _bernoulli(self.plan.seed, rule_index, site, key, index) >= rule.rate:
                continue
            self._fires[(rule_index, site, key)] = (
                self._fires.get((rule_index, site, key), 0) + 1
            )
            return FaultDecision(
                site=site,
                key=key,
                index=index,
                kind=rule.kind,
                magnitude=rule.magnitude,
                message=rule.message or f"injected {rule.kind} at {site}[{key}]#{index}",
                rule=rule_index,
            )
        return None

    def decide(self, site: str, key: str = "", record: bool = True) -> FaultDecision | None:
        """Advance the (site, key) counter and return the fault, if any.

        ``record=False`` still advances counters but keeps the decision out
        of the event log (used by :meth:`FaultPlan.schedule`).
        """
        with self._lock:
            counter_key = (site, key)
            index = self._counts.get(counter_key, 0)
            self._counts[counter_key] = index + 1
            decision = self._decide_at(site, key, index)
            if decision is not None and record:
                self._events.append(
                    FaultEvent(site=site, key=key, index=index, kind=decision.kind, rule=decision.rule)
                )
        if decision is not None and record:
            emit_event(
                "chaos.fault",
                severity="warning",
                message=decision.message,
                site=site,
                key=key,
                index=index,
                fault_kind=decision.kind,
                rule=decision.rule,
            )
        return decision

    # -- introspection -------------------------------------------------------
    @property
    def events(self) -> list[FaultEvent]:
        """Every fired fault so far, in firing order (timing-dependent)."""
        with self._lock:
            return list(self._events)

    def canonical_log(self) -> list[tuple[str, str, int, str, int]]:
        """The fired faults as a sorted, timing-independent tuple list.

        Two runs of the same plan over the same per-key call sequences
        produce equal canonical logs even when thread interleaving reorders
        the firings — this is the run-to-run equality oracle the chaos
        acceptance test asserts on.
        """
        with self._lock:
            return sorted(e.as_tuple() for e in self._events)

    def invocations(self, site: str, key: str = "") -> int:
        """How many times (site, key) has been consulted."""
        with self._lock:
            return self._counts.get((site, key), 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultInjector(plan={self.plan.name!r}, seed={self.plan.seed}, "
            f"fired={len(self._events)})"
        )
