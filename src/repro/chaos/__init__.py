"""Deterministic fault injection for the tuning service (``repro.chaos``).

The paper frames autotuning as a long-running, failure-prone systems
loop: measurements are noisy, evaluations crash, and the tuning service
itself must survive its own infrastructure. This package makes those
failures *schedulable and replayable*: a seeded, declarative
:class:`FaultPlan` decides — as a pure function of ``(seed, site, key,
invocation-index)`` — exactly which store appends fail, which connections
reset, which trials crash, and which measurements spike. Running the same
plan twice produces the same fault sequence, so resilience becomes a
property you can regression-test, and ``repro replay`` becomes the oracle
that proves campaigns stay bit-correct through injected chaos.

Pieces:

* :class:`FaultPlan` / :class:`FaultRule` — the declarative schedule
  (JSON round-trippable).
* :class:`FaultInjector` — the runtime oracle with a canonical fired-
  fault log.
* :class:`FaultyStore` — storage faults behind the ``TrialStore``
  contract (write/read errors, torn appends, lost acks).
* :class:`ClientFaultTransport` / :class:`ServerFaultHook` — wire faults
  (resets, latency) on either end.
* :func:`chaotic_evaluator` — trial crashes and metric-noise spikes.

See ``docs/robustness.md`` for the fault model and the degradation
matrix the rest of the stack implements against it.
"""

from .plan import KINDS, FaultDecision, FaultEvent, FaultInjector, FaultPlan, FaultRule
from .store import FaultyStore
from .transport import ClientFaultTransport, ServerFaultHook, chaotic_evaluator

__all__ = [
    "KINDS",
    "FaultDecision",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultyStore",
    "ClientFaultTransport",
    "ServerFaultHook",
    "chaotic_evaluator",
]
