"""``FaultyStore``: deterministic storage faults behind the TrialStore contract.

Wraps any :class:`~repro.core.journal.TrialStore` and consults a
:class:`~repro.chaos.plan.FaultInjector` at three sites:

``store.append``
    * ``error`` — the append fails *before* any effect
      (:class:`~repro.core.journal.TransientStorageError`); nothing is
      durable, a retry with the same record is a fresh append.
    * ``torn`` — a partial, unterminated record is written to the
      underlying JSON journal (crash mid-append) and the append fails;
      the backend's torn-tail recovery must repair it on the next read.
      Backends without a raw journal file degrade to ``error``.
    * ``ack_lost`` — the append *succeeds* durably, then the
      acknowledgement is dropped (fsync-failure model). The caller must
      retry; only ``report_id``-bearing records survive this exactly-once,
      which is precisely what the chaos harness is proving.

``store.read``
    * ``error`` — ``load_trials`` / ``trial_count`` fail transiently.

``store.meta``
    * ``error`` — ``get_session`` fails transiently (resume-path faults).

Faults are keyed by session id, so every session's fault sequence is a
pure function of the plan seed regardless of how concurrent sessions
interleave.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..core.journal import AppendResult, SessionMeta, TransientStorageError, TrialStore
from .plan import FaultDecision, FaultInjector

__all__ = ["FaultyStore"]


class FaultyStore(TrialStore):
    """A fault-injecting decorator satisfying the ``TrialStore`` contract.

    With an empty plan (or rules at rate 0) it is a transparent proxy —
    the store contract suite runs against it unchanged.
    """

    def __init__(self, inner: TrialStore, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector

    # -- fault application ---------------------------------------------------
    def _raise(self, decision: FaultDecision) -> None:
        raise TransientStorageError(decision.message)

    def _tear_journal(self, session_id: str, decision: FaultDecision) -> None:
        """Write an unterminated partial line into a JSON journal, if any.

        Simulates a crash mid-append: the torn tail must be discarded by
        the backend's recovery on the next load. Backends without a
        per-session journal file just fail cleanly.
        """
        journal_path = getattr(self.inner, "_journal_path", None)
        if journal_path is not None:
            try:
                with open(journal_path(session_id), "ab") as fh:
                    fh.write(b'{"torn-by-chaos": ')
            except OSError:
                pass
        self._raise(decision)

    # -- sessions -----------------------------------------------------------
    def create_session(self, meta: SessionMeta) -> None:
        self.inner.create_session(meta)

    def get_session(self, session_id: str) -> SessionMeta | None:
        decision = self.injector.decide("store.meta", session_id)
        if decision is not None and decision.kind in ("error", "ack_lost", "torn"):
            self._raise(decision)
        return self.inner.get_session(session_id)

    def update_session(self, session_id: str, **fields: Any) -> None:
        self.inner.update_session(session_id, **fields)

    def list_sessions(self) -> list[str]:
        return self.inner.list_sessions()

    # -- trials -------------------------------------------------------------
    def append_trial(self, session_id: str, record: Mapping[str, Any]) -> AppendResult:
        decision = self.injector.decide("store.append", session_id)
        if decision is None:
            return self.inner.append_trial(session_id, record)
        if decision.kind == "torn":
            self._tear_journal(session_id, decision)
        if decision.kind == "ack_lost":
            self.inner.append_trial(session_id, record)
            self._raise(decision)
        self._raise(decision)
        raise AssertionError("unreachable")  # pragma: no cover

    def load_trials(self, session_id: str) -> list[dict[str, Any]]:
        decision = self.injector.decide("store.read", session_id)
        if decision is not None:
            self._raise(decision)
        return self.inner.load_trials(session_id)

    def trial_count(self, session_id: str) -> int:
        decision = self.injector.decide("store.read", session_id)
        if decision is not None:
            self._raise(decision)
        return self.inner.trial_count(session_id)

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultyStore({self.inner!r}, {self.injector!r})"
