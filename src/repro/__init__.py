"""repro — an autotuning-systems library.

A full reproduction of the SIGMOD 2025 tutorial *"Autotuning Systems:
Techniques, Challenges, and Opportunities"* (Kroth, Matusevych, Zhu):
offline tuning (classic search, GP/RF Bayesian optimization, evolutionary
methods, multi-objective/-fidelity/-task machinery), online tuning (RL,
genetic, hybrid bandits, safety), the systems substrate it all runs on
(simulated DBMS/Redis/Spark in a noisy cloud), and workload identification
(embeddings, shift detection, benchmark synthesis).
"""

from .core import (
    Callback,
    ConvergenceTracker,
    EvaluationResult,
    History,
    Objective,
    Optimizer,
    Trial,
    TrialStatus,
    TuningResult,
    TuningSession,
    coerce_evaluation,
)
from .execution import (
    ProcessExecutor,
    RetryPolicy,
    SerialExecutor,
    ThreadedExecutor,
    TrialExecution,
    TrialExecutor,
)
from .telemetry import SessionTrace, TelemetryCallback, TrialSpan
from .exceptions import (
    BudgetExhaustedError,
    ConstraintViolationError,
    ExhaustedError,
    GuardrailViolationError,
    InvalidValueError,
    NotFittedError,
    OptimizerError,
    ReproError,
    SamplingError,
    SpaceError,
    SystemCrashError,
    TrialAbortedError,
)
from .optimizers import (
    BayesianOptimizer,
    CMAESOptimizer,
    GridSearchOptimizer,
    MultiArmedBanditOptimizer,
    ParEGOOptimizer,
    ParticleSwarmOptimizer,
    RandomSearchOptimizer,
    SimulatedAnnealingOptimizer,
    SMACOptimizer,
)
from .space import (
    BooleanParameter,
    CategoricalParameter,
    Configuration,
    ConfigurationSpace,
    FloatParameter,
    IntegerParameter,
)

__version__ = "1.0.0"

__all__ = [
    "Callback",
    "ConvergenceTracker",
    "EvaluationResult",
    "coerce_evaluation",
    "ProcessExecutor",
    "RetryPolicy",
    "SerialExecutor",
    "ThreadedExecutor",
    "TrialExecution",
    "TrialExecutor",
    "SessionTrace",
    "TelemetryCallback",
    "TrialSpan",
    "History",
    "Objective",
    "Optimizer",
    "Trial",
    "TrialStatus",
    "TuningResult",
    "TuningSession",
    "BudgetExhaustedError",
    "ConstraintViolationError",
    "ExhaustedError",
    "GuardrailViolationError",
    "InvalidValueError",
    "NotFittedError",
    "OptimizerError",
    "ReproError",
    "SamplingError",
    "SpaceError",
    "SystemCrashError",
    "TrialAbortedError",
    "BayesianOptimizer",
    "CMAESOptimizer",
    "GridSearchOptimizer",
    "MultiArmedBanditOptimizer",
    "ParEGOOptimizer",
    "ParticleSwarmOptimizer",
    "RandomSearchOptimizer",
    "SimulatedAnnealingOptimizer",
    "SMACOptimizer",
    "BooleanParameter",
    "CategoricalParameter",
    "Configuration",
    "ConfigurationSpace",
    "FloatParameter",
    "IntegerParameter",
    "__version__",
]
