"""Tuning-as-a-service: a durable multi-session ask/tell HTTP server.

The paper treats autotuning as a long-lived service consumed by many
workloads, not a one-shot library call. This package is that service:

* :class:`TuningServer` — a stdlib-only asyncio HTTP server hosting
  hundreds of concurrent :class:`~repro.core.session.TuningSession`\\ s;
* :class:`ServiceHandlers` — the route logic over a shared
  :class:`~repro.core.manager.SessionManager` and evaluation pool;
* :mod:`repro.service.wire` — the JSON wire schema (the same
  ``SuggestRequest``/``TrialReport`` dataclasses the library uses);
* :class:`ServiceClient` — a small asyncio client for the API.

Every acknowledged ``tell`` is journaled to the durable
:class:`~repro.core.journal.TrialStore` before the HTTP response is sent,
so killing the server mid-campaign loses nothing: a restarted server
(same store) resumes any session lazily on first touch, and client
retries carrying a ``report_id`` are deduplicated. Run one with
``repro serve`` or programmatically via :func:`serve`.
"""

from .client import ServiceClient
from .handlers import ServiceHandlers
from .server import TuningServer, serve
from .wire import WireError

__all__ = [
    "ServiceClient",
    "ServiceHandlers",
    "TuningServer",
    "WireError",
    "serve",
]
