"""Route logic: the service API over one ``SessionManager``.

``ServiceHandlers`` owns everything the HTTP layer should not know about:

* the :class:`~repro.core.manager.SessionManager` (and through it the
  durable :class:`~repro.core.journal.TrialStore`);
* the table of *hosted* sessions — live ``TuningSession`` objects keyed by
  id, each guarded by an asyncio lock so interleaved ask/tell requests for
  one session serialise while different sessions proceed concurrently;
* **lazy resume**: a request touching a session this process has never
  seen falls back to ``SessionManager.resume`` — this is the whole
  crash-recovery story from the client's point of view, a restarted
  server just works;
* one shared :class:`~repro.execution.ThreadedExecutor` reused by every
  session's server-side ``/step`` evaluation (pool reuse per service, not
  per session);
* the per-service :class:`~repro.telemetry.MetricsRegistry` behind
  ``GET /metrics``.

Blocking work (store fsyncs, SQLite commits, optimizer fits, simulated
benchmarks) runs in worker threads via ``asyncio.to_thread`` so the event
loop keeps serving other sessions.
"""

from __future__ import annotations

import asyncio
import warnings
from dataclasses import dataclass
from typing import Any, Mapping

from ..core.journal import StorageError, TransientStorageError
from ..core.manager import SessionManager
from ..core.session import Evaluator, TuningSession
from ..exceptions import OptimizerError, ReproError
from ..space.serialize import space_from_dict
from ..staticcheck import SpaceLintError
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.tracing import SessionTrace
from .wire import (
    CreateSessionRequest,
    WireError,
    parse_suggest_request,
    parse_trial_report,
)

__all__ = ["ServiceHandlers", "NotFoundError"]


class NotFoundError(ReproError):
    """Unknown session or route (maps to HTTP 404)."""


@dataclass
class _Hosted:
    session: TuningSession
    lock: asyncio.Lock
    evaluator: Evaluator | None = None


class ServiceHandlers:
    def __init__(
        self,
        manager: SessionManager,
        metrics: MetricsRegistry | None = None,
        step_workers: int = 4,
    ) -> None:
        self.manager = manager
        self.metrics = metrics or MetricsRegistry()
        #: The service-wide trace: ``http.request`` spans and the optimizer
        #: spans they enclose are recorded here (with the *caller's* trace
        #: id when the request carried a ``traceparent``). Share the service
        #: metrics registry so trace-emitted counters land on ``/metrics``.
        self.trace = SessionTrace(name="service")
        self.trace.metrics = self.metrics
        self.step_workers = int(step_workers)
        self._hosted: dict[str, _Hosted] = {}
        self._admission = asyncio.Lock()  # guards the hosted table, not sessions
        self._executor = None  # shared ThreadedExecutor, built on first /step

    # -- hosting ------------------------------------------------------------
    async def _host(self, session_id: str) -> _Hosted:
        """Return the live session, lazily resuming it from the store."""
        entry = self._hosted.get(session_id)
        if entry is not None:
            return entry
        async with self._admission:
            entry = self._hosted.get(session_id)
            if entry is not None:
                return entry
            try:
                session = await asyncio.to_thread(self.manager.resume, session_id)
            except TransientStorageError:
                raise  # retryable store outage, not a missing session: let it map to 503
            except StorageError as err:
                raise NotFoundError(str(err)) from err
            meta = await asyncio.to_thread(self.manager.meta, session_id)
            evaluator = self._target_evaluator(meta.extra)
            entry = _Hosted(session=session, lock=asyncio.Lock(), evaluator=evaluator)
            self._hosted[session_id] = entry
            self.metrics.inc("service.sessions.resumed")
            self.metrics.set_gauge("service.sessions.hosted", len(self._hosted))
            return entry

    @staticmethod
    def _target_evaluator(extra: Mapping[str, Any]) -> Evaluator | None:
        spec = extra.get("target")
        if not spec:
            return None
        from ..targets import target_spec  # deferred: service core stays sysim-free

        evaluator, _space, _objective = target_spec(spec)
        return evaluator

    def _shared_executor(self):
        if self._executor is None:
            from ..execution import ThreadedExecutor

            self._executor = ThreadedExecutor(max_workers=self.step_workers)
        return self._executor

    # -- endpoints ----------------------------------------------------------
    async def health(self) -> dict[str, Any]:
        return {"ok": True, "sessions_hosted": len(self._hosted)}

    async def metrics_text(self) -> str:
        return self.metrics.to_prometheus()

    async def list_sessions(self) -> dict[str, Any]:
        ids = await asyncio.to_thread(self.manager.list_sessions)
        return {"sessions": ids}

    async def create_session(self, body: Mapping[str, Any]) -> dict[str, Any]:
        req = CreateSessionRequest.from_dict(body)
        if req.session_id and req.resume and await asyncio.to_thread(self.manager.exists, req.session_id):
            entry = await self._host(req.session_id)
            return {
                "session_id": req.session_id,
                "resumed": True,
                "n_trials": len(entry.session.optimizer.history),
            }

        evaluator = None
        objectives = list(req.objectives)
        if req.target is not None:
            from ..targets import target_spec

            evaluator, space, objective = target_spec(req.target)
            if not objectives:
                objectives = [{"name": objective.name, "minimize": objective.minimize}]
        else:
            space = space_from_dict(req.space)
        def _create() -> TuningSession:
            with warnings.catch_warnings():
                # Lint findings travel in the response body, not the server log.
                warnings.simplefilter("ignore", UserWarning)
                return self.manager.create(
                    space,
                    optimizer=req.optimizer,
                    objectives=objectives or None,
                    max_trials=req.max_trials,
                    max_cost=req.max_cost,
                    seed=req.seed,
                    optimizer_options=req.optimizer_options,
                    session_id=req.session_id,
                    evaluator=evaluator,
                    extra={"target": req.target} if req.target is not None else {},
                    strict=req.strict,
                    lint_ignore=req.lint_ignore,
                )

        try:
            session = await asyncio.to_thread(_create)
        except SpaceLintError as err:
            self.metrics.inc("service.sessions.lint_rejected")
            raise WireError(str(err)) from err
        except StorageError as err:
            raise WireError(str(err)) from err
        async with self._admission:
            self._hosted[session.session_id] = _Hosted(
                session=session, lock=asyncio.Lock(), evaluator=evaluator
            )
            self.metrics.set_gauge("service.sessions.hosted", len(self._hosted))
        self.metrics.inc("service.sessions.created")
        out: dict[str, Any] = {"session_id": session.session_id, "resumed": False, "n_trials": 0}
        if session.lint_report is not None and not session.lint_report.clean:
            self.metrics.inc("service.sessions.lint_findings", len(session.lint_report.active))
            out["lint"] = session.lint_report.to_dict()
        return out

    async def status(self, session_id: str) -> dict[str, Any]:
        try:
            return await asyncio.to_thread(self.manager.status, session_id)
        except TransientStorageError:
            raise
        except StorageError as err:
            raise NotFoundError(str(err)) from err

    def _absorb_surrogate_stats(self, session: TuningSession) -> None:
        """Register the optimizer's surrogate counters as gauges (GP fit
        stats, forest fit/predict timings, pending fantasies, …)."""
        stats = getattr(session.optimizer, "surrogate_stats", None)
        if stats is not None:
            self.metrics.absorb(stats(), "surrogate")

    async def ask(self, session_id: str, body: Mapping[str, Any]) -> dict[str, Any]:
        request = parse_suggest_request(body)
        entry = await self._host(session_id)
        async with entry.lock:
            try:
                suggestions = await asyncio.to_thread(entry.session.ask, request)
            except OptimizerError as err:
                raise WireError(str(err)) from err
        self.metrics.inc("service.asks", len(suggestions))
        if request.n > 1:
            self.metrics.inc("service.asks.batched")
        self._absorb_surrogate_stats(entry.session)
        self.metrics.observe("suggest.seconds", entry.session.last_suggest_latency_s)
        return {
            "session_id": session_id,
            "suggestions": [s.to_dict() for s in suggestions],
        }

    async def tell(self, session_id: str, body: Mapping[str, Any]) -> dict[str, Any]:
        report = parse_trial_report(body)
        entry = await self._host(session_id)
        async with entry.lock:
            trial, duplicate = await asyncio.to_thread(entry.session.tell, report)
            complete = entry.session.is_complete
            if complete:
                # Last chance to make every acknowledged trial durable: a
                # session that completes while records sit in the spill
                # buffer must not acknowledge completion until they land.
                # (manager.complete is idempotent, so duplicate retries of
                # the final tell safely re-run both steps.)
                if entry.session.spilled_count:
                    await asyncio.to_thread(entry.session.flush_spill)
                await asyncio.to_thread(self.manager.complete, session_id)
        self.metrics.inc("service.trials.duplicates" if duplicate else "service.trials.total")
        return {
            "session_id": session_id,
            "trial_id": trial.trial_id,
            "duplicate": duplicate,
            "status": trial.status.value,
            "complete": complete,
        }

    async def step(self, session_id: str, body: Mapping[str, Any]) -> dict[str, Any]:
        """Server-side closed loop: evaluate the next ``n`` trials here.

        Only sessions created with a ``target`` spec (registered simulated
        system) can step — client-defined spaces have no server-side
        evaluator. Evaluations share the service-wide thread pool.
        """
        n = int(body.get("n", 1))
        if n < 1:
            raise WireError(f"step n must be >= 1, got {n}")
        entry = await self._host(session_id)
        if entry.evaluator is None:
            raise WireError(
                f"session {session_id!r} has no server-side evaluator (created "
                "without a 'target' spec); drive it via /ask and /tell"
            )
        executor = self._shared_executor()

        def _run_steps() -> list[int]:
            session = entry.session
            want = min(n, session.max_trials - len(session.optimizer.history))
            if want <= 0:
                raise OptimizerError(f"session {session_id!r} is complete")
            # The tracked path (not a bare optimizer.suggest) so journaled
            # trials carry ask-batch provenance coordinates, same as the
            # in-process closed loop.
            configs, ask_info = session._suggest_tracked(want)
            per_trial_suggest_s = session.last_suggest_latency_s / max(1, len(configs))
            done = []
            results = executor.map(entry.evaluator, configs)
            try:
                for execution in results:
                    trial = session._observe_execution(execution, per_trial_suggest_s, ask_info)
                    done.append(trial.trial_id)
            finally:
                close = getattr(results, "close", None)
                if close is not None:
                    close()
            return done

        async with entry.lock:
            try:
                trial_ids = await asyncio.to_thread(_run_steps)
            except OptimizerError as err:
                raise WireError(str(err)) from err
            complete = entry.session.is_complete
            if complete:
                await asyncio.to_thread(self.manager.complete, session_id)
        self.metrics.inc("service.trials.total", len(trial_ids))
        self.metrics.inc("service.steps", len(trial_ids))
        self._absorb_surrogate_stats(entry.session)
        return {"session_id": session_id, "trial_ids": trial_ids, "complete": complete}

    async def complete(self, session_id: str) -> dict[str, Any]:
        try:
            await asyncio.to_thread(self.manager.complete, session_id)
        except StorageError as err:
            raise NotFoundError(str(err)) from err
        return {"session_id": session_id, "status": "completed"}

    # -- lifecycle ----------------------------------------------------------
    async def close(self) -> None:
        """Release the evaluation pool and the store."""
        if self._executor is not None:
            await asyncio.to_thread(self._executor.shutdown)
            self._executor = None
        self._hosted.clear()
        await asyncio.to_thread(self.manager.close)
