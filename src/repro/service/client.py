"""A minimal asyncio client for the tuning service (stdlib only).

One connection per request (simple and robust against server restarts —
exactly the situation a durable tuning service is designed for). The
client speaks the same wire dataclasses as the server: ``ask`` returns
:class:`~repro.core.codec.Suggestion` objects, ``tell`` takes a
:class:`~repro.core.codec.TrialReport`.

``tell_reliably`` is the recommended way to report results: it retries on
connection failures with the same ``report_id``, relying on the server's
journal-level deduplication — at-least-once delivery, exactly-once
recording.
"""

from __future__ import annotations

import asyncio
import json
import random
from typing import Any, Mapping, Sequence

from ..core.codec import Suggestion, TrialReport
from ..exceptions import ReproError
from ..resilience import BackoffPolicy, CircuitBreaker
from ..telemetry.spans import current_trace_context, format_traceparent, new_trace_id, span
from ..telemetry.tracing import SessionTrace
from .wire import WireError

__all__ = ["ServiceClient", "ServiceError"]

#: Statuses that mean "the server is fine, just not right now" — retried
#: by ``tell_reliably``/``run_session`` alongside connection failures.
_RETRYABLE_STATUSES = frozenset({429, 503})


class ServiceError(ReproError):
    """A non-2xx response from the service.

    ``retry_after`` carries the server's ``Retry-After`` hint (seconds)
    when the response supplied one (429/503 under admission control);
    retry loops feed it to :meth:`BackoffPolicy.delay`, where it overrides
    the client-side curve.
    """

    def __init__(self, status: int, message: str, retry_after: float | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class ServiceClient:
    """HTTP client for the tuning service.

    Every request carries a W3C ``traceparent`` header: the trace id comes
    from the ambient trace context when one is bound (e.g. inside an
    activated :class:`~repro.telemetry.SessionTrace`), else from a
    per-client id minted at construction — so all calls of one client
    stitch into one distributed trace either way. Pass ``trace`` to also
    record a client-side ``service.request`` span per call (wire time,
    route, status, retry count).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 30.0,
        trace: SessionTrace | None = None,
        backoff: BackoffPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        transport_faults: Any | None = None,
        backoff_seed: int | None = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self.trace = trace
        self.trace_id = trace.trace_id if trace is not None else new_trace_id()
        #: The shared retry curve for every retry loop on this client.
        self.backoff = backoff or BackoffPolicy()
        #: Optional per-client circuit breaker: consecutive transport
        #: failures open it, and while open requests fail fast with
        #: :class:`~repro.resilience.CircuitOpenError` (a ConnectionError,
        #: so the retry loops back off and re-probe).
        self.breaker = breaker
        #: Optional :class:`repro.chaos.ClientFaultTransport` injecting
        #: connection resets / latency ahead of real I/O.
        self.transport_faults = transport_faults
        #: Deterministic jitter for tests; ``None`` uses the process-wide
        #: seeded jitter source.
        self._rng = random.Random(backoff_seed) if backoff_seed is not None else None

    # -- transport ----------------------------------------------------------
    async def request(
        self,
        method: str,
        path: str,
        payload: Mapping[str, Any] | None = None,
        retry: int = 0,
    ) -> Any:
        if self.trace is None:
            return await self._request(method, path, payload, retry)
        with self.trace.activated():
            return await self._request(method, path, payload, retry)

    async def _request(
        self, method: str, path: str, payload: Mapping[str, Any] | None, retry: int
    ) -> Any:
        ctx = current_trace_context()
        trace_id = ctx.trace_id if ctx is not None else self.trace_id
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Content-Type: application/json\r\n"
            f"Traceparent: {format_traceparent(trace_id)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        if self.breaker is not None and not self.breaker.allow():
            raise self.breaker.reject()
        with span("service.request", route=path, method=method, retry=retry) as op:
            try:
                if self.transport_faults is not None:
                    # Injected wire faults (chaos): resets/latency raised
                    # here exercise the same retry/breaker paths as real ones.
                    await self.transport_faults.before_request(path)
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port), self.timeout_s
                )
                try:
                    writer.write(head.encode("latin-1") + body)
                    await writer.drain()
                    raw = await asyncio.wait_for(reader.read(), self.timeout_s)
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                        pass
                data = self._parse_response(raw)
            except ServiceError as err:
                # The server answered: transport is healthy, whatever the status.
                if self.breaker is not None:
                    self.breaker.record_success()
                if op is not None:
                    op.set(status=err.status)
                raise
            except (ConnectionError, OSError, asyncio.TimeoutError):
                if self.breaker is not None:
                    self.breaker.record_failure()
                raise
            if self.breaker is not None:
                self.breaker.record_success()
            if op is not None:
                op.set(status=200)
            return data

    @staticmethod
    def _parse_response(raw: bytes) -> Any:
        if not raw:
            raise ConnectionError("empty response (server closed the connection)")
        head, _, body = raw.partition(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        try:
            status = int(status_line.split()[1])
        except (IndexError, ValueError):
            raise WireError(f"malformed status line {status_line!r}") from None
        content_type = ""
        retry_after: float | None = None
        for line in head.split(b"\r\n")[1:]:
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-type":
                content_type = value.strip()
            elif name == "retry-after":
                try:
                    retry_after = float(value.strip())
                except ValueError:
                    retry_after = None  # HTTP-date form: ignore, use the curve
        if content_type.startswith("application/json"):
            data = json.loads(body.decode("utf-8")) if body else None
        else:
            data = body.decode("utf-8")
        if status >= 400:
            message = str(data)
            if isinstance(data, dict) and "error" in data:
                message = data["error"].get("message", message)
                if retry_after is None and "retry_after" in data["error"]:
                    retry_after = float(data["error"]["retry_after"])
            raise ServiceError(status, message, retry_after=retry_after)
        return data

    # -- API ----------------------------------------------------------------
    async def health(self) -> dict[str, Any]:
        return await self.request("GET", "/healthz")

    async def metrics(self) -> str:
        return await self.request("GET", "/metrics")

    async def list_sessions(self) -> list[str]:
        return (await self.request("GET", "/sessions"))["sessions"]

    async def create_session(self, **spec: Any) -> dict[str, Any]:
        return await self.request("POST", "/sessions", spec)

    async def status(self, session_id: str) -> dict[str, Any]:
        return await self.request("GET", f"/sessions/{session_id}")

    async def ask(self, session_id: str, n: int = 1) -> list[Suggestion]:
        data = await self.request("POST", f"/sessions/{session_id}/ask", {"n": n})
        return [Suggestion.from_dict(s) for s in data["suggestions"]]

    async def tell(self, session_id: str, report: TrialReport, retry: int = 0) -> dict[str, Any]:
        return await self.request("POST", f"/sessions/{session_id}/tell", report.to_dict(), retry=retry)

    async def tell_reliably(
        self,
        session_id: str,
        report: TrialReport,
        retries: int = 20,
        delay_s: float | None = None,
    ) -> dict[str, Any]:
        """At-least-once tell with journal-side dedup = exactly-once record.

        Requires ``report.report_id``; retries connection-level failures
        (server down / restarting) and retryable statuses (429/503 from
        admission control or a transient store outage) through the shared
        full-jitter :class:`BackoffPolicy`, honouring server ``Retry-After``
        hints. ``delay_s`` overrides the policy's base delay (backward
        compatibility with the pre-policy signature).
        """
        if report.report_id is None:
            raise WireError("tell_reliably needs a report with a report_id")
        policy = self.backoff if delay_s is None else BackoffPolicy(
            base_s=delay_s, cap_s=self.backoff.cap_s, multiplier=self.backoff.multiplier
        )
        last: Exception | None = None
        for attempt in range(retries + 1):
            retry_after: float | None = None
            try:
                return await self.tell(session_id, report, retry=attempt)
            except ServiceError as err:
                if err.status not in _RETRYABLE_STATUSES:
                    raise
                last, retry_after = err, err.retry_after
            except (ConnectionError, OSError, asyncio.TimeoutError) as err:
                last = err
            await asyncio.sleep(policy.delay(attempt, rng=self._rng, retry_after=retry_after))
        raise ServiceError(503, f"tell not acknowledged after {retries + 1} attempts: {last}")

    async def step(self, session_id: str, n: int = 1) -> dict[str, Any]:
        return await self.request("POST", f"/sessions/{session_id}/step", {"n": n})

    async def complete(self, session_id: str) -> dict[str, Any]:
        return await self.request("POST", f"/sessions/{session_id}/complete")

    # -- convenience --------------------------------------------------------
    async def run_session(
        self,
        session_id: str,
        evaluate,
        batch: int = 1,
        report_prefix: str | None = None,
    ) -> dict[str, Any]:
        """Drive one session's full ask/evaluate/tell loop from the client.

        ``evaluate(config_dict) -> metrics dict`` runs locally. Reports use
        deterministic ids (``{prefix}-{ask_id}``) so the loop survives
        server restarts mid-campaign without duplicating trials.
        """
        prefix = report_prefix or session_id
        outage = 0  # consecutive failed polls; resets once the server answers
        while True:
            retry_after: float | None = None
            try:
                status = await self.status(session_id)
                if status["complete"]:
                    return status
                want = min(batch, status["max_trials"] - status["n_trials"])
                suggestions = await self.ask(session_id, n=want)
            except (ConnectionError, OSError, asyncio.TimeoutError):
                # Server down or restarting: durable sessions make waiting
                # out the outage the whole recovery protocol. Full-jitter
                # backoff keeps a fleet of waiting clients from stampeding
                # the server the instant it returns.
                outage += 1
                await asyncio.sleep(self.backoff.delay(outage - 1, rng=self._rng))
                continue
            except ServiceError as err:
                if err.status == 400:  # completed concurrently
                    return await self.status(session_id)
                if err.status in _RETRYABLE_STATUSES:
                    outage += 1
                    retry_after = err.retry_after
                    await asyncio.sleep(
                        self.backoff.delay(outage - 1, rng=self._rng, retry_after=retry_after)
                    )
                    continue
                raise
            outage = 0
            for suggestion in suggestions:
                metrics = evaluate(suggestion.config)
                report = TrialReport(
                    config=suggestion.config,
                    metrics=metrics,
                    ask_id=suggestion.ask_id,
                    report_id=f"{prefix}-{suggestion.ask_id}",
                )
                await self.tell_reliably(session_id, report)
