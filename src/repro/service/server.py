"""A stdlib-only asyncio HTTP/1.1 server for the tuning service.

No web framework: ``asyncio.start_server`` plus a small, strict HTTP/1.1
request parser (request line, headers, ``Content-Length`` bodies,
keep-alive). That keeps the service inside the repository's
no-new-dependencies rule while still hosting hundreds of concurrent
connections — each connection is one asyncio task, and all blocking work
is delegated to threads by :class:`~repro.service.handlers.ServiceHandlers`.

Durability note: the server itself holds **no** tuning state. Sessions
live in the :class:`~repro.core.journal.TrialStore`; killing the process
at any point and starting a new server over the same store resumes every
session on first touch.
"""

from __future__ import annotations

import asyncio
import re
import time
from contextlib import nullcontext
from typing import Any, Awaitable, Callable

from ..core.journal import StorageError
from ..exceptions import ReproError
from ..telemetry.spans import bind_trace, current_trace_id, parse_traceparent, span
from .handlers import NotFoundError, ServiceHandlers
from .wire import WireError, dump_json, error_body, parse_json_body

__all__ = ["TuningServer", "serve"]

_MAX_HEADER_LINE = 16 * 1024
_MAX_BODY = 16 * 1024 * 1024
_SESSION_PATH = re.compile(r"^/sessions/([A-Za-z0-9._-]+)(?:/([a-z]+))?$")

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


_NULL_CTX = nullcontext()


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class TuningServer:
    """The asyncio tuning service bound to one handlers instance.

    Usage::

        server = TuningServer(handlers, host="127.0.0.1", port=0)
        await server.start()          # server.port holds the bound port
        ...
        await server.stop()           # graceful: drains, closes the store
    """

    def __init__(
        self,
        handlers: ServiceHandlers,
        host: str = "127.0.0.1",
        port: int = 8765,
    ) -> None:
        self.handlers = handlers
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        # Event-loop-local: mutated only from connection tasks, no lock.
        self._in_flight = 0

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "TuningServer":
        if self._server is not None:
            raise ReproError("server already started")
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self, close_handlers: bool = True) -> None:
        """Stop accepting, close connections; optionally release resources.

        ``close_handlers=False`` leaves the store open — used by tests that
        restart a server over the same live store object.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if close_handlers:
            await self.handlers.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- connection handling -------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                status, payload, content_type = await self._serve_request(method, path, headers, body)
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                await self._write_response(writer, status, payload, content_type, keep_alive)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-request; nothing to answer
        except _HttpError as err:
            # Malformed framing: answer if the transport still works, then drop.
            try:
                await self._write_response(
                    writer, err.status, error_body(err.status, str(err)), "application/json", False
                )
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        try:
            request_line = await reader.readline()
        except (ValueError, ConnectionResetError):
            raise _HttpError(400, "request line too long") from None
        if not request_line or request_line in (b"\r\n", b"\n"):
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split()
        except ValueError:
            raise _HttpError(400, f"malformed request line {request_line!r}") from None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if len(line) > _MAX_HEADER_LINE:
                raise _HttpError(400, "header line too long")
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _HttpError(400, f"bad Content-Length {length_text!r}") from None
        if length > _MAX_BODY:
            raise _HttpError(413, f"body of {length} bytes exceeds limit {_MAX_BODY}")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        content_type: str,
        keep_alive: bool,
    ) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    # -- routing ------------------------------------------------------------
    @staticmethod
    def _route_key(method: str, path: str) -> str:
        """Low-cardinality route label for per-route metric series."""
        path = path.split("?", 1)[0]
        if path == "/healthz":
            return "healthz"
        if path == "/metrics":
            return "metrics"
        if path == "/sessions":
            return "sessions"
        match = _SESSION_PATH.match(path)
        if match:
            return f"session.{match.group(2)}" if match.group(2) else "session.status"
        return "unknown"

    async def _serve_request(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, bytes, str]:
        """One request: trace binding, ``http.request`` span, route metrics.

        The inbound ``traceparent`` (if any) is bound *before* the service
        trace activates, so every span recorded while handling — including
        optimizer spans running in worker threads via ``asyncio.to_thread``,
        which copies this context — carries the caller's trace id and the
        client and server traces stitch into one Chrome trace.
        """
        route = self._route_key(method, path)
        inbound = parse_traceparent(headers.get("traceparent"))
        metrics = self.handlers.metrics
        self._in_flight += 1
        metrics.set_gauge("http.requests.in_flight", self._in_flight)
        t0 = time.perf_counter()
        try:
            with (bind_trace(inbound) if inbound is not None else _NULL_CTX):
                with self.handlers.trace.activated():
                    with span("http.request", route=route, method=method) as op:
                        status, payload, content_type = await self._dispatch(method, path, body)
                        if op is not None:
                            op.set(status=status)
        finally:
            self._in_flight -= 1
            metrics.set_gauge("http.requests.in_flight", self._in_flight)
        elapsed = time.perf_counter() - t0
        metrics.inc("service.requests.total")
        if status >= 400:
            metrics.inc("service.requests.errors")
        metrics.observe("request.seconds", elapsed)
        metrics.observe(f"http.request.seconds.{route}", elapsed)
        metrics.inc(f"http.request.status.{route}.{status}")
        return status, payload, content_type

    async def _dispatch(self, method: str, path: str, body: bytes) -> tuple[int, bytes, str]:
        try:
            return await self._route(method, path, body)
        except WireError as err:
            return 400, error_body(400, str(err), trace_id=current_trace_id()), "application/json"
        except NotFoundError as err:
            return 404, error_body(404, str(err), trace_id=current_trace_id()), "application/json"
        except StorageError as err:
            return 409, error_body(409, str(err), trace_id=current_trace_id()), "application/json"
        except Exception as err:  # noqa: BLE001 - the server must not die with a connection
            self.handlers.metrics.inc("service.requests.crashed")
            return 500, error_body(500, f"{type(err).__name__}: {err}", trace_id=current_trace_id()), "application/json"

    async def _route(self, method: str, path: str, body: bytes) -> tuple[int, bytes, str]:
        path = path.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            return 200, dump_json(await self.handlers.health()), "application/json"
        if path == "/metrics" and method == "GET":
            text = await self.handlers.metrics_text()
            return 200, text.encode("utf-8"), "text/plain; version=0.0.4"
        if path == "/sessions":
            if method == "GET":
                return 200, dump_json(await self.handlers.list_sessions()), "application/json"
            if method == "POST":
                payload = await self.handlers.create_session(parse_json_body(body))
                return 200, dump_json(payload), "application/json"
            raise _HttpError(405, f"{method} not allowed on {path}")
        match = _SESSION_PATH.match(path)
        if match:
            session_id, action = match.group(1), match.group(2)
            if action is None:
                if method != "GET":
                    raise _HttpError(405, f"{method} not allowed on {path}")
                return 200, dump_json(await self.handlers.status(session_id)), "application/json"
            if method != "POST":
                raise _HttpError(405, f"{method} not allowed on {path}")
            handler: Callable[[str, dict[str, Any]], Awaitable[dict[str, Any]]] | None = {
                "ask": self.handlers.ask,
                "tell": self.handlers.tell,
                "step": self.handlers.step,
            }.get(action)
            if handler is not None:
                return 200, dump_json(await handler(session_id, parse_json_body(body))), "application/json"
            if action == "complete":
                return 200, dump_json(await self.handlers.complete(session_id)), "application/json"
        raise NotFoundError(f"no route for {method} {path}")


async def serve(
    store_path: str,
    host: str = "127.0.0.1",
    port: int = 8765,
    backend: str | None = None,
    step_workers: int = 4,
    ready: Callable[["TuningServer"], None] | None = None,
) -> None:
    """Open the store, start a :class:`TuningServer`, and serve until cancelled.

    The entry point behind ``repro serve``. ``ready`` is called with the
    started server (after the port is bound) — the CLI uses it to print
    the address, tests to discover an ephemeral port.
    """
    from ..core.manager import SessionManager
    from ..core.stores import open_store

    manager = SessionManager(open_store(store_path, backend=backend))
    handlers = ServiceHandlers(manager, step_workers=step_workers)
    server = TuningServer(handlers, host=host, port=port)
    await server.start()
    if ready is not None:
        ready(server)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
