"""A stdlib-only asyncio HTTP/1.1 server for the tuning service.

No web framework: ``asyncio.start_server`` plus a small, strict HTTP/1.1
request parser (request line, headers, ``Content-Length`` bodies,
keep-alive). That keeps the service inside the repository's
no-new-dependencies rule while still hosting hundreds of concurrent
connections — each connection is one asyncio task, and all blocking work
is delegated to threads by :class:`~repro.service.handlers.ServiceHandlers`.

Durability note: the server itself holds **no** tuning state. Sessions
live in the :class:`~repro.core.journal.TrialStore`; killing the process
at any point and starting a new server over the same store resumes every
session on first touch.
"""

from __future__ import annotations

import asyncio
import re
import time
from contextlib import nullcontext
from typing import Any, Awaitable, Callable

from ..core.journal import StorageError, TransientStorageError
from ..exceptions import ReproError
from ..telemetry.spans import bind_trace, current_trace_id, emit_event, parse_traceparent, span
from .handlers import NotFoundError, ServiceHandlers
from .wire import WireError, dump_json, error_body, parse_json_body

__all__ = ["TuningServer", "serve"]

_MAX_HEADER_LINE = 16 * 1024
_MAX_BODY = 16 * 1024 * 1024
_SESSION_PATH = re.compile(r"^/sessions/([A-Za-z0-9._-]+)(?:/([a-z]+))?$")

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


_NULL_CTX = nullcontext()


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class TuningServer:
    """The asyncio tuning service bound to one handlers instance.

    Usage::

        server = TuningServer(handlers, host="127.0.0.1", port=0)
        await server.start()          # server.port holds the bound port
        ...
        await server.stop()           # graceful: drains, closes the store
    """

    def __init__(
        self,
        handlers: ServiceHandlers,
        host: str = "127.0.0.1",
        port: int = 8765,
        max_in_flight: int = 64,
        queue_depth: int = 128,
        request_timeout_s: float | None = 30.0,
        retry_after_s: float = 0.1,
        fault_hook: Any | None = None,
    ) -> None:
        self.handlers = handlers
        self.host = host
        self.port = port
        #: Admission control: at most ``max_in_flight`` requests execute
        #: concurrently; up to ``queue_depth`` more wait for a slot; beyond
        #: that the server sheds load with 429 + ``Retry-After`` instead of
        #: letting latency (and memory) grow without bound.
        self.max_in_flight = int(max_in_flight)
        self.queue_depth = int(queue_depth)
        #: Per-request deadline: a dispatch exceeding it answers 503 so a
        #: wedged store or optimizer cannot silently pin a connection.
        self.request_timeout_s = request_timeout_s
        #: The backoff hint (seconds) sent on 429/503 responses.
        self.retry_after_s = float(retry_after_s)
        #: Optional :class:`repro.chaos.ServerFaultHook` consulted once per
        #: accepted connection (chaos testing: resets / accept latency).
        self.fault_hook = fault_hook
        self._server: asyncio.base_events.Server | None = None
        # Event-loop-local: mutated only from connection tasks, no lock.
        self._in_flight = 0
        self._queued = 0
        self._draining = False
        self._capacity: asyncio.Semaphore | None = None
        self._idle: asyncio.Event | None = None

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "TuningServer":
        if self._server is not None:
            raise ReproError("server already started")
        self._capacity = asyncio.Semaphore(self.max_in_flight)
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def is_ready(self) -> bool:
        """Readiness: started and not draining (liveness is answering at all)."""
        return self._server is not None and not self._draining

    async def stop(self, close_handlers: bool = True, drain_timeout_s: float = 5.0) -> None:
        """Graceful drain: stop accepting, let in-flight requests finish,
        close connections; optionally release resources.

        While draining, new requests on surviving keep-alive connections
        get 503 + ``Retry-After`` and ``/healthz?ready`` flips unready, so
        load balancers and clients move on before the listener vanishes.
        ``close_handlers=False`` leaves the store open — used by tests that
        restart a server over the same live store object.
        """
        if self._server is not None:
            self._draining = True
            emit_event(
                "service.drain",
                message="server draining: in-flight requests finishing",
                in_flight=self._in_flight,
                queued=self._queued,
            )
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            if self._idle is not None and drain_timeout_s > 0:
                try:
                    await asyncio.wait_for(self._idle.wait(), timeout=drain_timeout_s)
                except asyncio.TimeoutError:
                    self.handlers.metrics.inc("service.drain.abandoned")
        if close_handlers:
            await self.handlers.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- connection handling -------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            if self.fault_hook is not None and not await self.fault_hook.on_connection():
                return  # injected connection fault: drop without answering
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                status, payload, content_type, extra = await self._serve_request(
                    method, path, headers, body
                )
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                await self._write_response(writer, status, payload, content_type, keep_alive, extra)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-request; nothing to answer
        except _HttpError as err:
            # Malformed framing: answer if the transport still works, then drop.
            try:
                await self._write_response(
                    writer, err.status, error_body(err.status, str(err)), "application/json", False
                )
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        try:
            request_line = await reader.readline()
        except (ValueError, ConnectionResetError):
            raise _HttpError(400, "request line too long") from None
        if not request_line or request_line in (b"\r\n", b"\n"):
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split()
        except ValueError:
            raise _HttpError(400, f"malformed request line {request_line!r}") from None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if len(line) > _MAX_HEADER_LINE:
                raise _HttpError(400, "header line too long")
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _HttpError(400, f"bad Content-Length {length_text!r}") from None
        if length > _MAX_BODY:
            raise _HttpError(413, f"body of {length} bytes exceeds limit {_MAX_BODY}")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        content_type: str,
        keep_alive: bool,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        )
        for name, value in (extra_headers or {}).items():
            head += f"{name}: {value}\r\n"
        head += "\r\n"
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    # -- routing ------------------------------------------------------------
    @staticmethod
    def _route_key(method: str, path: str) -> str:
        """Low-cardinality route label for per-route metric series."""
        path = path.split("?", 1)[0]
        if path == "/healthz":
            return "healthz"
        if path == "/metrics":
            return "metrics"
        if path == "/sessions":
            return "sessions"
        match = _SESSION_PATH.match(path)
        if match:
            return f"session.{match.group(2)}" if match.group(2) else "session.status"
        return "unknown"

    def _retry_headers(self) -> dict[str, str]:
        return {"Retry-After": f"{self.retry_after_s:g}"}

    def _shed(
        self, route: str, status: int, reason: str, message: str
    ) -> tuple[int, bytes, str, dict[str, str]]:
        """Refuse one request at the admission gate (429/503 + Retry-After)."""
        metrics = self.handlers.metrics
        metrics.inc("service.requests.shed")
        metrics.inc(f"http.request.status.{route}.{status}")
        emit_event(
            "service.overload",
            severity="warning",
            message=message,
            route=route,
            reason=reason,
            in_flight=self._in_flight,
            queued=self._queued,
        )
        body = error_body(status, message, retry_after=self.retry_after_s)
        return status, body, "application/json", self._retry_headers()

    async def _serve_request(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, bytes, str, dict[str, str]]:
        """One request: admission control, trace binding, ``http.request``
        span, per-request deadline, route metrics.

        The inbound ``traceparent`` (if any) is bound *before* the service
        trace activates, so every span recorded while handling — including
        optimizer spans running in worker threads via ``asyncio.to_thread``,
        which copies this context — carries the caller's trace id and the
        client and server traces stitch into one Chrome trace.

        ``/healthz`` and ``/metrics`` bypass admission control: probes and
        scrapers must keep working precisely when the service is saturated.
        """
        route = self._route_key(method, path)
        exempt = route in ("healthz", "metrics")
        if self._draining and not exempt:
            return self._shed(route, 503, "draining", "server is draining; retry later")
        acquired = False
        if not exempt and self._capacity is not None:
            if self._capacity.locked():
                if self._queued >= self.queue_depth:
                    return self._shed(
                        route,
                        429,
                        "queue_full",
                        f"server at capacity ({self.max_in_flight} in flight, "
                        f"{self._queued} queued); retry later",
                    )
                self._queued += 1
                self.handlers.metrics.set_gauge("http.requests.queued", self._queued)
                try:
                    await self._capacity.acquire()
                finally:
                    self._queued -= 1
                    self.handlers.metrics.set_gauge("http.requests.queued", self._queued)
            else:
                await self._capacity.acquire()
            acquired = True
        inbound = parse_traceparent(headers.get("traceparent"))
        metrics = self.handlers.metrics
        self._in_flight += 1
        if self._idle is not None:
            self._idle.clear()
        metrics.set_gauge("http.requests.in_flight", self._in_flight)
        t0 = time.perf_counter()
        try:
            with (bind_trace(inbound) if inbound is not None else _NULL_CTX):
                with self.handlers.trace.activated():
                    with span("http.request", route=route, method=method) as op:
                        status, payload, content_type = await self._deadline_dispatch(
                            method, path, body
                        )
                        if op is not None:
                            op.set(status=status)
        finally:
            self._in_flight -= 1
            if self._in_flight == 0 and self._idle is not None:
                self._idle.set()
            metrics.set_gauge("http.requests.in_flight", self._in_flight)
            if acquired:
                assert self._capacity is not None
                self._capacity.release()
        elapsed = time.perf_counter() - t0
        metrics.inc("service.requests.total")
        if status >= 400:
            metrics.inc("service.requests.errors")
        metrics.observe("request.seconds", elapsed)
        metrics.observe(f"http.request.seconds.{route}", elapsed)
        metrics.inc(f"http.request.status.{route}.{status}")
        extra = self._retry_headers() if status in (429, 503) else {}
        return status, payload, content_type, extra

    async def _deadline_dispatch(self, method: str, path: str, body: bytes) -> tuple[int, bytes, str]:
        """Dispatch under the per-request deadline (overrun → 503)."""
        if self.request_timeout_s is None:
            return await self._dispatch(method, path, body)
        try:
            return await asyncio.wait_for(
                self._dispatch(method, path, body), timeout=self.request_timeout_s
            )
        except asyncio.TimeoutError:
            self.handlers.metrics.inc("service.requests.deadline_exceeded")
            payload = error_body(
                503,
                f"request exceeded the {self.request_timeout_s:g}s deadline",
                trace_id=current_trace_id(),
                retry_after=self.retry_after_s,
            )
            return 503, payload, "application/json"

    async def _dispatch(self, method: str, path: str, body: bytes) -> tuple[int, bytes, str]:
        try:
            return await self._route(method, path, body)
        except WireError as err:
            return 400, error_body(400, str(err), trace_id=current_trace_id()), "application/json"
        except NotFoundError as err:
            return 404, error_body(404, str(err), trace_id=current_trace_id()), "application/json"
        except TransientStorageError as err:
            # Retryable store outage (contention, disk pressure, injected
            # chaos): tell the client to back off and try again, never 409.
            self.handlers.metrics.inc("service.requests.storage_transient")
            payload = error_body(
                503, str(err), trace_id=current_trace_id(), retry_after=self.retry_after_s
            )
            return 503, payload, "application/json"
        except StorageError as err:
            return 409, error_body(409, str(err), trace_id=current_trace_id()), "application/json"
        except Exception as err:  # noqa: BLE001 - the server must not die with a connection
            self.handlers.metrics.inc("service.requests.crashed")
            return 500, error_body(500, f"{type(err).__name__}: {err}", trace_id=current_trace_id()), "application/json"

    async def _route(self, method: str, path: str, body: bytes) -> tuple[int, bytes, str]:
        path, _, query = path.partition("?")
        if path == "/healthz" and method == "GET":
            payload = await self.handlers.health()
            payload["ready"] = self.is_ready
            payload["draining"] = self._draining
            # Liveness (bare GET) always answers 200 while the process can
            # serve at all; the readiness probe (?ready) goes 503 during
            # drain so load balancers stop routing before shutdown.
            if "ready" in query.split("&") and not self.is_ready:
                return 503, dump_json(payload), "application/json"
            return 200, dump_json(payload), "application/json"
        if path == "/metrics" and method == "GET":
            text = await self.handlers.metrics_text()
            return 200, text.encode("utf-8"), "text/plain; version=0.0.4"
        if path == "/sessions":
            if method == "GET":
                return 200, dump_json(await self.handlers.list_sessions()), "application/json"
            if method == "POST":
                payload = await self.handlers.create_session(parse_json_body(body))
                return 200, dump_json(payload), "application/json"
            raise _HttpError(405, f"{method} not allowed on {path}")
        match = _SESSION_PATH.match(path)
        if match:
            session_id, action = match.group(1), match.group(2)
            if action is None:
                if method != "GET":
                    raise _HttpError(405, f"{method} not allowed on {path}")
                return 200, dump_json(await self.handlers.status(session_id)), "application/json"
            if method != "POST":
                raise _HttpError(405, f"{method} not allowed on {path}")
            handler: Callable[[str, dict[str, Any]], Awaitable[dict[str, Any]]] | None = {
                "ask": self.handlers.ask,
                "tell": self.handlers.tell,
                "step": self.handlers.step,
            }.get(action)
            if handler is not None:
                return 200, dump_json(await handler(session_id, parse_json_body(body))), "application/json"
            if action == "complete":
                return 200, dump_json(await self.handlers.complete(session_id)), "application/json"
        raise NotFoundError(f"no route for {method} {path}")


async def serve(
    store_path: str,
    host: str = "127.0.0.1",
    port: int = 8765,
    backend: str | None = None,
    step_workers: int = 4,
    ready: Callable[["TuningServer"], None] | None = None,
    max_in_flight: int = 64,
    queue_depth: int = 128,
    request_timeout_s: float | None = 30.0,
) -> None:
    """Open the store, start a :class:`TuningServer`, and serve until cancelled.

    The entry point behind ``repro serve``. ``ready`` is called with the
    started server (after the port is bound) — the CLI uses it to print
    the address, tests to discover an ephemeral port.
    """
    from ..core.manager import SessionManager
    from ..core.stores import open_store

    manager = SessionManager(open_store(store_path, backend=backend))
    handlers = ServiceHandlers(manager, step_workers=step_workers)
    server = TuningServer(
        handlers,
        host=host,
        port=port,
        max_in_flight=max_in_flight,
        queue_depth=queue_depth,
        request_timeout_s=request_timeout_s,
    )
    await server.start()
    if ready is not None:
        ready(server)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
