"""The service wire schema: JSON bodies ↔ the core codec dataclasses.

There is deliberately no service-specific trial shape: ``/ask`` returns
:class:`~repro.core.codec.Suggestion` payloads and ``/tell`` accepts
:class:`~repro.core.codec.TrialReport` payloads — the very dataclasses
:meth:`TuningSession.ask`/``tell`` use in-process, serialised by the same
codec. This module adds only what HTTP needs on top: the create-session
request, error envelopes, and strict JSON body parsing.

Endpoints (see ``docs/service.md`` for the full contract)::

    GET  /healthz                      liveness
    GET  /metrics                      Prometheus text exposition
    GET  /sessions                     list session ids
    POST /sessions                     create (CreateSessionRequest)
    GET  /sessions/{id}                status snapshot
    POST /sessions/{id}/ask            SuggestRequest -> {suggestions: [...]}
    POST /sessions/{id}/tell           TrialReport -> {trial_id, duplicate}
    POST /sessions/{id}/step           server-side evaluate n trials
    POST /sessions/{id}/complete       mark finished
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core.codec import CodecError, SuggestRequest, TrialReport, json_safe
from ..exceptions import ReproError

__all__ = [
    "WireError",
    "CreateSessionRequest",
    "parse_json_body",
    "dump_json",
    "error_body",
    "SuggestRequest",
    "TrialReport",
]


class WireError(ReproError):
    """A malformed request body or parameter (maps to HTTP 400)."""


def parse_json_body(body: bytes) -> dict[str, Any]:
    """Decode a request body as a JSON object (empty body → ``{}``)."""
    if not body:
        return {}
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise WireError(f"request body is not valid JSON: {err}") from err
    if not isinstance(data, dict):
        raise WireError(f"request body must be a JSON object, got {type(data).__name__}")
    return data


def dump_json(payload: Any) -> bytes:
    return json.dumps(json_safe(payload), separators=(",", ":")).encode("utf-8")


def error_body(
    status: int,
    message: str,
    trace_id: str | None = None,
    retry_after: float | None = None,
) -> bytes:
    """JSON error envelope; carries the request's trace id when one is bound.

    Without the id, a failed request is invisible in traces — the client
    sees an opaque 4xx/5xx and cannot find the matching server-side
    ``http.request`` span. The server passes the current distributed trace
    id so every error response is greppable in a stitched Chrome trace.

    ``retry_after`` mirrors the ``Retry-After`` response header into the
    body for clients that only see the envelope (e.g. through proxies that
    strip nonstandard headers): 429/503 responses carry the server's
    backoff hint in both places.
    """
    error: dict[str, Any] = {"status": status, "message": message}
    if trace_id is not None:
        error["trace_id"] = trace_id
    if retry_after is not None:
        error["retry_after"] = retry_after
    return dump_json({"error": error})


@dataclass(frozen=True)
class CreateSessionRequest:
    """Body of ``POST /sessions``.

    Exactly one of ``space`` (a :func:`~repro.space.serialize.space_to_dict`
    description — client-defined knobs) or ``target`` (a registered
    simulated-system spec, see :mod:`repro.targets`; enables server-side
    ``/step`` evaluation and implies the space) must be given.
    """

    optimizer: str = "random"
    max_trials: int = 100
    space: dict[str, Any] | None = None
    target: dict[str, Any] | None = None
    objectives: list[dict[str, Any]] = field(default_factory=list)
    max_cost: float | None = None
    seed: int | None = None
    optimizer_options: dict[str, Any] = field(default_factory=dict)
    session_id: str | None = None
    resume: bool = False  # if the id already exists, resume instead of erroring
    strict: bool = False  # reject spaces with ERROR-severity lint findings
    lint_ignore: list[str] = field(default_factory=list)  # rule ids to suppress

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CreateSessionRequest":
        space = data.get("space")
        target = data.get("target")
        if (space is None) == (target is None):
            raise WireError("provide exactly one of 'space' or 'target'")
        try:
            return cls(
                optimizer=str(data.get("optimizer", "random")),
                max_trials=int(data.get("max_trials", 100)),
                space=None if space is None else dict(space),
                target=None if target is None else dict(target),
                objectives=[dict(o) for o in data.get("objectives", [])],
                max_cost=None if data.get("max_cost") is None else float(data["max_cost"]),
                seed=None if data.get("seed") is None else int(data["seed"]),
                optimizer_options=dict(data.get("optimizer_options", {})),
                session_id=None if data.get("session_id") is None else str(data["session_id"]),
                resume=bool(data.get("resume", False)),
                strict=bool(data.get("strict", False)),
                lint_ignore=[str(r) for r in data.get("lint_ignore", [])],
            )
        except (TypeError, ValueError) as err:
            raise WireError(f"malformed create-session request: {err}") from err


def parse_suggest_request(data: Mapping[str, Any]) -> SuggestRequest:
    try:
        return SuggestRequest.from_dict(data)
    except CodecError as err:
        raise WireError(str(err)) from err


def parse_trial_report(data: Mapping[str, Any]) -> TrialReport:
    try:
        return TrialReport.from_dict(data)
    except CodecError as err:
        raise WireError(str(err)) from err
