"""Named tuning targets: build systems, workloads, and evaluators from specs.

The CLI and the HTTP service both need to turn string specs —
``system="dbms"``, ``workload="tpcc-100"``, ``metric="throughput"`` — into
a simulated system, a workload, and an evaluator callable. This module is
the single registry both consult, so a session created with
``repro tune --system dbms`` and one created over the wire with
``{"system": "dbms"}`` mean exactly the same thing.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from .core import Objective
from .exceptions import ReproError
from .space import Configuration
from .sysim import (
    CloudEnvironment,
    NginxServer,
    RedisServer,
    SimulatedDBMS,
    SparkCluster,
    redis_benchmark_workload,
    web_workload,
)
from .workloads import tpcc, tpch, ycsb

__all__ = [
    "SYSTEMS",
    "make_system",
    "make_workload",
    "objective_for",
    "make_evaluator",
    "target_spec",
]

SYSTEMS = ("dbms", "redis", "nginx", "spark")


def make_system(name: str, seed: int = 0, noise: float = 0.03):
    """Instantiate a simulated target system by name."""
    env = CloudEnvironment(seed=seed, transient_noise=noise)
    if name == "dbms":
        return SimulatedDBMS(env=env, seed=seed)
    if name == "redis":
        return RedisServer(env=env, seed=seed)
    if name == "nginx":
        return NginxServer(env=env, seed=seed)
    if name == "spark":
        return SparkCluster(n_nodes=10, env=env, seed=seed)
    raise ReproError(f"unknown system {name!r}; choose from {SYSTEMS}")


def make_workload(system: str, name: str):
    """Build a workload from its string spec (``ycsb-a``, ``tpcc-100``, …)."""
    if name.startswith("ycsb"):
        return ycsb(name.removeprefix("ycsb-") or "a")
    if name.startswith("tpcc"):
        part = name.removeprefix("tpcc").lstrip("-")
        return tpcc(int(part) if part else 100)
    if name.startswith("tpch"):
        part = name.removeprefix("tpch").lstrip("-")
        return tpch(float(part) if part else 10.0)
    if name == "default":
        return {
            "dbms": tpcc(100),
            "redis": redis_benchmark_workload(),
            "nginx": web_workload(),
            "spark": tpch(10.0, concurrency=4),
        }[system]
    raise ReproError(f"unknown workload {name!r}")


def objective_for(metric: str) -> Objective:
    """The conventional direction of a metric: throughput up, the rest down."""
    return Objective(metric, minimize=not metric.startswith("throughput"))


def make_evaluator(
    system: str,
    workload: str = "default",
    metric: str = "throughput",
    seed: int = 0,
    noise: float = 0.03,
) -> Callable[[Configuration], Any]:
    """An evaluator callable for the named target (plus its space).

    Returns ``(evaluator, space, objective)`` so callers can create a
    session and evaluate server-side with one registry lookup.
    """
    sys_obj = make_system(system, seed=seed, noise=noise)
    wl = make_workload(system, workload)
    return sys_obj.evaluator(wl, metric), sys_obj.space, objective_for(metric)


def target_spec(spec: Mapping[str, Any]):
    """Resolve a wire-level target spec dict.

    ``{"system": "dbms", "workload": "tpcc-100", "metric": "throughput",
    "seed": 0, "noise": 0.03}`` → ``(evaluator, space, objective)``.
    """
    try:
        system = str(spec["system"])
    except KeyError:
        raise ReproError("target spec needs a 'system' key") from None
    return make_evaluator(
        system,
        workload=str(spec.get("workload", "default")),
        metric=str(spec.get("metric", "throughput")),
        seed=int(spec.get("seed", 0)),
        noise=float(spec.get("noise", 0.03)),
    )
