"""Knob discovery from documentation (the simulated-LLM pipeline)."""

from .discovery import DiscoveredKnob, ManualKnowledgeExtractor
from .manual import DBMS_MANUAL, ManualEntry

__all__ = ["DiscoveredKnob", "ManualKnowledgeExtractor", "DBMS_MANUAL", "ManualEntry"]
