"""A structured knob-manual corpus — what the LLM would read (slide 63).

DB-BERT and GPTuner mine "manuals, documentation, source code,
StackOverflow" for which knobs matter and what ranges make sense. This
module is the corpus: documentation entries for the simulated DBMS's knobs
written in the style of real PostgreSQL/MySQL docs, including the hedged,
qualitative language ("can significantly improve", "rarely needs changing")
that an extractor must interpret.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ManualEntry", "DBMS_MANUAL"]


@dataclass(frozen=True)
class ManualEntry:
    """One knob's documentation.

    ``text`` is the free-form doc; everything an extractor learns must come
    from the text itself (the structured fields below exist only for
    corpus-validation tests, mirroring how GPTuner evaluates extraction
    against expert labels).
    """

    knob: str
    text: str
    expert_importance: float = 0.0  # ground-truth label in [0, 1]
    expert_range_hint: tuple[float, float] | None = None  # unit-space hint
    related: tuple[str, ...] = field(default_factory=tuple)


DBMS_MANUAL: dict[str, ManualEntry] = {
    e.knob: e
    for e in [
        ManualEntry(
            "buffer_pool_mb",
            "Sets the amount of memory the database server uses for shared data "
            "buffers. This parameter has a significant impact on performance: a "
            "value that is too small leaves most reads going to disk, while a "
            "reasonable starting point on a dedicated server is 50% to 75% of "
            "system memory. Critical for read-heavy workloads. Requires restart.",
            expert_importance=1.0,
            expert_range_hint=(0.6, 0.95),
            related=("wal_buffer_mb",),
        ),
        ManualEntry(
            "worker_threads",
            "Maximum number of worker threads servicing client requests. Setting "
            "this too low severely limits throughput under concurrent load; "
            "setting it far above the core count can cause contention. A "
            "significant performance factor for OLTP systems; tune to match "
            "expected concurrency. Requires restart.",
            expert_importance=0.9,
            expert_range_hint=(0.5, 0.9),
        ),
        ManualEntry(
            "flush_method",
            "Method used to force WAL and data to disk. The default (fsync) is "
            "the safest but slowest; O_DIRECT variants can significantly improve "
            "write throughput on battery-backed or enterprise storage by "
            "bypassing the OS cache. nosync is unsafe and should never be used "
            "in production. Important for write-heavy workloads.",
            expert_importance=0.85,
        ),
        ManualEntry(
            "work_mem_mb",
            "Memory used by internal sort operations and hash tables before "
            "spilling to temporary disk files. Queries with large sorts or joins "
            "benefit significantly from higher values, but note that several "
            "sessions may each use this much memory. Important for analytical "
            "workloads; a common performance bottleneck when left at the default.",
            expert_importance=0.8,
            expert_range_hint=(0.4, 0.9),
        ),
        ManualEntry(
            "checkpoint_interval_s",
            "Maximum time between automatic WAL checkpoints. Frequent checkpoints "
            "add significant write amplification; very long intervals increase "
            "crash-recovery time and can cause latency spikes. Tuning this "
            "matters for update-heavy systems.",
            expert_importance=0.6,
            expert_range_hint=(0.5, 0.9),
        ),
        ManualEntry(
            "wal_buffer_mb",
            "The amount of shared memory used for WAL data not yet written to "
            "disk. Values larger than the default can improve performance on "
            "busy write-heavy servers, with diminishing returns past a few "
            "dozen megabytes.",
            expert_importance=0.4,
            expert_range_hint=(0.4, 0.8),
        ),
        ManualEntry(
            "io_concurrency",
            "Number of concurrent disk I/O operations the server attempts to "
            "issue. Raising this can improve performance for bitmap heap scans "
            "on SSDs and striped storage.",
            expert_importance=0.35,
        ),
        ManualEntry(
            "parallel_workers",
            "Maximum parallel workers per query. Analytical scans can improve "
            "substantially with more workers, up to the number of cores.",
            expert_importance=0.4,
        ),
        ManualEntry(
            "jit",
            "Enables just-in-time compilation of expressions. Can improve "
            "performance of long-running analytical queries; adds compilation "
            "overhead to short queries.",
            expert_importance=0.3,
            related=("jit_above_cost",),
        ),
        ManualEntry(
            "jit_above_cost",
            "Query cost above which JIT compilation is activated. Only relevant "
            "when jit is enabled.",
            expert_importance=0.2,
            related=("jit",),
        ),
        ManualEntry(
            "compression",
            "Compresses table pages on disk. Trades CPU for I/O: can help on "
            "slow storage with compressible data, can hurt on CPU-bound systems.",
            expert_importance=0.25,
        ),
        ManualEntry(
            "log_level",
            "Controls the verbosity of the server log. Debug levels add "
            "measurable overhead and are not recommended in production.",
            expert_importance=0.15,
        ),
        ManualEntry(
            "autovacuum_workers",
            "Number of background vacuum workers. Too few lets dead tuples "
            "accumulate on update-heavy tables; too many can interfere with "
            "foreground work. Minor impact for most workloads.",
            expert_importance=0.2,
        ),
        ManualEntry(
            "random_page_cost",
            "The planner's estimate of the cost of a non-sequential page fetch. "
            "Lowering it toward 1.1 on SSD storage can improve plan quality for "
            "index scans. Moderate impact.",
            expert_importance=0.25,
            expert_range_hint=(0.0, 0.3),
        ),
        ManualEntry(
            "stats_target",
            "Default statistics sampling target for the planner. Rarely needs "
            "changing; the default is adequate for almost all workloads.",
            expert_importance=0.05,
        ),
        ManualEntry(
            "deadlock_timeout_ms",
            "Time to wait on a lock before checking for deadlock. Rarely needs "
            "changing; has no effect on performance in the absence of lock "
            "contention pathologies.",
            expert_importance=0.02,
        ),
        ManualEntry(
            "tcp_keepalive_s",
            "Interval between TCP keepalive probes on idle client connections. "
            "No effect on query performance; purely a connection-liveness "
            "setting.",
            expert_importance=0.0,
        ),
        ManualEntry(
            "cursor_tuple_fraction",
            "Planner estimate of the fraction of a cursor's rows that will be "
            "retrieved. Rarely needs changing outside unusual cursor-heavy "
            "applications.",
            expert_importance=0.02,
        ),
        ManualEntry(
            "geqo_threshold",
            "Number of FROM items above which the genetic query optimizer is "
            "used. Rarely needs changing; only affects planning of very large "
            "join queries.",
            expert_importance=0.02,
        ),
        ManualEntry(
            "bgwriter_delay_ms",
            "Delay between background writer rounds. The default is adequate "
            "for almost all workloads; minor effect on checkpoint smoothing.",
            expert_importance=0.05,
        ),
        ManualEntry(
            "temp_buffers_mb",
            "Memory for temporary tables per session. Only matters for "
            "applications making heavy use of temporary tables.",
            expert_importance=0.05,
        ),
    ]
}
