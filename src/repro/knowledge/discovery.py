"""Manual-driven knob discovery — the simulated LLM (slides 63–64).

DB-BERT/GPTuner use a language model to (1) identify the important tuning
knobs and (2) bias their search ranges, from documentation text. Here the
"language model" is a deterministic keyword scorer over the same corpus —
the *downstream interface is identical*: a ranked knob subset plus priors
handed to any optimizer. (DESIGN.md records this substitution.)
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..exceptions import ReproError
from ..space import ConfigurationSpace, NormalPrior, Prior
from .manual import DBMS_MANUAL, ManualEntry

__all__ = ["DiscoveredKnob", "ManualKnowledgeExtractor"]

#: Phrase weights: how strongly doc language signals tuning importance.
_POSITIVE_PATTERNS: tuple[tuple[str, float], ...] = (
    (r"significant(ly)? (impact|improve|performance)", 3.0),
    (r"critical", 3.0),
    (r"severely limits", 2.5),
    (r"performance bottleneck", 2.5),
    (r"significant", 2.0),
    (r"substantially", 1.5),
    (r"can (improve|help)", 1.0),
    (r"benefit", 1.0),
    (r"important", 1.5),
    (r"bottleneck", 1.5),
    (r"tune", 0.5),
)

_NEGATIVE_PATTERNS: tuple[tuple[str, float], ...] = (
    (r"rarely needs changing", -3.0),
    (r"no effect", -3.0),
    (r"adequate for almost all", -2.5),
    (r"only (matters|relevant|affects)", -1.5),
    (r"minor (impact|effect)", -1.5),
    (r"purely a", -2.0),
)

#: Range-hint phrases → suggested unit-interval prior centres.
_RANGE_HINTS: tuple[tuple[str, float], ...] = (
    (r"50% to 75% of (system )?memory", 0.8),
    (r"match expected concurrency", 0.7),
    (r"higher values", 0.7),
    (r"larger than the default", 0.65),
    (r"lowering it", 0.15),
    (r"toward 1\.1", 0.1),
)


@dataclass(frozen=True)
class DiscoveredKnob:
    """One extractor verdict: knob, relevance score, optional range prior."""

    knob: str
    score: float
    prior: Prior | None = None
    evidence: tuple[str, ...] = ()


class ManualKnowledgeExtractor:
    """Scores knobs from documentation text and proposes search priors.

    Parameters
    ----------
    manual:
        The corpus (defaults to the simulated DBMS manual).
    prior_std:
        Width of the Normal priors placed at hinted range centres.
    """

    def __init__(self, manual: dict[str, ManualEntry] | None = None, prior_std: float = 0.15) -> None:
        self.manual = manual if manual is not None else DBMS_MANUAL
        if prior_std <= 0:
            raise ReproError(f"prior_std must be positive, got {prior_std}")
        self.prior_std = float(prior_std)

    def _score_text(self, text: str) -> tuple[float, list[str]]:
        text = text.lower()
        score = 0.0
        evidence = []
        for pattern, weight in _POSITIVE_PATTERNS + _NEGATIVE_PATTERNS:
            hits = len(re.findall(pattern, text))
            if hits:
                score += weight * hits
                evidence.append(pattern)
        return score, evidence

    def _range_prior(self, text: str) -> Prior | None:
        text = text.lower()
        for pattern, center in _RANGE_HINTS:
            if re.search(pattern, text):
                return NormalPrior(center, self.prior_std)
        return None

    def discover(self, knobs: list[str] | None = None) -> list[DiscoveredKnob]:
        """Rank knobs by extracted importance, descending."""
        names = knobs if knobs is not None else list(self.manual)
        out = []
        for name in names:
            entry = self.manual.get(name)
            if entry is None:
                out.append(DiscoveredKnob(name, 0.0))
                continue
            score, evidence = self._score_text(entry.text)
            out.append(
                DiscoveredKnob(name, score, self._range_prior(entry.text), tuple(evidence))
            )
        out.sort(key=lambda d: -d.score)
        return out

    def important_knobs(self, k: int = 5, knobs: list[str] | None = None) -> list[str]:
        """The top-k knobs by extracted importance."""
        return [d.knob for d in self.discover(knobs)[: max(1, k)]]

    def informed_space(self, space: ConfigurationSpace, k: int = 5) -> ConfigurationSpace:
        """A reduced, prior-biased copy of ``space``: the GPTuner pipeline.

        Keeps the top-k discovered knobs (plus any knob a kept conditional
        child depends on) and installs range priors where the manual hints
        at one.
        """
        from ..optimizers.transfer import space_with_priors

        discovered = self.discover([n for n in space.names])
        keep = {d.knob for d in discovered[: max(1, k)]}
        # Pull in condition parents so the subspace stays well-formed.
        for cond in space.conditions:
            if cond.child in keep:
                keep.add(cond.parent)
        sub = space.subspace([n for n in space.names if n in keep], name=f"{space.name}+manual")
        priors = {
            d.knob: d.prior
            for d in discovered
            if d.prior is not None and d.knob in sub and sub[d.knob].is_numeric
        }
        return space_with_priors(sub, priors)
