"""``python -m repro.staticcheck [paths...]`` — the CI entry point.

Runs the AST invariant checkers over the given paths (default: ``src``)
and, with ``--spaces``, the space linter over every registered
``repro.targets`` system space. Exit code 0 iff no ERROR-severity finding
is active (suppressed findings are reported and counted but never fail
the run; warnings fail only under ``--strict-warnings``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .astlint import lint_paths
from .findings import LintReport
from .spacelint import lint_space

__all__ = ["main"]


def _lint_target_spaces() -> list[LintReport]:
    from ..targets import SYSTEMS, make_system

    reports = []
    for name in SYSTEMS:
        system = make_system(name, seed=0)
        reports.append(lint_space(system.space))
    return reports


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck", description=__doc__
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to AST-lint (default: src)")
    parser.add_argument("--spaces", action="store_true",
                        help="also space-lint every registered repro.targets system")
    parser.add_argument("--strict-warnings", action="store_true",
                        help="fail on warnings too, not only errors")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the per-report summary lines")
    args = parser.parse_args(argv)

    reports: list[LintReport] = [lint_paths(args.paths)]
    if args.spaces:
        reports.extend(_lint_target_spaces())

    failed = False
    for report in reports:
        if args.quiet or report.clean:
            print(f"lint {report.target}: {report.summary()}")
        else:
            print(report.format(show_suppressed=True))
        if report.errors or (args.strict_warnings and report.warnings):
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
