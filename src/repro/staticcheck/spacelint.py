"""Prong 1: the ConfigurationSpace linter.

A rule engine over :class:`~repro.space.ConfigurationSpace` objects (or
their :func:`~repro.space.serialize.space_to_dict` wire descriptions) that
finds the defects the paper's challenge list says tuners silently pay for
at runtime: unsatisfiable or cyclic condition graphs, dead parameters the
optimizer wastes dimensions on, contradictory or vacuous constraints that
turn rejection sampling into an infinite loop, priors with no mass inside
the parameter's range, and non-serialisable members that a service session
will silently lose across a process boundary.

Entry point: :func:`lint_space` → :class:`SpaceLintReport`. Severity
semantics and the rule catalog live in ``docs/static-analysis.md``;
``SessionManager.create(strict=True)`` rejects any space whose report
carries an ERROR finding.

The analysis is purely static — no sampling, no evaluator calls. Condition
satisfiability is decided analytically per condition type (thresholds vs
bounds, pins vs domains) and jointly per (child, parent) group under the
AND semantics of :meth:`ConfigurationSpace.active_names`; deadness then
propagates through the activation DAG to a fixpoint.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..space import ConfigurationSpace
from ..space.conditions import (
    CallableCondition,
    Condition,
    EqualsCondition,
    GreaterThanCondition,
    InCondition,
    LessThanCondition,
)
from ..space.constraints import Constraint, LinearConstraint, RatioConstraint
from ..space.params import (
    CategoricalParameter,
    FloatParameter,
    IntegerParameter,
    Parameter,
    _NumericParameter,
)
from ..space.priors import BetaPrior, HistogramPrior, NormalPrior, UniformPrior
from ..exceptions import ConstraintViolationError, SpaceError
from .findings import Finding, Severity, SpaceLintReport

__all__ = ["lint_space", "SPACE_RULES"]

#: The rule catalog: id -> (severity, one-line description). Kept here so the
#: docs table, the CLI ``--explain`` output, and the tests share one source.
SPACE_RULES: dict[str, tuple[Severity, str]] = {
    "SP101": (Severity.ERROR, "duplicate parameter name"),
    "SP102": (Severity.WARNING, "parameter names differ only by case/word separators"),
    "SP103": (Severity.ERROR, "space has no parameters"),
    "SP104": (Severity.ERROR, "malformed space description"),
    "SP201": (Severity.ERROR, "condition can never hold for any parent value"),
    "SP202": (Severity.WARNING, "condition holds for every parent value (redundant)"),
    "SP203": (Severity.ERROR, "parameter can never become active (dead region)"),
    "SP204": (Severity.ERROR, "cycle in the condition graph"),
    "SP205": (Severity.ERROR, "condition references an unknown parameter"),
    "SP206": (Severity.ERROR, "parameter conditioned on itself"),
    "SP301": (Severity.ERROR, "constraint excludes every point in the space"),
    "SP302": (Severity.WARNING, "constraint holds everywhere (redundant)"),
    "SP303": (Severity.WARNING, "constraint references an unknown parameter (never applies)"),
    "SP304": (Severity.ERROR, "constraint applies arithmetic to a non-numeric parameter"),
    "SP305": (Severity.WARNING, "duplicate constraint"),
    "SP306": (Severity.ERROR, "constraints contradict each other"),
    "SP307": (Severity.ERROR, "default configuration is infeasible"),
    "SP401": (Severity.WARNING, "condition holds a Python callable and cannot be serialised"),
    "SP402": (Severity.WARNING, "constraint cannot be serialised (dropped in service sessions)"),
    "SP501": (Severity.ERROR, "prior has no mass inside the parameter's range"),
    "SP502": (Severity.WARNING, "prior collapses onto a single achievable value"),
    "SP503": (Severity.ERROR, "log-scale parameter with non-positive lower bound"),
    "SP504": (Severity.ERROR, "lower bound is not below upper bound"),
}


def _finding(rule: str, subject: str, message: str, hint: str = "") -> Finding:
    severity, _ = SPACE_RULES[rule]
    return Finding(rule=rule, severity=severity, subject=subject, message=message, hint=hint)


# -- condition satisfiability --------------------------------------------------

def _condition_truth(cond: Condition, parent: Parameter) -> bool | None:
    """Decide a single condition over the parent's whole domain.

    Returns ``True`` if it holds for every parent value, ``False`` if it can
    never hold, ``None`` if it is genuinely value-dependent (the healthy
    case) or undecidable (callable predicates on unbounded domains).
    """
    if isinstance(parent, CategoricalParameter):
        try:
            truths = [bool(cond.evaluate(c)) for c in parent.choices]
        except Exception:
            return None  # predicate crashed on a choice: undecidable here
        if not any(truths):
            return False
        if all(truths):
            return True
        return None
    if isinstance(parent, _NumericParameter):
        lo, hi = parent.lower, parent.upper
        if isinstance(cond, EqualsCondition):
            return None if parent.validate(cond.value) else False
        if isinstance(cond, InCondition):
            valid = [v for v in cond.values if parent.validate(v)]
            if not valid:
                return False
            return None
        if isinstance(cond, GreaterThanCondition):
            if cond.threshold >= hi:
                return False
            if cond.threshold < lo:
                return True
            return None
        if isinstance(cond, LessThanCondition):
            if cond.threshold <= lo:
                return False
            if cond.threshold > hi:
                return True
            return None
    return None  # callable condition on a numeric parent: undecidable


def _joint_feasible(conds: Sequence[Condition], parent: Parameter) -> bool | None:
    """Can ALL of ``conds`` (sharing one parent) hold simultaneously?

    ``None`` means undecidable (a callable predicate participates).
    """
    if any(isinstance(c, CallableCondition) for c in conds):
        return None
    if isinstance(parent, CategoricalParameter):
        try:
            return any(all(c.evaluate(choice) for c in conds) for choice in parent.choices)
        except Exception:
            return None
    if not isinstance(parent, _NumericParameter):
        return None
    # Numeric parent: intersect pins (Equals/In) with strict threshold bounds.
    pins: list[set[float]] = []
    glo: float | None = None  # v > glo
    ghi: float | None = None  # v < ghi
    for c in conds:
        if isinstance(c, EqualsCondition):
            pins.append({c.value} if parent.validate(c.value) else set())
        elif isinstance(c, InCondition):
            pins.append({v for v in c.values if parent.validate(v)})
        elif isinstance(c, GreaterThanCondition):
            glo = c.threshold if glo is None else max(glo, c.threshold)
        elif isinstance(c, LessThanCondition):
            ghi = c.threshold if ghi is None else min(ghi, c.threshold)
    if pins:
        candidates = set.intersection(*pins) if pins else set()
        return any(
            (glo is None or v > glo) and (ghi is None or v < ghi) for v in candidates
        )
    lo, hi = parent.lower, parent.upper
    if isinstance(parent, IntegerParameter):
        lo_int = int(lo) if glo is None else max(int(lo), math.floor(glo) + 1)
        hi_int = int(hi) if ghi is None else min(int(hi), math.ceil(ghi) - 1)
        return lo_int <= hi_int
    eff_lo = lo if glo is None else max(lo, glo)
    eff_hi = hi if ghi is None else min(hi, ghi)
    if eff_lo > eff_hi:
        return False
    if eff_lo == eff_hi:
        # Single point: only reachable if both ends are closed (no threshold
        # bound landed exactly there).
        open_lo = glo is not None and glo >= lo
        open_hi = ghi is not None and ghi <= hi
        return not (open_lo or open_hi)
    return True


def _describe_condition(cond: Condition) -> str:
    if isinstance(cond, EqualsCondition):
        return f"{cond.parent} == {cond.value!r}"
    if isinstance(cond, InCondition):
        return f"{cond.parent} in {sorted(cond.values, key=repr)!r}"
    if isinstance(cond, GreaterThanCondition):
        return f"{cond.parent} > {cond.threshold!r}"
    if isinstance(cond, LessThanCondition):
        return f"{cond.parent} < {cond.threshold!r}"
    return f"callable predicate over {cond.parent}"


# -- rule groups ---------------------------------------------------------------

def _lint_names(space: ConfigurationSpace, report: SpaceLintReport) -> None:
    if not space.names:
        report.add(_finding("SP103", space.name, "space has no parameters", "add at least one Parameter"))
        return
    canon: dict[str, str] = {}
    for name in space.names:
        key = name.lower().replace("-", "").replace("_", "")
        if key in canon and canon[key] != name:
            report.add(_finding(
                "SP102", name,
                f"name {name!r} differs from {canon[key]!r} only by case/word separators",
                "rename one of them; lookalike knobs invite silent misconfiguration",
            ))
        else:
            canon.setdefault(key, name)


def _lint_conditions(space: ConfigurationSpace, report: SpaceLintReport) -> set[str]:
    """Condition-graph rules. Returns the set of dead parameter names."""
    by_child: dict[str, list[Condition]] = {}
    for cond in space.conditions:
        by_child.setdefault(cond.child, []).append(cond)

    # Cycles (defensive: add_condition refuses them, but dict-built or
    # hand-mutated spaces can carry one).
    state: dict[str, int] = {}
    cyclic: set[str] = set()

    def visit(node: str, stack: tuple[str, ...]) -> None:
        if state.get(node) == 1:
            cyclic.update(stack[stack.index(node):])
            return
        if state.get(node) == 2:
            return
        state[node] = 1
        for c in by_child.get(node, ()):
            visit(c.parent, stack + (node,))
        state[node] = 2

    for child in by_child:
        visit(child, ())
    for name in sorted(cyclic):
        report.add(_finding(
            "SP204", name,
            f"parameter {name!r} participates in a condition cycle",
            "break the cycle; activation is only well-defined on a DAG",
        ))

    dead: set[str] = set()
    undecidable: set[str] = set()
    for child, conds in by_child.items():
        child_dead = False
        for cond in conds:
            if isinstance(cond, CallableCondition):
                report.add(_finding(
                    "SP401", child,
                    f"condition on {child!r} ({_describe_condition(cond)}) holds a Python "
                    "callable and cannot be serialised; a resumed/service session drops it",
                    "express it with Equals/In/GreaterThan/LessThan conditions",
                ))
                undecidable.add(child)
                continue
            parent = space[cond.parent]
            truth = _condition_truth(cond, parent)
            if truth is False:
                report.add(_finding(
                    "SP201", child,
                    f"condition ({_describe_condition(cond)}) can never hold: no value of "
                    f"{cond.parent!r} satisfies it",
                    f"widen the condition or fix the domain of {cond.parent!r}",
                ))
                child_dead = True
            elif truth is True:
                report.add(_finding(
                    "SP202", child,
                    f"condition ({_describe_condition(cond)}) holds for every value of "
                    f"{cond.parent!r}; it never deactivates {child!r}",
                    "drop the condition or tighten its predicate",
                ))
        # Joint (AND) analysis per parent: chained thresholds/pins that are
        # individually fine can jointly exclude every value.
        if not child_dead and child not in undecidable and child not in cyclic:
            by_parent: dict[str, list[Condition]] = {}
            for cond in conds:
                by_parent.setdefault(cond.parent, []).append(cond)
            for parent_name, group in by_parent.items():
                if len(group) < 2:
                    continue
                feasible = _joint_feasible(group, space[parent_name])
                if feasible is False:
                    clauses = " AND ".join(_describe_condition(c) for c in group)
                    report.add(_finding(
                        "SP203", child,
                        f"conditions on {child!r} jointly exclude every value of "
                        f"{parent_name!r} ({clauses})",
                        "relax one of the conditions; as written the parameter is dead",
                    ))
                    child_dead = True
                    break
        if child_dead:
            dead.add(child)

    # Transitive deadness: a child needs *all* its parents active, so one
    # dead parent kills the whole subtree.
    changed = True
    while changed:
        changed = False
        for child, conds in by_child.items():
            if child in dead or child in cyclic:
                continue
            killers = sorted({c.parent for c in conds if c.parent in dead})
            if killers:
                report.add(_finding(
                    "SP203", child,
                    f"parameter {child!r} can never activate: it is conditioned on dead "
                    f"parameter(s) {killers}",
                    "revive or remove the dead ancestors",
                ))
                dead.add(child)
                changed = True
    return dead


def _linear_range(con: LinearConstraint, space: ConfigurationSpace) -> tuple[float, float] | None:
    """(min, max) of the constraint's LHS over the box, or None if not static."""
    lo_total = hi_total = 0.0
    for name, coef in con.coefficients.items():
        param = space[name]
        assert isinstance(param, _NumericParameter)
        lo, hi = float(param.lower), float(param.upper)
        lo_total += coef * (lo if coef >= 0 else hi)
        hi_total += coef * (hi if coef >= 0 else lo)
    return lo_total, hi_total


def _lint_constraints(space: ConfigurationSpace, report: SpaceLintReport) -> None:
    seen_linear: dict[tuple, str] = {}
    linears: list[LinearConstraint] = []
    for con in space.constraints:
        subject = con.name
        # Serializability: today *no* constraint crosses the wire.
        report.add(_finding(
            "SP402", subject,
            f"constraint {con!r} cannot be serialised; sessions resumed from storage "
            "(and every service session) run without it",
            "enforce it inside the evaluator too, or accept the strict=False drop",
        ))
        refs = _constraint_refs(con)
        if refs is None:
            continue  # black-box callable: nothing more to say statically
        missing = sorted(r for r in refs if r not in space)
        if missing:
            report.add(_finding(
                "SP303", subject,
                f"constraint references unknown parameter(s) {missing}; a constraint "
                "with an absent parameter is treated as satisfied and never applies",
                "fix the name or remove the constraint",
            ))
            continue
        non_numeric = sorted(
            r for r in refs if not isinstance(space[r], _NumericParameter)
        )
        if non_numeric:
            report.add(_finding(
                "SP304", subject,
                f"constraint does arithmetic on non-numeric parameter(s) {non_numeric}",
                "constraints need Float/Integer parameters",
            ))
            continue
        if isinstance(con, LinearConstraint):
            key = (tuple(sorted(con.coefficients.items())), con.bound)
            if key in seen_linear:
                report.add(_finding(
                    "SP305", subject,
                    f"constraint duplicates {seen_linear[key]!r} (same coefficients and bound)",
                    "remove one copy",
                ))
            else:
                seen_linear[key] = subject
                linears.append(con)
            rng = _linear_range(con, space)
            if rng is not None:
                lo, hi = rng
                if lo > con.bound + 1e-12:
                    report.add(_finding(
                        "SP301", subject,
                        f"constraint is unsatisfiable: LHS minimum over the box is {lo:g} "
                        f"> bound {con.bound:g}; every sample would be rejected",
                        "loosen the bound or widen the parameter ranges",
                    ))
                elif hi <= con.bound + 1e-12:
                    report.add(_finding(
                        "SP302", subject,
                        f"constraint always holds: LHS maximum over the box is {hi:g} "
                        f"<= bound {con.bound:g}",
                        "drop it; it only costs evaluation time",
                    ))
        elif isinstance(con, RatioConstraint):
            num, den = space[con.numerator], space[con.denominator]
            div = space[con.divisor] if con.divisor else None
            if all(p.lower > 0 for p in (num, den) + ((div,) if div else ())):
                rhs_max = float(den.upper) / (float(div.lower) if div else 1.0)
                rhs_min = float(den.lower) / (float(div.upper) if div else 1.0)
                if float(num.lower) > rhs_max + 1e-12:
                    report.add(_finding(
                        "SP301", subject,
                        f"ratio constraint is unsatisfiable: {con.numerator!r} >= "
                        f"{num.lower:g} always exceeds the largest RHS {rhs_max:g}",
                        "widen the denominator range or shrink the numerator's lower bound",
                    ))
                elif float(num.upper) <= rhs_min + 1e-12:
                    report.add(_finding(
                        "SP302", subject,
                        f"ratio constraint always holds: {con.numerator!r} <= "
                        f"{num.upper:g} never reaches the smallest RHS {rhs_min:g}",
                        "drop it; it only costs evaluation time",
                    ))
    # Pairwise contradiction: anti-proportional linear constraints squeezing
    # the same LHS into an empty band (c·x <= b1 and -k·c·x <= b2, k > 0).
    for i, a in enumerate(linears):
        for b in linears[i + 1:]:
            k = _anti_scale(a, b)
            if k is None:
                continue
            # b is -k * a, so b's constraint reads c·x >= -b.bound / k.
            if -b.bound / k > a.bound + 1e-12:
                report.add(_finding(
                    "SP306", f"{a.name}+{b.name}",
                    f"constraints {a.name!r} and {b.name!r} contradict: they squeeze "
                    f"the same expression into the empty band "
                    f"({-b.bound / k:g}, {a.bound:g}]",
                    "at least one bound must move; no configuration satisfies both",
                ))
    # The default configuration is the one point every session touches first.
    try:
        space.make({})
    except ConstraintViolationError as err:
        report.add(_finding(
            "SP307", space.name,
            f"the default configuration violates the space's constraints ({err})",
            "pick defaults that satisfy every constraint",
        ))
    except Exception:
        # Other construction problems (including constraints that crash on
        # non-numeric values — already reported as SP304) surface through
        # their own rules.
        pass


def _anti_scale(a: LinearConstraint, b: LinearConstraint) -> float | None:
    """k > 0 such that ``b.coefficients == -k * a.coefficients``, else None."""
    if set(a.coefficients) != set(b.coefficients):
        return None
    k: float | None = None
    for name, ca in a.coefficients.items():
        cb = b.coefficients[name]
        if ca == 0:
            if cb != 0:
                return None
            continue
        ratio = -cb / ca
        if ratio <= 0:
            return None
        if k is None:
            k = ratio
        elif not math.isclose(k, ratio, rel_tol=1e-9):
            return None
    return k


def _constraint_refs(con: Constraint) -> set[str] | None:
    if isinstance(con, LinearConstraint):
        return set(con.coefficients)
    if isinstance(con, RatioConstraint):
        refs = {con.numerator, con.denominator}
        if con.divisor:
            refs.add(con.divisor)
        return refs
    return None


def _lint_priors(space: ConfigurationSpace, report: SpaceLintReport) -> None:
    grid = np.linspace(0.0, 1.0, 513)
    for param in space.parameters:
        if not isinstance(param, _NumericParameter) or isinstance(param.prior, UniformPrior):
            continue
        try:
            pdf = np.asarray(param.prior.pdf_unit(grid), dtype=float)
        except Exception as err:
            report.add(_finding(
                "SP501", param.name,
                f"prior of {param.name!r} failed to evaluate over [0, 1]: {err}",
                "fix the prior's pdf_unit",
            ))
            continue
        total = float(np.nansum(np.clip(pdf, 0.0, None)))
        if not math.isfinite(total) or total <= 0.0:
            report.add(_finding(
                "SP501", param.name,
                f"prior of {param.name!r} has no mass anywhere inside the parameter's "
                "range: every sample lands outside its support",
                "use a prior whose support intersects [lower, upper]",
            ))
            continue
        # Collapse check: on discrete/quantized domains a very sharp prior can
        # put essentially all its mass on one achievable value.
        if isinstance(param, IntegerParameter) or (
            isinstance(param, FloatParameter) and param.quantization is not None
        ):
            mass_by_value: dict[Any, float] = {}
            for u, w in zip(grid, pdf):
                if w <= 0:
                    continue
                mass_by_value.setdefault(param.from_unit(float(u)), 0.0)
                mass_by_value[param.from_unit(float(u))] += float(w)
            if len(mass_by_value) >= 1:
                top_value, top_mass = max(mass_by_value.items(), key=lambda kv: kv[1])
                n_values = _n_achievable(param)
                if n_values > 1 and top_mass / total >= 0.999:
                    report.add(_finding(
                        "SP502", param.name,
                        f"prior of {param.name!r} puts {100 * top_mass / total:.1f}% of its "
                        f"mass on the single value {top_value!r}; the knob is effectively "
                        "pinned",
                        "widen the prior or shrink the parameter's range to match it",
                    ))


def _n_achievable(param: _NumericParameter) -> int:
    if isinstance(param, IntegerParameter):
        return int(param.upper) - int(param.lower) + 1
    if isinstance(param, FloatParameter) and param.quantization is not None:
        return int(math.floor((param.upper - param.lower) / param.quantization)) + 1
    return 1 << 30  # effectively continuous


# -- dict (wire-form) prong ----------------------------------------------------

def _lint_space_dict(data: Mapping[str, Any], report: SpaceLintReport) -> ConfigurationSpace | None:
    """Structural rules over a wire description, then build + object rules.

    The wire form can carry defects the Python constructors make
    unrepresentable (duplicate names, self/unknown/cyclic conditions,
    log-scale over non-positive bounds), so those are checked *before*
    attempting construction.
    """
    params = data.get("parameters") or []
    names: list[str] = []
    for p in params:
        if not isinstance(p, Mapping) or "name" not in p:
            report.add(_finding("SP104", report.target, f"malformed parameter entry {p!r}",
                                "each parameter needs at least 'type' and 'name'"))
            continue
        name = str(p["name"])
        if name in names:
            report.add(_finding(
                "SP101", name, f"parameter {name!r} defined twice",
                "the later definition would shadow the earlier one; rename or remove it",
            ))
        names.append(name)
        lower, upper = p.get("lower"), p.get("upper")
        if lower is not None and upper is not None and float(lower) >= float(upper):
            report.add(_finding(
                "SP504", name, f"bounds [{lower}, {upper}] are empty or inverted",
                "lower must be strictly below upper",
            ))
        if p.get("log") and lower is not None and float(lower) <= 0:
            report.add(_finding(
                "SP503", name,
                f"log-scale parameter with lower bound {lower} <= 0",
                "log transforms need strictly positive bounds",
            ))
        prior = p.get("prior")
        if isinstance(prior, Mapping) and prior.get("kind") == "normal":
            mean = prior.get("mean")
            std = prior.get("std")
            if mean is not None and not (0.0 <= float(mean) <= 1.0):
                report.add(_finding(
                    "SP501", name,
                    f"normal prior mean {mean} lies outside the unit-encoded range "
                    "[0, 1]; its support misses the parameter's bounds",
                    "move the mean inside [0, 1] (unit-interval coordinates)",
                ))
            if std is not None and float(std) <= 0:
                report.add(_finding(
                    "SP501", name, f"normal prior std {std} is not positive",
                    "use std > 0",
                ))
    if not params:
        report.add(_finding("SP103", report.target, "space description has no parameters",
                            "add at least one parameter"))
    known = set(names)
    edges: dict[str, list[str]] = {}
    for c in data.get("conditions", ()) or ():
        if not isinstance(c, Mapping) or "child" not in c or "parent" not in c:
            report.add(_finding("SP104", report.target, f"malformed condition entry {c!r}",
                                "each condition needs 'kind', 'child', and 'parent'"))
            continue
        child, parent = str(c["child"]), str(c["parent"])
        if child == parent:
            report.add(_finding("SP206", child, f"parameter {child!r} conditioned on itself",
                                "a knob cannot gate its own activation"))
            continue
        for ref in (child, parent):
            if ref not in known:
                report.add(_finding(
                    "SP205", ref, f"condition references unknown parameter {ref!r}",
                    "fix the name or add the missing parameter",
                ))
        edges.setdefault(child, []).append(parent)
    # Cycle detection on the raw edges (space_from_dict would raise opaquely).
    state: dict[str, int] = {}
    cyclic: set[str] = set()

    def visit(node: str, stack: tuple[str, ...]) -> None:
        if state.get(node) == 1:
            cyclic.update(stack[stack.index(node):])
            return
        if state.get(node) == 2:
            return
        state[node] = 1
        for parent in edges.get(node, ()):
            visit(parent, stack + (node,))
        state[node] = 2

    for child in edges:
        visit(child, ())
    for name in sorted(cyclic):
        report.add(_finding("SP204", name, f"parameter {name!r} participates in a condition cycle",
                            "break the cycle; activation is only well-defined on a DAG"))
    if not report.ok:
        return None  # structurally broken: object-level rules would crash
    try:
        from ..space.serialize import space_from_dict

        return space_from_dict(data)
    except SpaceError as err:
        report.add(_finding("SP104", report.target, f"space description does not build: {err}",
                            "fix the description; see the codec error above"))
        return None


# -- entry point ---------------------------------------------------------------

def lint_space(
    space: ConfigurationSpace | Mapping[str, Any],
    ignore: Iterable[str] = (),
) -> SpaceLintReport:
    """Run every space rule and return the report.

    Accepts a live :class:`ConfigurationSpace` or a wire-form dict
    (:func:`~repro.space.serialize.space_to_dict` output / service create
    bodies). ``ignore`` suppresses rule ids; suppressed findings stay in
    the report (counted, marked) but do not affect ``ok``.
    """
    ignored = {r.strip().upper() for r in ignore if r and r.strip()}
    unknown = ignored - set(SPACE_RULES)
    if unknown:
        raise SpaceError(f"unknown space-lint rule id(s) in ignore list: {sorted(unknown)}")
    if isinstance(space, Mapping):
        report = SpaceLintReport(target=str(space.get("name", "space")))
        built = _lint_space_dict(space, report)
        if built is not None:
            _run_object_rules(built, report)
    else:
        report = SpaceLintReport(target=space.name)
        _run_object_rules(space, report)
    if ignored:
        report.findings = [
            Finding(**{**f.__dict__, "suppressed": True}) if f.rule in ignored else f
            for f in report.findings
        ]
    return report


def _run_object_rules(space: ConfigurationSpace, report: SpaceLintReport) -> None:
    _lint_names(space, report)
    if not space.names:
        return
    _lint_conditions(space, report)
    _lint_constraints(space, report)
    _lint_priors(space, report)
