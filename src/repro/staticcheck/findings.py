"""The shared finding model of both static-analysis prongs.

A :class:`Finding` is one diagnostic: a stable rule id (``SPxxx`` for
space-lint rules, ``ASTxxx`` for codebase rules), a :class:`Severity`, the
*subject* it is about (a parameter/condition name or a ``file:line``
location), a human message, and a concrete fix hint. Findings aggregate
into a :class:`LintReport` (``SpaceLintReport`` is its space-prong alias)
that knows how to render itself for terminals and how to serialise for
the service wire.

Severity semantics, used uniformly by the CLI exit code, the CI job, and
``SessionManager.create(strict=True)``:

* ``ERROR``   — the space/code is broken or will break at runtime
  (unsatisfiable conditions, budget-wasting dead regions, replay-hostile
  RNG use). Strict mode rejects; CI fails.
* ``WARNING`` — legal but hazardous (non-serialisable members that a
  service session will silently lose, redundant constraints).
* ``INFO``    — style/clarity only.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from ..exceptions import SpaceError

__all__ = [
    "Severity",
    "Finding",
    "LintReport",
    "SpaceLintReport",
    "SpaceLintError",
]


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a lint rule."""

    rule: str                      # stable id, e.g. "SP101" / "AST201"
    severity: Severity
    subject: str                   # parameter/condition name or "path:line"
    message: str                   # what is wrong
    hint: str = ""                 # how to fix it
    suppressed: bool = False       # matched but silenced by a noqa/ignore

    def format(self) -> str:
        tail = f"  (fix: {self.hint})" if self.hint else ""
        sup = " [suppressed]" if self.suppressed else ""
        return f"{self.subject}: {self.severity.value.upper()} {self.rule}: {self.message}{tail}{sup}"

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "subject": self.subject,
            "message": self.message,
        }
        if self.hint:
            out["hint"] = self.hint
        if self.suppressed:
            out["suppressed"] = True
        return out


@dataclass
class LintReport:
    """All findings of one lint pass, with severity roll-ups."""

    target: str                    # what was linted (space name, path, ...)
    findings: list[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.active)

    def __len__(self) -> int:
        return len(self.active)

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.active if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.active if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True iff nothing blocking: no active ERROR-severity findings."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True iff there are no active findings of any severity."""
        return not self.active

    def sorted(self) -> list[Finding]:
        return sorted(self.active, key=lambda f: (f.severity.rank, f.rule, f.subject))

    def format(self, show_suppressed: bool = False) -> str:
        lines = [f"lint {self.target}: " + self.summary()]
        for f in self.sorted():
            lines.append("  " + f.format())
        if show_suppressed:
            for f in self.suppressed:
                lines.append("  " + f.format())
        return "\n".join(lines)

    def summary(self) -> str:
        n_err, n_warn = len(self.errors), len(self.warnings)
        n_info = len(self.active) - n_err - n_warn
        parts = [f"{n_err} error(s)", f"{n_warn} warning(s)"]
        if n_info:
            parts.append(f"{n_info} info")
        if self.suppressed:
            parts.append(f"{len(self.suppressed)} suppressed")
        return ", ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "target": self.target,
            "ok": self.ok,
            "summary": self.summary(),
            "findings": [f.to_dict() for f in self.sorted()],
            "suppressed": [f.to_dict() for f in self.suppressed],
        }


class SpaceLintReport(LintReport):
    """The space-prong report (same shape; the alias keeps call sites clear)."""


class SpaceLintError(SpaceError):
    """A strict lint pass rejected a configuration space.

    Carries the offending :class:`SpaceLintReport` so callers (the service,
    tests) can surface the individual rule ids; ``str()`` lists them.
    """

    def __init__(self, report: SpaceLintReport) -> None:
        self.report = report
        rules = sorted({f.rule for f in report.errors})
        super().__init__(
            f"configuration space {report.target!r} failed strict lint "
            f"({', '.join(rules)}):\n" + "\n".join("  " + f.format() for f in report.errors)
        )
        self.rules = rules
