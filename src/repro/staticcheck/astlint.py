"""Prong 2: repro-specific codebase invariant checkers (stdlib ``ast``).

These rules encode invariants the ROADMAP's service and deterministic-
replay work depend on but nothing previously enforced:

* **AST101 — blocking call in async code.** The service is one asyncio
  event loop; a single ``time.sleep``/sync ``open``/``socket`` call inside
  an ``async def`` under ``repro/service/`` stalls every session it hosts.
  Storage-backed :class:`~repro.core.manager.SessionManager` methods count
  as blocking too (they fsync or hit SQLite) unless dispatched through
  ``asyncio.to_thread``/``run_in_executor``.
* **AST105 — hand-rolled retry sleeps in service code.** Every retry/poll
  delay under ``repro/service/`` must come from
  :meth:`repro.resilience.BackoffPolicy.delay` (full jitter, cap,
  ``Retry-After``): an ``asyncio.sleep`` inside a loop whose argument is
  not a ``.delay(...)`` call is a latent retry storm.
* **AST201/AST202/AST203 — RNG hygiene.** Bit-exact replay of a tuning
  campaign requires every random draw to flow from seeded
  ``numpy.random.Generator`` objects. Mutating NumPy's module-global state
  (``np.random.seed`` + legacy draws), stdlib module-global ``random``
  calls, and unseeded ``default_rng()`` fallbacks all break that.
* **AST204 — per-iteration space sampling in optimizer hot paths.** A
  ``space.sample(...)``/``space.neighbor(...)`` call inside a ``for`` body
  or comprehension under ``repro/optimizers/`` pays the whole
  per-configuration Python overhead once per candidate; the batched
  ``sample_many``/``neighbor_many`` equivalents draw every parameter
  column vectorized.
* **AST301 — swallowed exceptions in executor/service code.** A bare
  ``except:`` (or ``except Exception``) that neither re-raises nor leaves
  a trace in the event log / metrics turns crash-recovery bugs invisible.
* **AST401 — span/event names outside the telemetry registry.** Names are
  a closed vocabulary (:mod:`repro.telemetry.naming`); a typo creates a
  new series instead of extending one.

Suppression: append ``# repro: noqa RULE-ID`` (one or more ids, comma- or
space-separated) to the offending line. Suppressed findings are counted in
the report, so a growing pile of noqa is itself visible.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Sequence

from ..telemetry.naming import EVENT_KINDS, SPAN_NAMES
from .findings import Finding, LintReport, Severity

__all__ = ["lint_paths", "lint_source", "AST_RULES"]

AST_RULES: dict[str, tuple[Severity, str]] = {
    "AST101": (Severity.ERROR, "blocking call inside an async function in service code"),
    "AST105": (Severity.WARNING, "hand-rolled retry sleep in service code bypassing BackoffPolicy"),
    "AST201": (Severity.ERROR, "module-global NumPy RNG state mutation or legacy draw"),
    "AST202": (Severity.ERROR, "module-global stdlib random call"),
    "AST203": (Severity.WARNING, "unseeded np.random.default_rng() (non-replayable)"),
    "AST204": (Severity.WARNING, "per-iteration space.sample/neighbor in an optimizer loop"),
    "AST301": (Severity.ERROR, "swallowed broad exception without re-raise or event emission"),
    "AST401": (Severity.ERROR, "span/event name not in the telemetry naming registry"),
}

_NOQA = re.compile(r"#\s*repro:\s*noqa\s+(?P<rules>[A-Z]+\d+(?:[\s,]+[A-Z]+\d+)*)")

#: Dotted call names that block the event loop. Matched against the full
#: attribute chain of the called expression.
_BLOCKING_CALLS = {
    "time.sleep",
    "socket.socket", "socket.create_connection", "socket.getaddrinfo",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.waitpid",
    "sqlite3.connect",
    "urllib.request.urlopen",
    "requests.get", "requests.post", "requests.request",
}
#: Bare names whose call blocks (sync file I/O).
_BLOCKING_NAMES = {"open", "input"}
#: Attribute *suffixes* that block regardless of the object (sync file IO on
#: pathlib objects).
_BLOCKING_SUFFIXES = {
    "read_text", "write_text", "read_bytes", "write_bytes",
}
#: In service code, direct calls on these objects are storage-backed and
#: blocking unless shipped to a worker thread.
_BLOCKING_OBJECTS = {"manager", "store"}

_NUMPY_GLOBAL_FNS = {
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "uniform", "normal", "standard_normal", "shuffle",
    "permutation", "beta", "binomial", "poisson", "exponential", "gamma",
    "get_state", "set_state",
}
_STDLIB_RANDOM_FNS = {
    "seed", "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate", "expovariate",
    "getstate", "setstate",
}
#: Handler calls that count as "the failure left a trace".
_EVIDENCE_CALLS = {"emit_event", "inc", "observe", "warn", "warning", "error",
                   "exception", "log", "record_event", "set_gauge"}


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted name of a call target (``a.b.c`` → ``"a.b.c"``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _noqa_rules(source_lines: Sequence[str], lineno: int) -> set[str]:
    if 1 <= lineno <= len(source_lines):
        m = _NOQA.search(source_lines[lineno - 1])
        if m:
            return set(re.split(r"[\s,]+", m.group("rules").strip()))
    return set()


class _FileChecker(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        source: str,
        in_service: bool,
        in_executor: bool,
        in_optimizers: bool = False,
    ) -> None:
        self.path = path
        self.lines = source.splitlines()
        self.in_service = in_service
        self.in_executor = in_executor
        self.in_optimizers = in_optimizers
        self.findings: list[Finding] = []
        self._async_depth = 0
        self._to_thread_depth = 0
        self._loop_depth = 0

    # -- helpers -----------------------------------------------------------
    def _report(self, rule: str, node: ast.AST, message: str, hint: str = "") -> None:
        severity, _ = AST_RULES[rule]
        lineno = getattr(node, "lineno", 0)
        suppressed = rule in _noqa_rules(self.lines, lineno)
        self.findings.append(Finding(
            rule=rule, severity=severity, subject=f"{self.path}:{lineno}",
            message=message, hint=hint, suppressed=suppressed,
        ))

    # -- function scoping --------------------------------------------------
    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._async_depth += 1
        self.generic_visit(node)
        self._async_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A sync def nested inside an async def runs wherever it is called —
        # typically handed to to_thread — so it leaves the async scope.
        saved = self._async_depth
        self._async_depth = 0
        self.generic_visit(node)
        self._async_depth = saved

    def visit_Lambda(self, node: ast.Lambda) -> None:
        saved = self._async_depth
        self._async_depth = 0
        self.generic_visit(node)
        self._async_depth = saved

    # -- loop scoping (for AST204) -----------------------------------------
    def _visit_loop(self, node: ast.For | ast.AsyncFor | ast.While) -> None:
        # The iterable/condition evaluates once, outside the per-iteration
        # scope; only the body (and orelse) repeats.
        if isinstance(node, ast.While):
            self.visit(node.test)
        else:
            self.visit(node.target)
            self.visit(node.iter)
        self._loop_depth += 1
        for stmt in [*node.body, *node.orelse]:
            self.visit(stmt)
        self._loop_depth -= 1

    visit_For = visit_AsyncFor = visit_While = _visit_loop

    def _visit_comprehension(
        self, node: ast.ListComp | ast.SetComp | ast.GeneratorExp | ast.DictComp
    ) -> None:
        # The first generator's source iterable evaluates once; element
        # expressions, ifs, and nested iterables run per item.
        self.visit(node.generators[0].iter)
        self._loop_depth += 1
        for gen in node.generators:
            self.visit(gen.target)
            for cond in gen.ifs:
                self.visit(cond)
        for gen in node.generators[1:]:
            self.visit(gen.iter)
        if isinstance(node, ast.DictComp):
            self.visit(node.key)
            self.visit(node.value)
        else:
            self.visit(node.elt)
        self._loop_depth -= 1

    visit_ListComp = visit_SetComp = visit_GeneratorExp = visit_DictComp = _visit_comprehension

    # -- calls -------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        tail = dotted.rsplit(".", 1)[-1]
        self._check_rng(node, dotted, tail)
        self._check_span_names(node, dotted, tail)
        self._check_loop_sampling(node, dotted, tail)
        self._check_retry_sleep(node, dotted, tail)
        if self._async_depth > 0 and self._to_thread_depth == 0:
            self._check_blocking(node, dotted, tail)
        # Arguments of asyncio.to_thread / loop.run_in_executor execute on a
        # worker thread: blocking calls inside them are the *fix*, not a bug.
        if tail in {"to_thread", "run_in_executor"}:
            self._to_thread_depth += 1
            self.generic_visit(node)
            self._to_thread_depth -= 1
        else:
            self.generic_visit(node)

    def _check_blocking(self, node: ast.Call, dotted: str, tail: str) -> None:
        if not self.in_service:
            return
        blocking = (
            dotted in _BLOCKING_CALLS
            or dotted in _BLOCKING_NAMES
            or tail in _BLOCKING_SUFFIXES
        )
        reason = None
        if blocking:
            reason = f"blocking call {dotted or tail!r}"
        else:
            # self.manager.meta(...) / self.store.append(...) style: storage-
            # backed objects whose methods fsync or hit SQLite.
            parts = dotted.split(".")
            if len(parts) >= 3 and parts[0] == "self" and parts[1] in _BLOCKING_OBJECTS:
                reason = f"storage-backed call {dotted!r}"
        if reason:
            self._report(
                "AST101", node,
                f"{reason} inside an async function blocks the service event loop",
                "dispatch it via await asyncio.to_thread(...)",
            )

    def _check_rng(self, node: ast.Call, dotted: str, tail: str) -> None:
        if dotted in {f"np.random.{fn}" for fn in _NUMPY_GLOBAL_FNS} or dotted in {
            f"numpy.random.{fn}" for fn in _NUMPY_GLOBAL_FNS
        }:
            self._report(
                "AST201", node,
                f"{dotted} mutates/draws from NumPy's module-global RNG; campaigns "
                "using it cannot be replayed bit-exactly",
                "thread a seeded np.random.Generator through instead",
            )
        elif dotted in {"random." + fn for fn in _STDLIB_RANDOM_FNS}:
            self._report(
                "AST202", node,
                f"{dotted} draws from the stdlib module-global RNG",
                "use random.Random(seed) or a seeded numpy Generator",
            )
        elif dotted in {"np.random.default_rng", "numpy.random.default_rng"} and not (
            node.args or node.keywords
        ):
            self._report(
                "AST203", node,
                "np.random.default_rng() without a seed draws fresh OS entropy; the "
                "resulting trial stream cannot be replayed",
                "plumb a seed (or rng) parameter down to this call",
            )

    def _check_loop_sampling(self, node: ast.Call, dotted: str, tail: str) -> None:
        if not self.in_optimizers or self._loop_depth == 0:
            return
        if tail not in {"sample", "neighbor"}:
            return
        parts = dotted.split(".")
        # Match space.sample / self.space.neighbor — the receiver must be a
        # configuration space, not e.g. random.sample or a list method.
        if len(parts) < 2 or parts[-2] != "space":
            return
        batched = "sample_many" if tail == "sample" else "neighbor_many"
        self._report(
            "AST204", node,
            f"{dotted}(...) inside a loop/comprehension draws one configuration "
            "per Python iteration — the candidate-generation tail the vectorized "
            "space API exists to remove",
            f"draw the whole batch at once with space.{batched}(...)",
        )

    def _check_retry_sleep(self, node: ast.Call, dotted: str, tail: str) -> None:
        """AST105: retry sleeps in service code must route through the
        shared :class:`repro.resilience.BackoffPolicy`.

        An ``asyncio.sleep(...)`` inside a loop in ``repro/service/`` is a
        retry/poll delay. Jitterless hand-rolled curves (``0.2``,
        ``min(d * 1.5**k, cap)``) synchronise whole client fleets into
        retry storms and ignore server ``Retry-After`` hints; the policy's
        ``.delay(...)`` is the one audited implementation. The exemption is
        purely syntactic: the sleep's argument must be a call whose name
        ends in ``.delay``.
        """
        if not self.in_service or self._loop_depth == 0:
            return
        if dotted not in {"asyncio.sleep", "time.sleep"}:
            return
        if node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Call) and _dotted(arg.func).rsplit(".", 1)[-1] == "delay":
                return  # routed through BackoffPolicy.delay(...)
        self._report(
            "AST105", node,
            f"{dotted}(...) in a retry/poll loop bypasses the shared backoff policy "
            "(no jitter, no Retry-After honouring)",
            "sleep for policy.delay(attempt, rng=..., retry_after=...) from repro.resilience",
        )

    def _check_span_names(self, node: ast.Call, dotted: str, tail: str) -> None:
        if tail not in {"span", "emit_event"} or not node.args:
            return
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            return
        name = first.value
        registry = SPAN_NAMES if tail == "span" else EVENT_KINDS
        registry_name = "SPAN_NAMES" if tail == "span" else "EVENT_KINDS"
        if name not in registry:
            self._report(
                "AST401", node,
                f"{tail}({name!r}): name is not in the documented telemetry registry "
                f"(repro.telemetry.naming.{registry_name})",
                "fix the typo or register the new name in repro/telemetry/naming.py",
            )

    # -- exception handlers --------------------------------------------------
    def visit_Try(self, node: ast.Try) -> None:
        if self.in_service or self.in_executor:
            for handler in node.handlers:
                self._check_handler(handler)
        self.generic_visit(node)

    def _check_handler(self, handler: ast.ExceptHandler) -> None:
        broad = handler.type is None or (
            isinstance(handler.type, ast.Name) and handler.type.id in {"Exception", "BaseException"}
        )
        if not broad:
            return
        if self._handler_leaves_evidence(handler):
            return
        what = "bare except:" if handler.type is None else f"except {handler.type.id}"
        self._report(
            "AST301", handler,
            f"{what} swallows the failure: the handler neither re-raises nor emits "
            "an event/metric, so executor/service crashes disappear silently",
            "re-raise, narrow the exception type, or emit_event/inc a metric in the handler",
        )

    @staticmethod
    def _handler_leaves_evidence(handler: ast.ExceptHandler) -> bool:
        for sub in ast.walk(handler):
            if isinstance(sub, ast.Raise):
                return True
            if isinstance(sub, ast.Call):
                tail = _dotted(sub.func).rsplit(".", 1)[-1]
                if tail in _EVIDENCE_CALLS:
                    return True
        return False


def lint_source(
    source: str,
    path: str = "<string>",
) -> list[Finding]:
    """Run every AST rule over one source text."""
    posix = Path(path).as_posix()
    in_service = "repro/service" in posix
    in_executor = "repro/execution" in posix
    in_optimizers = "repro/optimizers" in posix
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [Finding(
            rule="AST101", severity=Severity.ERROR,
            subject=f"{path}:{err.lineno or 0}", message=f"file does not parse: {err.msg}",
            hint="fix the syntax error",
        )]
    checker = _FileChecker(path, source, in_service, in_executor, in_optimizers)
    checker.visit(tree)
    return checker.findings


def lint_paths(paths: Iterable[str | Path], root: str | Path | None = None) -> LintReport:
    """Lint ``*.py`` files under the given paths into one report.

    ``root`` (default: the common parent) only affects how subjects are
    rendered — findings use paths relative to it.
    """
    files: list[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    base = Path(root) if root is not None else None
    report = LintReport(target=", ".join(str(p) for p in paths) or ".")
    for f in files:
        shown = f
        if base is not None:
            try:
                shown = f.relative_to(base)
            except ValueError:
                pass
        report.extend(lint_source(f.read_text(encoding="utf-8"), str(shown)))
    return report
