"""Static analysis for the autotuner: space lint + codebase invariants.

Two prongs, one finding model (:mod:`repro.staticcheck.findings`):

* :func:`lint_space` (:mod:`~repro.staticcheck.spacelint`) — rule engine
  over :class:`~repro.space.ConfigurationSpace` objects or their wire
  descriptions. Wired into :meth:`SessionManager.create
  <repro.core.manager.SessionManager.create>` (warn by default,
  ``strict=True`` rejects) and the service's session-create handler.
* :func:`lint_paths` / :func:`lint_source`
  (:mod:`~repro.staticcheck.astlint`) — stdlib-``ast`` checkers enforcing
  repro-specific invariants over the source tree; runs as
  ``python -m repro.staticcheck src`` and as a blocking CI job.

Rule catalog, severities, and suppression syntax: ``docs/static-analysis.md``.
"""

from .findings import Finding, LintReport, Severity, SpaceLintError, SpaceLintReport
from .spacelint import SPACE_RULES, lint_space
from .astlint import AST_RULES, lint_paths, lint_source

__all__ = [
    "AST_RULES",
    "Finding",
    "LintReport",
    "SPACE_RULES",
    "Severity",
    "SpaceLintError",
    "SpaceLintReport",
    "lint_paths",
    "lint_source",
    "lint_space",
]
