"""Tuning core: ask/tell protocol, trials, sessions, durable stores."""

from .callbacks import Callback, ConvergenceTracker, LoggingCallback, StopWhenConverged, StopWhenReached
from .codec import (
    SuggestRequest,
    Suggestion,
    TrialReport,
    decode_trial,
    encode_trial,
    report_from_trial,
)
from .evaluation import EvaluationResult, coerce_evaluation, run_evaluation
from .journal import AppendResult, SessionMeta, StorageError, TrialStore, import_legacy_trials, new_session_id
from .manager import SessionManager, make_optimizer, optimizer_names
from .optimizer import History, Objective, Optimizer, Trial, TrialStatus, rng_digest
from .replay import ReplayDivergence, ReplayReport, replay_session
from .result import TuningResult
from .storage import (
    load_prior_bank,
    load_trials,
    save_prior_bank,
    save_trials,
    trial_from_dict,
    trial_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from .stores import JsonJournalStore, MemoryTrialStore, SqliteTrialStore, open_store
from .session import Evaluator, TuningSession

__all__ = [
    "SuggestRequest",
    "Suggestion",
    "TrialReport",
    "decode_trial",
    "encode_trial",
    "report_from_trial",
    "AppendResult",
    "SessionMeta",
    "StorageError",
    "TrialStore",
    "import_legacy_trials",
    "new_session_id",
    "SessionManager",
    "make_optimizer",
    "optimizer_names",
    "JsonJournalStore",
    "MemoryTrialStore",
    "SqliteTrialStore",
    "open_store",
    "Callback",
    "ConvergenceTracker",
    "LoggingCallback",
    "StopWhenConverged",
    "StopWhenReached",
    "EvaluationResult",
    "coerce_evaluation",
    "run_evaluation",
    "History",
    "Objective",
    "Optimizer",
    "Trial",
    "TrialStatus",
    "rng_digest",
    "ReplayDivergence",
    "ReplayReport",
    "replay_session",
    "TuningResult",
    "load_prior_bank",
    "load_trials",
    "save_prior_bank",
    "save_trials",
    "trial_from_dict",
    "trial_to_dict",
    "workload_from_dict",
    "workload_to_dict",
    "Evaluator",
    "TuningSession",
]
