"""Tuning core: ask/tell protocol, trials, sessions, callbacks."""

from .callbacks import Callback, ConvergenceTracker, LoggingCallback, StopWhenConverged, StopWhenReached
from .evaluation import EvaluationResult, coerce_evaluation, run_evaluation
from .optimizer import History, Objective, Optimizer, Trial, TrialStatus
from .result import TuningResult
from .storage import (
    load_prior_bank,
    load_trials,
    save_prior_bank,
    save_trials,
    trial_from_dict,
    trial_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from .session import Evaluator, TuningSession

__all__ = [
    "Callback",
    "ConvergenceTracker",
    "LoggingCallback",
    "StopWhenConverged",
    "StopWhenReached",
    "EvaluationResult",
    "coerce_evaluation",
    "run_evaluation",
    "History",
    "Objective",
    "Optimizer",
    "Trial",
    "TrialStatus",
    "TuningResult",
    "load_prior_bank",
    "load_trials",
    "save_prior_bank",
    "save_trials",
    "trial_from_dict",
    "trial_to_dict",
    "workload_from_dict",
    "workload_to_dict",
    "Evaluator",
    "TuningSession",
]
