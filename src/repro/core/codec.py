"""One codec for trial payloads: library, journal, and wire share it.

Before this module existed the repository had three slightly different
trial-dict shapes — :mod:`repro.core.storage` wrote one, the benchmark
runner summarised another, and the online agent's step records a third.
Every serialised trial now goes through :func:`encode_trial` /
:func:`decode_trial`, and the ask/tell surface (both the in-process
:meth:`~repro.core.session.TuningSession.ask`/``tell`` and the HTTP wire
schema in :mod:`repro.service.wire`) speaks the dataclass payloads defined
here: :class:`SuggestRequest` in, :class:`Suggestion` out, and
:class:`TrialReport` back.

The payloads are deliberately plain: JSON-safe dicts of primitives, so the
same object can cross a process boundary, land in an append-only journal,
or be handed straight to :meth:`Optimizer.observe`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Mapping

from ..exceptions import ReproError
from ..space import Configuration, ConfigurationSpace
from .optimizer import Trial, TrialStatus

__all__ = [
    "CodecError",
    "SuggestRequest",
    "Suggestion",
    "TrialReport",
    "encode_trial",
    "decode_trial",
    "report_from_trial",
    "json_safe",
]

#: Trial-record schema version written by :func:`encode_trial`.
TRIAL_RECORD_VERSION = 2


class CodecError(ReproError):
    """A payload could not be encoded or decoded."""


def json_safe(value: Any) -> Any:
    """Recursively coerce a payload to JSON-serialisable primitives.

    numpy scalars (anything exposing ``.item()``) become plain Python
    numbers; mappings and sequences are rebuilt with safe leaves.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "item") and not isinstance(value, Mapping):
        try:
            return value.item()
        except (TypeError, ValueError):
            pass
    if isinstance(value, Mapping):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(v) for v in value]
    return str(value)


# -- ask ---------------------------------------------------------------------


@dataclass(frozen=True)
class SuggestRequest:
    """Ask for the next configurations of a session.

    ``session_id`` is optional for in-process use (the session *is* the
    addressee) and required on the wire.
    """

    n: int = 1
    session_id: str | None = None
    fidelity: float | None = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise CodecError(f"SuggestRequest.n must be >= 1, got {self.n}")

    def to_dict(self) -> dict[str, Any]:
        return json_safe(asdict(self))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SuggestRequest":
        if "n" in data and "count" in data:
            raise CodecError("SuggestRequest accepts 'n' or 'count', not both")
        try:
            return cls(
                # "count" is the wire alias used by batch clients;
                # "n" remains the canonical field.
                n=int(data.get("n", data.get("count", 1))),
                session_id=data.get("session_id"),
                fidelity=None if data.get("fidelity") is None else float(data["fidelity"]),
            )
        except (TypeError, ValueError) as err:
            raise CodecError(f"malformed SuggestRequest: {err}") from err


@dataclass(frozen=True)
class Suggestion:
    """One proposed configuration, tagged with the ask that produced it.

    ``ask_id`` is a per-session monotonic token; a client echoes it back in
    the matching :class:`TrialReport` so the server can pair tell with ask.
    The token is advisory — a report for an unknown ask (e.g. issued before
    a server restart) is still accepted, because the report carries the
    full configuration values.
    """

    config: dict[str, Any]
    ask_id: int
    session_id: str | None = None
    fidelity: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return json_safe(asdict(self))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Suggestion":
        try:
            return cls(
                config=dict(data["config"]),
                ask_id=int(data["ask_id"]),
                session_id=data.get("session_id"),
                fidelity=None if data.get("fidelity") is None else float(data["fidelity"]),
            )
        except (KeyError, TypeError, ValueError) as err:
            raise CodecError(f"malformed Suggestion: {err}") from err


# -- tell --------------------------------------------------------------------


@dataclass(frozen=True)
class TrialReport:
    """The result of evaluating one configuration.

    The single tell payload for every surface: ``TuningSession.tell`` takes
    it directly, the HTTP ``/tell`` endpoint decodes one from the request
    body, and the journal stores its encoded form.

    ``report_id`` is an optional client-chosen idempotency key: telling the
    same report twice (e.g. a retry after a dropped HTTP response) records
    the trial once. ``status`` other than ``succeeded`` records a failure
    and lets the optimizer impute the score; ``metrics`` may then be empty.
    """

    config: dict[str, Any]
    metrics: dict[str, float] = field(default_factory=dict)
    cost: float = 1.0
    status: str = TrialStatus.SUCCEEDED.value
    fidelity: float | None = None
    context: dict[str, Any] = field(default_factory=dict)
    ask_id: int | None = None
    report_id: str | None = None
    session_id: str | None = None

    def __post_init__(self) -> None:
        try:
            TrialStatus(self.status)
        except ValueError:
            raise CodecError(
                f"unknown trial status {self.status!r}; expected one of "
                f"{[s.value for s in TrialStatus]}"
            ) from None

    @property
    def ok(self) -> bool:
        return self.status == TrialStatus.SUCCEEDED.value

    def to_dict(self) -> dict[str, Any]:
        return json_safe(asdict(self))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrialReport":
        try:
            metrics = data.get("metrics", {})
            if isinstance(metrics, (int, float)):
                metrics = {"score": float(metrics)}
            return cls(
                config=dict(data["config"]),
                metrics={str(k): float(v) for k, v in dict(metrics).items()},
                cost=float(data.get("cost", 1.0)),
                status=str(data.get("status", TrialStatus.SUCCEEDED.value)),
                fidelity=None if data.get("fidelity") is None else float(data["fidelity"]),
                context=dict(data.get("context", {})),
                ask_id=None if data.get("ask_id") is None else int(data["ask_id"]),
                report_id=data.get("report_id"),
                session_id=data.get("session_id"),
            )
        except (KeyError, TypeError, ValueError) as err:
            raise CodecError(f"malformed TrialReport: {err}") from err


def report_from_trial(trial: Trial, report_id: str | None = None) -> TrialReport:
    """Build the canonical tell payload from an evaluated :class:`Trial`."""
    return TrialReport(
        config=json_safe(trial.config.as_dict()),
        metrics={k: float(v) for k, v in trial.metrics.items()},
        cost=float(trial.cost),
        status=trial.status.value,
        fidelity=trial.fidelity,
        context=json_safe(trial.context),
        report_id=report_id,
    )


# -- trial records (journal / legacy files) ----------------------------------


def encode_trial(
    trial: Trial,
    report_id: str | None = None,
    provenance: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The canonical JSON-safe record of one trial.

    Supersedes ``storage.trial_to_dict`` (kept as a thin alias); the same
    shape is appended to journals and returned over the wire.

    ``provenance`` (or, failing that, ``trial.provenance``) is journaled
    under a ``"provenance"`` key: seed lineage, optimizer state digest,
    space version hash, ask-batch coordinates, executor attempt history,
    library version, and parent trace id — everything ``repro replay``
    needs to re-execute the session bit-exactly and to pinpoint the first
    divergence when it cannot.
    """
    record = {
        "trial_id": trial.trial_id,
        "config": json_safe(trial.config.as_dict()),
        "status": trial.status.value,
        "metrics": {str(k): float(v) for k, v in trial.metrics.items()},
        "cost": float(trial.cost),
        "fidelity": trial.fidelity,
        "context": json_safe(trial.context),
    }
    if report_id is not None:
        record["report_id"] = report_id
    lineage = provenance if provenance is not None else trial.provenance
    if lineage is not None:
        record["provenance"] = json_safe(lineage)
    return record


def decode_trial(record: Mapping[str, Any], space: ConfigurationSpace) -> Trial:
    """Rebuild a trial, re-validating the configuration against ``space``.

    Unknown knobs are dropped and missing ones take defaults, so histories
    transfer across compatible spaces (mirrors ``Optimizer.warm_start``).
    """
    try:
        values = {k: v for k, v in record["config"].items() if k in space}
        config = space.make(values, check_constraints=False)
        return Trial(
            trial_id=int(record["trial_id"]),
            config=config,
            status=TrialStatus(record["status"]),
            metrics={k: float(v) for k, v in record.get("metrics", {}).items()},
            cost=float(record.get("cost", 1.0)),
            fidelity=record.get("fidelity"),
            context=dict(record.get("context", {})),
            provenance=None if record.get("provenance") is None else dict(record["provenance"]),
        )
    except (KeyError, ValueError, TypeError) as err:
        raise ReproError(f"malformed trial record: {err}") from err


def config_from_values(values: Mapping[str, Any], space: ConfigurationSpace) -> Configuration:
    """Re-validate a plain value mapping into a configuration of ``space``."""
    try:
        return space.make({k: v for k, v in values.items() if k in space}, check_constraints=False)
    except ReproError:
        raise
    except (TypeError, ValueError) as err:  # pragma: no cover - defensive
        raise CodecError(f"malformed configuration values: {err}") from err
