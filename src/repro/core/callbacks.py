"""Session callbacks: convergence tracking, logging, early stopping.

Hook ordering
-------------
For every batch the :class:`~repro.core.session.TuningSession` dispatches,
hooks fire in this order (telemetry and retry logic rely on it):

1. ``on_session_start(session)`` — exactly once, before the first batch
   (telemetry activates its trace here).
2. ``should_stop(session)`` — polled before each batch; any ``True`` ends
   the session.
3. ``on_trial_start(session, trial_index)`` — once per trial in the batch,
   in dispatch order, *before* any trial of the batch executes.
4. Per trial, in **completion order** (= dispatch order for the serial
   executor, arbitrary for pool executors):

   a. ``on_trial_error(session, trial, exc)`` — only for trials that ended
      ``FAILED``/``ABORTED``; the trial is already recorded (with imputed
      metrics) when this fires, and ``exc`` is the causing exception or
      ``None`` (e.g. a timeout detected post-hoc).
   b. ``on_trial_end(session, trial)`` — every trial, success or failure.

5. ``on_batch_end(session, trials)`` — once per batch, after every
   ``on_trial_end`` of the batch, with the trials in completion order.
6. ``on_session_end(session)`` — exactly once, after the final batch.

All hooks are no-ops on the base class, so subclasses override only what
they need — no subclass hacks required to see errors or batch boundaries.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .optimizer import Trial

if TYPE_CHECKING:  # pragma: no cover
    from .session import TuningSession

__all__ = ["Callback", "ConvergenceTracker", "LoggingCallback", "StopWhenReached", "StopWhenConverged"]

logger = logging.getLogger(__name__)


class Callback:
    """Observer hooks invoked by :class:`~repro.core.session.TuningSession`.

    See the module docstring for the guaranteed hook ordering.
    """

    def on_session_start(self, session: "TuningSession") -> None:
        """Called once when the session's run loop begins, before any trial."""

    def on_trial_start(self, session: "TuningSession", trial_index: int) -> None:
        """Called before each trial is evaluated (per batch, in dispatch order)."""

    def on_trial_error(self, session: "TuningSession", trial: Trial, exc: BaseException | None) -> None:
        """Called when a trial failed or aborted, just before ``on_trial_end``.

        ``trial`` is already recorded in the history (with imputed metrics);
        ``exc`` is the exception that ended the evaluation, when one exists.
        """

    def on_trial_end(self, session: "TuningSession", trial: Trial) -> None:
        """Called after each trial is recorded."""

    def on_batch_end(self, session: "TuningSession", trials: Sequence[Trial]) -> None:
        """Called once per dispatched batch, after all its trials ended."""

    def on_session_end(self, session: "TuningSession") -> None:
        """Called once when the session finishes."""

    def should_stop(self, session: "TuningSession") -> bool:
        """Return True to end the session early."""
        return False


class ConvergenceTracker(Callback):
    """Records (trial index, cumulative cost, best-so-far) tuples."""

    def __init__(self) -> None:
        self.trial_indices: list[int] = []
        self.cumulative_cost: list[float] = []
        self.best_so_far: list[float] = []
        self._cost = 0.0
        self._best_score = np.inf

    def on_trial_end(self, session: "TuningSession", trial: Trial) -> None:
        obj = session.optimizer.objective
        self._cost += trial.cost
        if trial.ok:
            self._best_score = min(self._best_score, obj.score(trial.metric(obj.name)))
        self.trial_indices.append(trial.trial_id)
        self.cumulative_cost.append(self._cost)
        self.best_so_far.append(
            obj.unscore(self._best_score) if np.isfinite(self._best_score) else np.nan
        )

    def curve(self) -> np.ndarray:
        return np.array(self.best_so_far)


class LoggingCallback(Callback):
    """Logs each trial at INFO level — the session's flight recorder."""

    def __init__(self, every: int = 1) -> None:
        self.every = max(1, int(every))

    def on_trial_end(self, session: "TuningSession", trial: Trial) -> None:
        if trial.trial_id % self.every:
            return
        obj = session.optimizer.objective
        value = trial.metrics.get(obj.name, float("nan"))
        logger.info(
            "trial=%d status=%s %s=%.6g cost=%.3g",
            trial.trial_id, trial.status.value, obj.name, value, trial.cost,
        )


class StopWhenReached(Callback):
    """Stop the session once the incumbent reaches a target value."""

    def __init__(self, target: float) -> None:
        self.target = float(target)

    def should_stop(self, session: "TuningSession") -> bool:
        obj = session.optimizer.objective
        try:
            best = session.optimizer.history.best_value(obj)
        except Exception:
            return False
        return obj.score(best) <= obj.score(self.target)


class StopWhenConverged(Callback):
    """Stop when the incumbent has not improved for ``patience`` trials.

    The standard budget-saver: tuning campaigns rarely know the right trial
    count up front, but "no progress in N trials" is a serviceable proxy
    for convergence.
    """

    def __init__(self, patience: int = 15, min_trials: int = 10, rel_tolerance: float = 1e-3) -> None:
        if patience < 1 or min_trials < 1:
            raise ValueError("patience and min_trials must be >= 1")
        self.patience = int(patience)
        self.min_trials = int(min_trials)
        self.rel_tolerance = float(rel_tolerance)
        self._best: float | None = None
        self._since_improvement = 0
        self._n_trials = 0

    def on_trial_end(self, session: "TuningSession", trial: Trial) -> None:
        obj = session.optimizer.objective
        self._n_trials += 1
        if not trial.ok:
            self._since_improvement += 1
            return
        score = obj.score(trial.metric(obj.name))
        if self._best is None or score < self._best - abs(self._best) * self.rel_tolerance:
            self._best = score
            self._since_improvement = 0
        else:
            self._since_improvement += 1

    def should_stop(self, session: "TuningSession") -> bool:
        return self._n_trials >= self.min_trials and self._since_improvement >= self.patience
