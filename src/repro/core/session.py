"""The offline tuning loop (scheduler of the tutorial's architecture slide).

``TuningSession`` wires an :class:`~repro.core.optimizer.Optimizer` to an
*evaluator* — any callable taking a configuration and returning metrics —
and runs the suggest → dispatch → observe-as-completed loop under trial and
cost budgets. Trial execution is delegated to a
:class:`~repro.execution.TrialExecutor`: the default serial executor keeps
the historic in-process semantics, while a thread- or process-pool executor
makes ``batch_size > 1`` run trials genuinely concurrently (asynchronous
parallel tuning). Crashes (:class:`~repro.exceptions.SystemCrashError`) and
early aborts (:class:`~repro.exceptions.TrialAbortedError`) become failed
trials with imputed scores rather than terminating the run; that folding
lives in :func:`repro.core.evaluation.run_evaluation`, shared by every
executor backend.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from ..exceptions import OptimizerError
from ..space import Configuration
from ..telemetry.spans import span, trial_scope
from .callbacks import Callback
from .evaluation import coerce_evaluation
from .optimizer import Optimizer, Trial
from .result import TuningResult

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from ..execution import TrialExecution, TrialExecutor

__all__ = ["TuningSession", "Evaluator"]

#: An evaluator maps a configuration to a metric value or metric mapping.
#: It may also return ``(metrics, cost)`` or an
#: :class:`~repro.core.evaluation.EvaluationResult` to report more.
Evaluator = Callable[[Configuration], Any]


class TuningSession:
    """Drives one offline tuning run.

    Parameters
    ----------
    optimizer:
        Any ask/tell optimizer.
    evaluator:
        Callable evaluating one configuration. May return a float, a metric
        mapping, a ``(metrics, cost)`` tuple, or an
        :class:`~repro.core.evaluation.EvaluationResult`; may raise
        :class:`SystemCrashError` or :class:`TrialAbortedError`.
    max_trials:
        Trial budget.
    max_cost:
        Optional cumulative-cost budget (e.g. total benchmark seconds).
    batch_size:
        Suggestions requested per iteration. With a parallel executor the
        batch runs concurrently and is observed in completion order.
    callbacks:
        Observers; see :mod:`repro.core.callbacks` for the hook ordering.
    executor:
        A :class:`~repro.execution.TrialExecutor`; defaults to the serial
        in-thread executor (historic behavior). The session does not own
        the executor — reuse it across sessions and ``shutdown()`` it when
        done (or use it as a context manager).
    """

    def __init__(
        self,
        optimizer: Optimizer,
        evaluator: Evaluator,
        max_trials: int,
        max_cost: float | None = None,
        batch_size: int = 1,
        callbacks: Sequence[Callback] = (),
        executor: "TrialExecutor | None" = None,
    ) -> None:
        if max_trials < 1:
            raise OptimizerError(f"max_trials must be >= 1, got {max_trials}")
        if batch_size < 1:
            raise OptimizerError(f"batch_size must be >= 1, got {batch_size}")
        self.optimizer = optimizer
        self.evaluator = evaluator
        self.max_trials = int(max_trials)
        self.max_cost = max_cost
        self.batch_size = int(batch_size)
        self.callbacks = list(callbacks)
        self.executor = executor
        self.last_suggest_latency_s = 0.0

    # -- internals ---------------------------------------------------------
    @staticmethod
    def _unpack(result: Any) -> tuple[Mapping[str, float] | float, float]:
        """Normalise evaluator output to (metrics, cost).

        Kept for backward compatibility; the canonical normalisation is
        :func:`repro.core.evaluation.coerce_evaluation`.
        """
        ev = coerce_evaluation(result)
        return ev.metrics, ev.cost

    def _spent(self) -> float:
        return self.optimizer.history.total_cost()

    def _budget_left(self, n_done: int) -> bool:
        if n_done >= self.max_trials:
            return False
        if self.max_cost is not None and self._spent() >= self.max_cost:
            return False
        return any(cb.should_stop(self) for cb in self.callbacks) is False

    def _make_executor(self) -> "TrialExecutor":
        if self.executor is not None:
            return self.executor
        from ..execution import SerialExecutor  # deferred: core must not hard-depend on execution

        return SerialExecutor()

    # -- main loop ----------------------------------------------------------
    def run(self) -> TuningResult:
        """Run to budget exhaustion and return the result."""
        executor = self._make_executor()
        for cb in self.callbacks:
            cb.on_session_start(self)
        n_done = len(self.optimizer.history)
        while self._budget_left(n_done):
            want = min(self.batch_size, self.max_trials - n_done)
            # For single-trial batches the whole iteration (suggest +
            # execute) belongs to one trial: open a trial scope so optimizer
            # spans (surrogate.fit, acquisition.optimize) attach to it. With
            # want > 1 the suggest serves several trials and stays at the
            # session level; each executor task opens its own scope.
            with (trial_scope() if want == 1 else nullcontext()):
                t0 = time.perf_counter()
                with span("optimizer.suggest", n=want):
                    configs = self.optimizer.suggest(want)
                self.last_suggest_latency_s = time.perf_counter() - t0
                per_trial_suggest_s = self.last_suggest_latency_s / max(1, len(configs))
                for i in range(len(configs)):
                    for cb in self.callbacks:
                        cb.on_trial_start(self, n_done + i)
                batch: list[Trial] = []
                results = executor.map(self.evaluator, configs)
                try:
                    for execution in results:
                        trial = self._observe_execution(execution, per_trial_suggest_s)
                        n_done += 1
                        batch.append(trial)
                        if not trial.ok:
                            for cb in self.callbacks:
                                cb.on_trial_error(self, trial, execution.result.exception)
                        for cb in self.callbacks:
                            cb.on_trial_end(self, trial)
                        if not self._budget_left(n_done):
                            break  # lazy executors skip the unevaluated remainder
                finally:
                    close = getattr(results, "close", None)
                    if close is not None:
                        close()
            for cb in self.callbacks:
                cb.on_batch_end(self, batch)
        for cb in self.callbacks:
            cb.on_session_end(self)
        return self.result()

    def _observe_execution(self, execution: "TrialExecution", suggest_latency_s: float = 0.0) -> Trial:
        """Record one executed trial with the optimizer, carrying the
        execution-side instrumentation into ``Trial.context``."""
        result = execution.result
        context = dict(result.metadata)
        context["retries"] = execution.retries
        context["evaluate_s"] = execution.wall_clock_s
        context["suggest_latency_s"] = suggest_latency_s
        context.setdefault("outcome", result.outcome)
        if execution.queue_s:
            context["queue_s"] = execution.queue_s
        if execution.attempts:
            context["attempts"] = list(execution.attempts)
        if execution.attempt_s:
            context["attempt_s"] = [round(a, 6) for a in execution.attempt_s]
        if result.ok:
            trial = self.optimizer.observe(
                execution.config,
                result.metrics,
                cost=result.cost,
                status=result.status,
                context=context,
            )
        else:
            trial = self.optimizer.observe_failure(
                execution.config, cost=result.cost, status=result.status, context=context
            )
        # The trial id exists only now: bind it onto the telemetry ref that
        # the executor's spans were recorded against, so the trace can
        # attribute them. (None for process pools — spans didn't cross.)
        if execution.span_ref is not None:
            execution.span_ref.trial_id = trial.trial_id
        return trial

    def result(self) -> TuningResult:
        """Snapshot the current result (valid mid-run as well)."""
        obj = self.optimizer.objective
        try:
            best = self.optimizer.history.best(obj)
        except OptimizerError:
            # Every trial failed: fall back to the least-bad imputed trial so
            # callers still get a full report of the (disastrous) run.
            trials = [t for t in self.optimizer.history if obj.name in t.metrics]
            if not trials:
                raise
            best = min(trials, key=lambda t: obj.score(t.metric(obj.name)))
        return TuningResult(
            best_config=best.config,
            best_value=best.metric(obj.name),
            objective=obj,
            history=self.optimizer.history,
            n_trials=len(self.optimizer.history),
            total_cost=self._spent(),
        )
