"""The offline tuning loop (scheduler of the tutorial's architecture slide).

``TuningSession`` wires an :class:`~repro.core.optimizer.Optimizer` to an
*evaluator* — any callable taking a configuration and returning metrics —
and runs the suggest → evaluate → observe loop under trial/cost budgets.
Crashes (:class:`~repro.exceptions.SystemCrashError`) and early aborts
(:class:`~repro.exceptions.TrialAbortedError`) become failed trials with
imputed scores rather than terminating the run.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ..exceptions import OptimizerError, SystemCrashError, TrialAbortedError
from ..space import Configuration
from .callbacks import Callback
from .optimizer import Optimizer, TrialStatus
from .result import TuningResult

__all__ = ["TuningSession", "Evaluator"]

#: An evaluator maps a configuration to a metric value or metric mapping.
#: It may also return ``(metrics, cost)`` to report trial cost explicitly.
Evaluator = Callable[[Configuration], Any]


class TuningSession:
    """Drives one offline tuning run.

    Parameters
    ----------
    optimizer:
        Any ask/tell optimizer.
    evaluator:
        Callable evaluating one configuration. May return a float, a metric
        mapping, or a ``(metrics, cost)`` tuple; may raise
        :class:`SystemCrashError` or :class:`TrialAbortedError`.
    max_trials:
        Trial budget.
    max_cost:
        Optional cumulative-cost budget (e.g. total benchmark seconds).
    batch_size:
        Suggestions requested per iteration (synchronous parallel tuning).
    callbacks:
        Observers; see :mod:`repro.core.callbacks`.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        evaluator: Evaluator,
        max_trials: int,
        max_cost: float | None = None,
        batch_size: int = 1,
        callbacks: Sequence[Callback] = (),
    ) -> None:
        if max_trials < 1:
            raise OptimizerError(f"max_trials must be >= 1, got {max_trials}")
        if batch_size < 1:
            raise OptimizerError(f"batch_size must be >= 1, got {batch_size}")
        self.optimizer = optimizer
        self.evaluator = evaluator
        self.max_trials = int(max_trials)
        self.max_cost = max_cost
        self.batch_size = int(batch_size)
        self.callbacks = list(callbacks)

    # -- internals ---------------------------------------------------------
    @staticmethod
    def _unpack(result: Any) -> tuple[Mapping[str, float] | float, float]:
        """Normalise evaluator output to (metrics, cost)."""
        if isinstance(result, tuple) and len(result) == 2:
            metrics, cost = result
            return metrics, float(cost)
        return result, 1.0

    def _spent(self) -> float:
        return self.optimizer.history.total_cost()

    def _budget_left(self, n_done: int) -> bool:
        if n_done >= self.max_trials:
            return False
        if self.max_cost is not None and self._spent() >= self.max_cost:
            return False
        return any(cb.should_stop(self) for cb in self.callbacks) is False

    # -- main loop ----------------------------------------------------------
    def run(self) -> TuningResult:
        """Run to budget exhaustion and return the result."""
        n_done = len(self.optimizer.history)
        while self._budget_left(n_done):
            want = min(self.batch_size, self.max_trials - n_done)
            configs = self.optimizer.suggest(want)
            for config in configs:
                for cb in self.callbacks:
                    cb.on_trial_start(self, n_done)
                trial = self._evaluate_one(config)
                n_done += 1
                for cb in self.callbacks:
                    cb.on_trial_end(self, trial)
                if not self._budget_left(n_done):
                    break
        for cb in self.callbacks:
            cb.on_session_end(self)
        return self.result()

    def _evaluate_one(self, config: Configuration):
        try:
            metrics, cost = self._unpack(self.evaluator(config))
        except SystemCrashError:
            return self.optimizer.observe_failure(config, status=TrialStatus.FAILED)
        except TrialAbortedError as abort:
            # An aborted elapsed-time benchmark still carries information: the
            # run exceeded the abort threshold, so report that censored value.
            censored = getattr(abort, "censored_metrics", None)
            if censored:
                return self.optimizer.observe(
                    config, censored, cost=getattr(abort, "cost", 1.0), status=TrialStatus.SUCCEEDED
                )
            return self.optimizer.observe_failure(config, status=TrialStatus.ABORTED)
        return self.optimizer.observe(config, metrics, cost=cost)

    def result(self) -> TuningResult:
        """Snapshot the current result (valid mid-run as well)."""
        obj = self.optimizer.objective
        try:
            best = self.optimizer.history.best(obj)
        except OptimizerError:
            # Every trial failed: fall back to the least-bad imputed trial so
            # callers still get a full report of the (disastrous) run.
            trials = [t for t in self.optimizer.history if obj.name in t.metrics]
            if not trials:
                raise
            best = min(trials, key=lambda t: obj.score(t.metric(obj.name)))
        return TuningResult(
            best_config=best.config,
            best_value=best.metric(obj.name),
            objective=obj,
            history=self.optimizer.history,
            n_trials=len(self.optimizer.history),
            total_cost=self._spent(),
        )
