"""The offline tuning loop (scheduler of the tutorial's architecture slide).

``TuningSession`` wires an :class:`~repro.core.optimizer.Optimizer` to an
*evaluator* — any callable taking a configuration and returning metrics —
and runs the suggest → dispatch → observe-as-completed loop under trial and
cost budgets. Trial execution is delegated to a
:class:`~repro.execution.TrialExecutor`: the default serial executor keeps
the historic in-process semantics, while a thread- or process-pool executor
makes ``batch_size > 1`` run trials genuinely concurrently (asynchronous
parallel tuning). Crashes (:class:`~repro.exceptions.SystemCrashError`) and
early aborts (:class:`~repro.exceptions.TrialAbortedError`) become failed
trials with imputed scores rather than terminating the run; that folding
lives in :func:`repro.core.evaluation.run_evaluation`, shared by every
executor backend.

Two ways to drive a session:

* :meth:`TuningSession.run` — the closed loop: the session evaluates its
  own suggestions until the budget is spent.
* :meth:`TuningSession.ask` / :meth:`TuningSession.tell` — the open loop:
  the caller evaluates configurations elsewhere and reports results back
  as :class:`~repro.core.codec.TrialReport` payloads. This is the same
  surface the HTTP service exposes, with the same dataclasses; reports
  carrying a ``report_id`` are idempotent.

When a :class:`~repro.core.journal.TrialStore` is attached (normally by a
:class:`~repro.core.manager.SessionManager`), every observed trial —
whichever loop produced it — is durably journaled before the observe
returns, which is what makes sessions resumable after a crash.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from ..exceptions import OptimizerError
from ..space import Configuration
from ..telemetry.spans import current_trace_id, emit_event, span, trial_scope
from .callbacks import Callback
from .codec import SuggestRequest, Suggestion, TrialReport, config_from_values, encode_trial, json_safe
from .evaluation import coerce_evaluation
from .journal import TransientStorageError
from .optimizer import Optimizer, Trial, TrialStatus
from .result import TuningResult

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from ..execution import TrialExecution, TrialExecutor
    from .journal import TrialStore

__all__ = ["TuningSession", "Evaluator"]

#: An evaluator maps a configuration to a metric value or metric mapping.
#: It may also return ``(metrics, cost)`` or an
#: :class:`~repro.core.evaluation.EvaluationResult` to report more.
Evaluator = Callable[[Configuration], Any]


class TuningSession:
    """Drives one offline tuning run.

    Parameters
    ----------
    optimizer:
        Any ask/tell optimizer.
    evaluator:
        Callable evaluating one configuration. May return a float, a metric
        mapping, a ``(metrics, cost)`` tuple, or an
        :class:`~repro.core.evaluation.EvaluationResult`; may raise
        :class:`SystemCrashError` or :class:`TrialAbortedError`.
    max_trials:
        Trial budget.
    max_cost:
        Optional cumulative-cost budget (e.g. total benchmark seconds).
    batch_size:
        Suggestions requested per iteration. With a parallel executor the
        batch runs concurrently and is observed in completion order.
    callbacks:
        Observers; see :mod:`repro.core.callbacks` for the hook ordering.
    executor:
        A :class:`~repro.execution.TrialExecutor`; defaults to the serial
        in-thread executor (historic behavior). The session does not own
        the executor — reuse it across sessions and ``shutdown()`` it when
        done (or use it as a context manager).
    store, session_id:
        Optional durable :class:`~repro.core.journal.TrialStore` to journal
        every observed trial into (under ``session_id``). Normally wired by
        a :class:`~repro.core.manager.SessionManager` rather than directly.
    evaluator:
        May be ``None`` for ask/tell-only sessions; :meth:`run` then raises.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        evaluator: Evaluator | None,
        max_trials: int,
        max_cost: float | None = None,
        batch_size: int = 1,
        callbacks: Sequence[Callback] = (),
        executor: "TrialExecutor | None" = None,
        store: "TrialStore | None" = None,
        session_id: str | None = None,
        spill_limit: int = 256,
    ) -> None:
        if max_trials < 1:
            raise OptimizerError(f"max_trials must be >= 1, got {max_trials}")
        if batch_size < 1:
            raise OptimizerError(f"batch_size must be >= 1, got {batch_size}")
        self.optimizer = optimizer
        self.evaluator = evaluator
        self.max_trials = int(max_trials)
        self.max_cost = max_cost
        self.batch_size = int(batch_size)
        self.callbacks = list(callbacks)
        self.executor = executor
        self.store = store
        self.session_id = session_id
        #: Space-lint report attached by :meth:`SessionManager.create`
        #: (``None`` for sessions built directly or with ``lint=False``).
        self.lint_report = None
        self.last_suggest_latency_s = 0.0
        self._next_ask_id = 0
        self._pending_asks: dict[int, Configuration] = {}
        self._report_trial_ids: dict[str, int] = {}  # report_id -> trial_id (tell idempotency)
        #: Resume generation: 0 for a fresh session, bumped by
        #: :meth:`SessionManager.resume` past the highest journaled epoch.
        #: Journaled per trial so ``repro replay`` knows where each process
        #: incarnation (and hence each fresh RNG re-seeding) began.
        self.epoch = 0
        self._suggest_calls = 0  # suggest() invocations this epoch
        self._ask_meta: dict[int, dict[str, Any]] = {}  # ask_id -> batch coordinates
        self._space_hash: str | None = None
        #: Graceful degradation for transient store failures: encoded trial
        #: records that could not be journaled yet, flushed in order before
        #: the next append (or explicitly via :meth:`flush_spill`). The
        #: limit is a backpressure threshold, not a drop policy — records
        #: are never discarded; past the limit the failure propagates so
        #: callers stop feeding an unwritable store.
        self.spill_limit = int(spill_limit)
        self._spill: list[tuple[int, dict[str, Any]]] = []

    # -- internals ---------------------------------------------------------
    @staticmethod
    def _unpack(result: Any) -> tuple[Mapping[str, float] | float, float]:
        """Normalise evaluator output to (metrics, cost).

        Kept for backward compatibility; the canonical normalisation is
        :func:`repro.core.evaluation.coerce_evaluation`.
        """
        ev = coerce_evaluation(result)
        return ev.metrics, ev.cost

    def _spent(self) -> float:
        return self.optimizer.history.total_cost()

    def _budget_left(self, n_done: int) -> bool:
        if n_done >= self.max_trials:
            return False
        if self.max_cost is not None and self._spent() >= self.max_cost:
            return False
        return any(cb.should_stop(self) for cb in self.callbacks) is False

    def _make_executor(self) -> "TrialExecutor":
        if self.executor is not None:
            return self.executor
        from ..execution import SerialExecutor  # deferred: core must not hard-depend on execution

        return SerialExecutor()

    def _suggest_tracked(self, n: int) -> tuple[list[Configuration], dict[str, Any]]:
        """One optimizer ``suggest(n)`` call, with provenance coordinates.

        Every suggest — closed loop, open loop, or the service's ``/step``
        — funnels through here so the journal can record, for each trial,
        exactly which suggest call produced it (``call``), how wide the
        batch was (``n``), and how many trials the optimizer had observed
        at that moment (``observed``). Replay re-executes suggest calls
        from these coordinates.
        """
        ask_info = {
            "call": self._suggest_calls,
            "n": int(n),
            "observed": len(self.optimizer.history),
        }
        self._suggest_calls += 1
        t0 = time.perf_counter()
        with span("optimizer.suggest", n=n):
            configs = self.optimizer.suggest(n)
        self.last_suggest_latency_s = time.perf_counter() - t0
        return configs, ask_info

    # -- ask/tell (open loop) ------------------------------------------------
    @property
    def is_complete(self) -> bool:
        """Whether the trial budget has been exhausted."""
        return len(self.optimizer.history) >= self.max_trials

    def ask(
        self,
        request: SuggestRequest | int | None = None,
        *,
        count: int | None = None,
    ) -> list[Suggestion]:
        """Propose the next configurations without evaluating them.

        The open-loop half of the unified ask/tell surface: the caller (a
        library user, or the HTTP service on behalf of a remote client)
        evaluates the returned configurations and reports results via
        :meth:`tell`. Each suggestion carries a per-session ``ask_id``
        token to echo back in the matching report.

        ``count`` is keyword-only sugar for a batch ask (``ask(count=8)``);
        batch asks reach the optimizer as one ``suggest(n)`` call so
        surrogate optimizers can amortize a single fit across the batch.
        """
        if count is not None:
            if request is not None:
                raise OptimizerError("pass either a request or count=, not both")
            request = SuggestRequest(n=int(count))
        elif request is None:
            request = SuggestRequest()
        elif isinstance(request, int):
            request = SuggestRequest(n=request)
        remaining = self.max_trials - len(self.optimizer.history)
        if remaining <= 0:
            raise OptimizerError(
                f"session{f' {self.session_id!r}' if self.session_id else ''} is complete "
                f"({self.max_trials} trials)"
            )
        configs, ask_info = self._suggest_tracked(min(request.n, remaining))
        suggestions = []
        for i, config in enumerate(configs):
            ask_id = self._next_ask_id
            self._next_ask_id += 1
            self._pending_asks[ask_id] = config
            self._ask_meta[ask_id] = {**ask_info, "i": i}
            suggestions.append(
                Suggestion(
                    config=json_safe(config.as_dict()),
                    ask_id=ask_id,
                    session_id=self.session_id,
                    fidelity=request.fidelity,
                )
            )
        return suggestions

    def tell(self, report: TrialReport | Mapping[str, Any]) -> tuple[Trial, bool]:
        """Record one evaluation result; returns ``(trial, duplicate)``.

        Duplicate reports (same ``report_id`` as an already-recorded one,
        e.g. a client retry after a dropped response) return the original
        trial with ``duplicate=True`` and change nothing. The trial is
        journaled to the attached store *before* this method returns, so an
        acknowledged tell survives a crash.
        """
        if not isinstance(report, TrialReport):
            report = TrialReport.from_dict(report)
        if report.report_id is not None and report.report_id in self._report_trial_ids:
            trial_id = self._report_trial_ids[report.report_id]
            if self._spill:
                # A retried report is a recovery signal: try to drain the
                # spill so the trial we re-acknowledge becomes durable.
                try:
                    self._flush_queue()
                except TransientStorageError as err:
                    emit_event(
                        "store.spill",
                        severity="warning",
                        message=f"spill flush on retried report failed: {err}",
                        session_id=self.session_id,
                        spilled=len(self._spill),
                    )
            return self.optimizer.history.trials[trial_id], True
        config = self._pending_asks.pop(report.ask_id, None) if report.ask_id is not None else None
        ask_info = self._ask_meta.pop(report.ask_id, None) if report.ask_id is not None else None
        if config is None:
            # Unknown or pre-restart ask: the report carries the full
            # configuration values, so rebuild (and re-validate) from them.
            config = config_from_values(report.config, self.optimizer.space)
        status = TrialStatus(report.status)
        context = dict(report.context)
        if status is TrialStatus.SUCCEEDED:
            trial = self.optimizer.observe(
                config,
                report.metrics,
                cost=report.cost,
                status=status,
                fidelity=report.fidelity,
                context=context,
            )
        else:
            trial = self.optimizer.observe_failure(
                config, cost=report.cost, status=status, context=context
            )
        self._record(trial, report_id=report.report_id, ask_info=ask_info)
        if not trial.ok:
            for cb in self.callbacks:
                cb.on_trial_error(self, trial, None)
        for cb in self.callbacks:
            cb.on_trial_end(self, trial)
        return trial, False

    def _space_version_hash(self) -> str:
        if self._space_hash is None:
            from ..space.serialize import space_version_hash  # deferred: avoid a space->core cycle

            self._space_hash = space_version_hash(self.optimizer.space)
        return self._space_hash

    def _provenance(self, trial: Trial, ask_info: Mapping[str, Any] | None) -> dict[str, Any]:
        """The lineage block journaled alongside one trial.

        Captured *after* the observe, so the digests describe the optimizer
        state that the next suggest will draw from — replay re-observes the
        journal prefix and compares against exactly this.
        """
        from .. import __version__  # deferred: the package imports this module

        provenance: dict[str, Any] = {
            "version": 1,
            "digest": self.optimizer.state_digest_parts(),
            "space": self._space_version_hash(),
            "seed": self.optimizer.seed,
            "epoch": self.epoch,
            "ask": dict(ask_info) if ask_info is not None else None,
            "library": __version__,
        }
        trace_id = current_trace_id()
        if trace_id is not None:
            provenance["trace_id"] = trace_id
        executor = {
            key: trial.context[key]
            for key in ("queue_s", "attempt_s", "attempts", "retries")
            if key in trial.context
        }
        if executor:
            provenance["executor"] = executor
        return provenance

    def _record(self, trial: Trial, report_id: str | None = None, ask_info: Mapping[str, Any] | None = None) -> None:
        """Durably journal one observed trial (no-op without a store).

        On a *transient* store failure the encoded record is held in the
        bounded in-memory spill buffer instead of failing the observe:
        the tuning loop degrades (acknowledged trials are momentarily
        memory-only) rather than halting, and the buffer is flushed — in
        order, ahead of newer records — as soon as the store recovers.
        Once the buffer exceeds ``spill_limit`` the failure propagates as
        backpressure. Permanent :class:`StorageError`\\ s always propagate.
        """
        if report_id is not None:
            self._report_trial_ids[report_id] = trial.trial_id
        if self.store is None or self.session_id is None:
            return
        trial.provenance = self._provenance(trial, ask_info)
        queued = len(self._spill) + 1
        self._spill.append((trial.trial_id, encode_trial(trial, report_id)))
        try:
            self._flush_queue()
        except TransientStorageError as err:
            emit_event(
                "store.spill",
                severity="warning",
                message=str(err),
                session_id=self.session_id,
                spilled=len(self._spill),
                spill_limit=self.spill_limit,
            )
            if len(self._spill) > self.spill_limit:
                raise
            return
        if queued > 1:
            emit_event(
                "store.spill_flush",
                message=f"spill buffer drained ({queued} records)",
                session_id=self.session_id,
                flushed=queued,
            )

    def _flush_queue(self) -> None:
        """Append every spilled record, oldest first; stop at the first
        transient failure (leaving the remainder spilled)."""
        while self._spill:
            trial_id, record = self._spill[0]
            appended = self.store.append_trial(self.session_id, record)
            if appended.trial_id != trial_id:
                raise OptimizerError(
                    f"journal/optimizer trial-id divergence in session {self.session_id!r}: "
                    f"journal assigned {appended.trial_id}, optimizer {trial_id} "
                    "(was the optimizer observed outside the session?)"
                )
            self._spill.pop(0)

    @property
    def spilled_count(self) -> int:
        """Number of observed-but-not-yet-journaled records."""
        return len(self._spill)

    def flush_spill(self, retries: int = 8, policy: "Any | None" = None) -> int:
        """Drain the spill buffer with bounded jittered retries.

        Called by the service when a session completes (the last chance to
        make every acknowledged trial durable) and usable by library
        callers after a store outage. Returns the number of records
        flushed; re-raises the final :class:`TransientStorageError` if the
        store stays unavailable for the whole retry budget.
        """
        if not self._spill:
            return 0
        if policy is None:
            from ..resilience import BackoffPolicy  # deferred: core must not hard-depend

            policy = BackoffPolicy(base_s=0.02, cap_s=0.5)
        pending = len(self._spill)
        for attempt in range(retries + 1):
            try:
                self._flush_queue()
            except TransientStorageError:
                if attempt == retries:
                    raise
                time.sleep(policy.delay(attempt))
            else:
                emit_event(
                    "store.spill_flush",
                    message=f"spill buffer drained ({pending} records)",
                    session_id=self.session_id,
                    flushed=pending,
                )
                return pending
        return 0  # pragma: no cover - loop always returns or raises

    # -- main loop ----------------------------------------------------------
    def run(self) -> TuningResult:
        """Run to budget exhaustion and return the result."""
        if self.evaluator is None:
            raise OptimizerError(
                "session has no evaluator: drive it via ask()/tell(), or construct "
                "it with an evaluator to use run()"
            )
        executor = self._make_executor()
        for cb in self.callbacks:
            cb.on_session_start(self)
        n_done = len(self.optimizer.history)
        while self._budget_left(n_done):
            want = min(self.batch_size, self.max_trials - n_done)
            # For single-trial batches the whole iteration (suggest +
            # execute) belongs to one trial: open a trial scope so optimizer
            # spans (surrogate.fit, acquisition.optimize) attach to it. With
            # want > 1 the suggest serves several trials and stays at the
            # session level; each executor task opens its own scope.
            with (trial_scope() if want == 1 else nullcontext()):
                configs, ask_info = self._suggest_tracked(want)
                per_trial_suggest_s = self.last_suggest_latency_s / max(1, len(configs))
                for i in range(len(configs)):
                    for cb in self.callbacks:
                        cb.on_trial_start(self, n_done + i)
                batch: list[Trial] = []
                results = executor.map(self.evaluator, configs)
                try:
                    for execution in results:
                        trial = self._observe_execution(execution, per_trial_suggest_s, ask_info)
                        n_done += 1
                        batch.append(trial)
                        if not trial.ok:
                            for cb in self.callbacks:
                                cb.on_trial_error(self, trial, execution.result.exception)
                        for cb in self.callbacks:
                            cb.on_trial_end(self, trial)
                        if not self._budget_left(n_done):
                            break  # lazy executors skip the unevaluated remainder
                finally:
                    close = getattr(results, "close", None)
                    if close is not None:
                        close()
            for cb in self.callbacks:
                cb.on_batch_end(self, batch)
        for cb in self.callbacks:
            cb.on_session_end(self)
        return self.result()

    def _observe_execution(
        self,
        execution: "TrialExecution",
        suggest_latency_s: float = 0.0,
        ask_info: Mapping[str, Any] | None = None,
    ) -> Trial:
        """Record one executed trial with the optimizer, carrying the
        execution-side instrumentation into ``Trial.context``."""
        result = execution.result
        context = dict(result.metadata)
        context["retries"] = execution.retries
        context["evaluate_s"] = execution.wall_clock_s
        context["suggest_latency_s"] = suggest_latency_s
        context.setdefault("outcome", result.outcome)
        if execution.queue_s:
            context["queue_s"] = execution.queue_s
        if execution.attempts:
            context["attempts"] = list(execution.attempts)
        if execution.attempt_s:
            context["attempt_s"] = [round(a, 6) for a in execution.attempt_s]
        if result.ok:
            trial = self.optimizer.observe(
                execution.config,
                result.metrics,
                cost=result.cost,
                status=result.status,
                context=context,
            )
        else:
            trial = self.optimizer.observe_failure(
                execution.config, cost=result.cost, status=result.status, context=context
            )
        # The trial id exists only now: bind it onto the telemetry ref that
        # the executor's spans were recorded against, so the trace can
        # attribute them. (None for process pools — spans didn't cross.)
        if execution.span_ref is not None:
            execution.span_ref.trial_id = trial.trial_id
        self._record(
            trial,
            ask_info=None if ask_info is None else {**ask_info, "i": execution.index},
        )
        return trial

    def result(self) -> TuningResult:
        """Snapshot the current result (valid mid-run as well)."""
        obj = self.optimizer.objective
        try:
            best = self.optimizer.history.best(obj)
        except OptimizerError:
            # Every trial failed: fall back to the least-bad imputed trial so
            # callers still get a full report of the (disastrous) run.
            trials = [t for t in self.optimizer.history if obj.name in t.metrics]
            if not trials:
                raise
            best = min(trials, key=lambda t: obj.score(t.metric(obj.name)))
        return TuningResult(
            best_config=best.config,
            best_value=best.metric(obj.name),
            objective=obj,
            history=self.optimizer.history,
            n_trials=len(self.optimizer.history),
            total_cost=self._spent(),
        )
