"""The evaluation contract: one normalized result type for every evaluator.

Historically evaluators could return three ad-hoc shapes — a bare float, a
metric mapping, or a ``(metrics, cost)`` tuple — and every consumer
(``TuningSession``, ``ParallelRunner``, executors) re-implemented the
unpacking plus the crash/abort ``try/except`` dance. This module is the one
place where raw evaluator output becomes an :class:`EvaluationResult`:

* :func:`coerce_evaluation` normalizes the legacy return shapes;
* :func:`run_evaluation` additionally folds the exception protocol
  (:class:`~repro.exceptions.SystemCrashError`,
  :class:`~repro.exceptions.TrialAbortedError` with optional censored
  metrics) into statuses, so callers observe results mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..exceptions import SystemCrashError, TrialAbortedError
from ..space import Configuration
from .optimizer import TrialStatus

__all__ = ["EvaluationResult", "coerce_evaluation", "run_evaluation"]


@dataclass
class EvaluationResult:
    """What evaluating one configuration produced.

    Parameters
    ----------
    metrics:
        Metric mapping or a bare objective value; ``None`` when the trial
        produced nothing measurable (crash, abort without censoring).
    cost:
        Resource cost of the evaluation (benchmark seconds, dollars, …).
    status:
        Trial lifecycle outcome. Censored early-aborts count as
        ``SUCCEEDED`` — the censored bound is real information.
    metadata:
        Free-form annotations (``outcome``, ``error`` text, …) that flow
        into :attr:`Trial.context` and telemetry spans.
    exception:
        The exception that terminated the evaluation, if any. Kept out of
        ``metadata`` so serialization stays JSON-clean.
    """

    metrics: Mapping[str, float] | float | None
    cost: float = 1.0
    status: TrialStatus = TrialStatus.SUCCEEDED
    metadata: dict[str, Any] = field(default_factory=dict)
    exception: BaseException | None = None

    @property
    def ok(self) -> bool:
        return self.status is TrialStatus.SUCCEEDED

    @property
    def outcome(self) -> str:
        """Short outcome tag: success / crash / abort / censored / timeout."""
        return str(self.metadata.get("outcome", "success" if self.ok else self.status.value))


def coerce_evaluation(raw: Any) -> EvaluationResult:
    """Normalize any evaluator return value to an :class:`EvaluationResult`.

    Accepted shapes, in order of preference:

    1. an :class:`EvaluationResult` (returned as-is);
    2. a ``(metrics, cost)`` 2-tuple;
    3. a bare metric mapping or float (cost defaults to ``1.0``).

    .. deprecated::
        Shapes 2 and 3 are the legacy evaluator contract and remain
        supported indefinitely for backward compatibility, but new
        evaluators should return :class:`EvaluationResult` directly —
        it carries status and metadata the ad-hoc shapes cannot express.
    """
    if isinstance(raw, EvaluationResult):
        return raw
    if isinstance(raw, tuple) and len(raw) == 2:
        metrics, cost = raw
        return EvaluationResult(metrics=metrics, cost=float(cost))
    return EvaluationResult(metrics=raw, cost=1.0)


def run_evaluation(
    evaluator: Callable[[Configuration], Any],
    config: Configuration,
) -> EvaluationResult:
    """Evaluate ``config``, folding the exception protocol into statuses.

    * :class:`SystemCrashError` → ``FAILED`` (``outcome="crash"``);
    * :class:`TrialAbortedError` with ``censored_metrics`` → ``SUCCEEDED``
      with the censored bound as the metric (``outcome="censored"``);
    * :class:`TrialAbortedError` without → ``ABORTED`` (``outcome="abort"``).

    Imputation of failed trials is *not* done here — optimizers impute at
    observe/fit time against the live score scale (see
    :meth:`Optimizer.observe_failure` and :meth:`History.training_data`).
    """
    try:
        return coerce_evaluation(evaluator(config))
    except SystemCrashError as crash:
        return EvaluationResult(
            metrics=None,
            status=TrialStatus.FAILED,
            metadata={"outcome": "crash", "error": str(crash)},
            exception=crash,
        )
    except TrialAbortedError as abort:
        censored = getattr(abort, "censored_metrics", None)
        if censored:
            return EvaluationResult(
                metrics=dict(censored),
                cost=float(getattr(abort, "cost", 1.0)),
                status=TrialStatus.SUCCEEDED,
                metadata={"outcome": "censored", "error": str(abort)},
                exception=abort,
            )
        return EvaluationResult(
            metrics=None,
            status=TrialStatus.ABORTED,
            metadata={"outcome": "abort", "error": str(abort)},
            exception=abort,
        )
