"""Deterministic replay of journaled tuning sessions (``repro replay``).

A session journal plus its :class:`~repro.core.journal.SessionMeta` is a
complete record of a tuning campaign: the serialised space, the optimizer
spec (name, seed, options), and — since trial records carry a
``provenance`` block — the exact coordinates of every suggest call
(``{call, n, observed, i}``), the optimizer state digest after every
observe, and the epoch (process incarnation) each trial belonged to.

:func:`replay_session` re-executes the campaign from nothing but the
store and verifies it bit-exactly against the journal:

* the space is rebuilt from the serialised dict and its version hash
  checked against every record;
* per epoch, a **fresh** optimizer is constructed from the stored spec
  (mirroring :meth:`SessionManager.resume`: each resume re-seeded the RNG
  and exactly re-observed the journal prefix, so replay does the same);
* suggest calls are re-executed **at the recorded history positions** —
  call ``k`` with batch width ``n`` runs exactly when the optimizer has
  observed ``observed`` trials, reproducing the original RNG stream even
  when asks and tells interleaved — and each journaled configuration is
  compared against position ``i`` of its re-executed batch;
* failed trials re-run crash-score imputation
  (:meth:`Optimizer.observe_failure`) and the re-imputed metrics are
  compared against the journaled ones;
* after every observe the replayed :meth:`Optimizer.state_digest_parts`
  is compared against the journaled digest.

The first mismatch stops the replay: a :class:`ReplayDivergence` names
the trial, the kind of mismatch, the recorded and replayed values, and
the per-component digest delta, and is emitted through the event log as
a ``replay.divergence`` event. Records without provenance (journals
written before provenance capture) are replayed observe-only and counted
as unverified rather than failing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from ..space.serialize import space_from_dict, space_to_dict, space_version_hash
from ..telemetry.spans import emit_event, span
from ..telemetry.tracing import SessionTrace
from .codec import decode_trial, json_safe
from .journal import StorageError, TrialStore
from .optimizer import Optimizer, TrialStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..space import ConfigurationSpace

__all__ = ["ReplayDivergence", "ReplayReport", "replay_session"]


@dataclass
class ReplayDivergence:
    """The first point where a replay stopped matching the journal.

    ``kind`` is one of ``config`` (re-executed suggest produced a
    different configuration), ``metrics`` (crash re-imputation produced
    different values), ``digest`` (optimizer state digest mismatch after
    an identical observe — e.g. a corrupted journal score), ``space``
    (space version hash mismatch), or ``schedule`` (the journal's ask
    coordinates are internally inconsistent).
    """

    trial_id: int
    kind: str
    recorded: Any
    replayed: Any
    digest_delta: dict[str, dict[str, str]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "trial_id": self.trial_id,
            "kind": self.kind,
            "recorded": self.recorded,
            "replayed": self.replayed,
            "digest_delta": self.digest_delta,
        }

    def format(self) -> str:
        lines = [f"first divergence at trial {self.trial_id} ({self.kind}):"]
        if self.digest_delta:
            for part in sorted(self.digest_delta):
                delta = self.digest_delta[part]
                lines.append(
                    f"  digest[{part}]: recorded {delta['recorded']} != replayed {delta['replayed']}"
                )
        else:
            lines.append(f"  recorded: {self.recorded}")
            lines.append(f"  replayed: {self.replayed}")
        return "\n".join(lines)


@dataclass
class ReplayReport:
    """Outcome of one :func:`replay_session` run."""

    session_id: str
    optimizer: str
    n_records: int
    n_epochs: int
    n_suggest_calls: int
    n_verified: int          # configs matched against re-executed suggests
    n_unverified: int        # records replayed without config verification
    n_failures_verified: int  # crash imputations re-run and matched
    divergence: ReplayDivergence | None = None

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def to_dict(self) -> dict[str, Any]:
        return {
            "session_id": self.session_id,
            "optimizer": self.optimizer,
            "ok": self.ok,
            "n_records": self.n_records,
            "n_epochs": self.n_epochs,
            "n_suggest_calls": self.n_suggest_calls,
            "n_verified": self.n_verified,
            "n_unverified": self.n_unverified,
            "n_failures_verified": self.n_failures_verified,
            "divergence": None if self.divergence is None else self.divergence.to_dict(),
        }

    def format(self) -> str:
        head = (
            f"replay of session {self.session_id!r} ({self.optimizer}): "
            f"{'OK' if self.ok else 'DIVERGED'}\n"
            f"  {self.n_records} trials over {self.n_epochs} epoch(s), "
            f"{self.n_suggest_calls} suggest calls re-executed\n"
            f"  {self.n_verified} configurations verified, "
            f"{self.n_failures_verified} crash imputations verified, "
            f"{self.n_unverified} unverified"
        )
        if self.divergence is None:
            return head
        return head + "\n" + self.divergence.format()


def _record_epoch(record: Mapping[str, Any]) -> int:
    provenance = record.get("provenance") or {}
    return int(provenance.get("epoch", 0))


def _record_ask(record: Mapping[str, Any]) -> Mapping[str, Any] | None:
    return (record.get("provenance") or {}).get("ask")


class _EpochReplayer:
    """Replays one process incarnation's slice of the journal.

    Holds the fresh optimizer for the epoch plus the suggest-call
    schedule reconstructed from the slice's ask coordinates. The schedule
    is *verifiable* only when the referenced call numbers are contiguous
    from zero — a gap means an ask of unknown width was never told (its
    RNG draws are unrecoverable), so config and RNG verification degrade
    gracefully to history-digest verification for the whole epoch.
    """

    def __init__(self, optimizer: Optimizer, records: list[Mapping[str, Any]]) -> None:
        self.optimizer = optimizer
        calls: dict[int, tuple[int, int]] = {}  # call -> (n, observed)
        for record in records:
            ask = _record_ask(record)
            if ask is not None:
                calls[int(ask["call"])] = (int(ask["n"]), int(ask["observed"]))
        self.schedule = sorted(calls.items())
        self.verifiable = [call for call, _ in self.schedule] == list(range(len(self.schedule)))
        self._cursor = 0
        self._suggested: dict[int, list[Any]] = {}
        self.n_suggest_calls = 0

    def run_due_suggests(self) -> str | None:
        """Execute every scheduled suggest call due at the current history
        position; returns an error description on an impossible schedule."""
        if not self.verifiable:
            return None
        observed_now = len(self.optimizer.history)
        while self._cursor < len(self.schedule):
            call, (n, observed) = self.schedule[self._cursor]
            if observed > observed_now:
                break
            if observed < observed_now:
                return (
                    f"suggest call {call} recorded at history position {observed}, "
                    f"but replay already observed {observed_now} trials"
                )
            self._suggested[call] = self.optimizer.suggest(n)
            self.n_suggest_calls += 1
            self._cursor += 1
        return None

    def replayed_config(self, ask: Mapping[str, Any]) -> Any | None:
        batch = self._suggested.get(int(ask["call"]))
        if batch is None:
            return None
        i = int(ask["i"])
        return batch[i] if 0 <= i < len(batch) else None


def replay_session(
    store: TrialStore,
    session_id: str,
    trace: SessionTrace | None = None,
) -> ReplayReport:
    """Re-execute a journaled session and verify it against the journal.

    Never raises on divergence — inspect ``report.ok`` /
    ``report.divergence``. Raises :class:`StorageError` for an unknown
    session and :class:`ReproError` for a journal that cannot be decoded
    at all. Pass ``trace`` to collect the ``session.replay`` span and any
    ``replay.divergence`` event; by default a private trace is used so
    the event log is always populated.
    """
    from .manager import _normalise_objectives, make_optimizer

    meta = store.get_session(session_id)
    if meta is None:
        raise StorageError(f"unknown session {session_id!r}")
    space = space_from_dict(meta.space)
    objectives = _normalise_objectives(meta.objectives)
    optimizer_name = meta.optimizer.get("name", "random")
    records = store.load_trials(session_id)

    # Both acceptable space hashes: the stored spec verbatim (what epoch 0
    # hashed) and its deserialise/serialise round-trip (what resumed
    # epochs hashed — callable members dropped at create time are absent).
    space_hashes = {
        space_version_hash(meta.space),
        space_version_hash(space_to_dict(space, strict=False)),
    }

    def fresh_optimizer() -> Optimizer:
        return make_optimizer(
            optimizer_name,
            space,
            objectives,
            seed=meta.optimizer.get("seed"),
            options=meta.optimizer.get("options"),
        )

    report = ReplayReport(
        session_id=session_id,
        optimizer=optimizer_name,
        n_records=len(records),
        n_epochs=0,
        n_suggest_calls=0,
        n_verified=0,
        n_unverified=0,
        n_failures_verified=0,
    )

    trace = trace if trace is not None else SessionTrace(name="replay")
    with trace.activated():
        with span("session.replay", session_id=session_id, optimizer=optimizer_name):
            divergence = _replay(store, session_id, space, records, fresh_optimizer, space_hashes, report)
            if divergence is not None:
                report.divergence = divergence
                detail = divergence.to_dict()
                detail["divergence_kind"] = detail.pop("kind")
                emit_event(
                    "replay.divergence",
                    severity="error",
                    message=divergence.format(),
                    session_id=session_id,
                    **detail,
                )
    return report


def _replay(
    store: TrialStore,
    session_id: str,
    space: "ConfigurationSpace",
    records: list[Mapping[str, Any]],
    fresh_optimizer: Any,
    space_hashes: set[str],
    report: ReplayReport,
) -> ReplayDivergence | None:
    """The verification loop; mutates ``report`` counters, returns the
    first divergence (or ``None`` for a bit-exact replay)."""
    index = 0
    current_epoch: int | None = None
    while index < len(records):
        epoch = _record_epoch(records[index])
        if current_epoch is not None and epoch <= current_epoch:
            return ReplayDivergence(
                trial_id=int(records[index]["trial_id"]),
                kind="schedule",
                recorded=f"epoch {epoch}",
                replayed=f"epochs must increase along the journal (was in epoch {current_epoch})",
            )
        current_epoch = epoch
        end = index
        while end < len(records) and _record_epoch(records[end]) == epoch:
            end += 1
        slice_records = records[index:end]
        report.n_epochs += 1

        # A fresh process incarnation: new optimizer, exact re-observe of
        # the journal prefix (same as SessionManager.resume — failures
        # keep their stored imputations, no verification: every prefix
        # record was verified when its own epoch was replayed).
        replayer = _EpochReplayer(fresh_optimizer(), slice_records)
        for prior in records[:index]:
            trial = decode_trial(prior, space)
            replayer.optimizer.observe(
                trial.config,
                trial.metrics,
                cost=trial.cost,
                status=trial.status,
                fidelity=trial.fidelity,
                context=trial.context,
            )

        try:
            divergence = _replay_epoch(space, slice_records, replayer, space_hashes, report)
        finally:
            report.n_suggest_calls += replayer.n_suggest_calls
        if divergence is not None:
            return divergence
        index = end
    return None


def _replay_epoch(
    space: "ConfigurationSpace",
    slice_records: list[Mapping[str, Any]],
    replayer: _EpochReplayer,
    space_hashes: set[str],
    report: ReplayReport,
) -> ReplayDivergence | None:
    optimizer = replayer.optimizer
    for record in slice_records:
        trial_id = int(record["trial_id"])
        provenance = record.get("provenance") or {}

        recorded_space = provenance.get("space")
        if recorded_space is not None and recorded_space not in space_hashes:
            return ReplayDivergence(
                trial_id=trial_id,
                kind="space",
                recorded=recorded_space,
                replayed=sorted(space_hashes),
            )

        schedule_error = replayer.run_due_suggests()
        if schedule_error is not None:
            return ReplayDivergence(
                trial_id=trial_id,
                kind="schedule",
                recorded=provenance.get("ask"),
                replayed=schedule_error,
            )

        ask = _record_ask(record)
        config = None
        if ask is not None and replayer.verifiable:
            config = replayer.replayed_config(ask)
        if config is not None:
            replayed_values = json_safe(config.as_dict())
            if replayed_values != record["config"]:
                return ReplayDivergence(
                    trial_id=trial_id,
                    kind="config",
                    recorded=dict(record["config"]),
                    replayed=replayed_values,
                )
            report.n_verified += 1
        else:
            # No provenance (legacy journal) or unverifiable schedule:
            # rebuild the configuration from the journaled values.
            values = {k: v for k, v in record["config"].items() if k in space}
            config = space.make(values, check_constraints=False)
            report.n_unverified += 1

        status = TrialStatus(record["status"])
        recorded_metrics = {str(k): float(v) for k, v in record.get("metrics", {}).items()}
        if status is TrialStatus.SUCCEEDED:
            trial = optimizer.observe(
                config,
                recorded_metrics,
                cost=float(record.get("cost", 1.0)),
                status=status,
                fidelity=record.get("fidelity"),
                context=dict(record.get("context", {})),
            )
        else:
            # Re-run crash-score imputation from the replayed history and
            # verify it lands on exactly the journaled values.
            trial = optimizer.observe_failure(
                config,
                cost=float(record.get("cost", 1.0)),
                status=status,
                context=dict(record.get("context", {})),
            )
            if trial.metrics != recorded_metrics:
                return ReplayDivergence(
                    trial_id=trial_id,
                    kind="metrics",
                    recorded=recorded_metrics,
                    replayed=dict(trial.metrics),
                )
            report.n_failures_verified += 1

        if trial.trial_id != trial_id:
            return ReplayDivergence(
                trial_id=trial_id,
                kind="schedule",
                recorded=trial_id,
                replayed=f"replay assigned trial id {trial.trial_id}",
            )

        recorded_digest = provenance.get("digest")
        if recorded_digest:
            parts = optimizer.state_digest_parts()
            # Without a verifiable suggest schedule the RNG stream (and any
            # model state fed by it) cannot match; the history digest must.
            keys = parts.keys() & recorded_digest.keys()
            if not replayer.verifiable:
                keys = keys & {"history"}
            delta = {
                key: {"recorded": str(recorded_digest[key]), "replayed": parts[key]}
                for key in sorted(keys)
                if str(recorded_digest[key]) != parts[key]
            }
            if delta:
                return ReplayDivergence(
                    trial_id=trial_id,
                    kind="digest",
                    recorded=dict(recorded_digest),
                    replayed=dict(parts),
                    digest_delta=delta,
                )
    return None
