"""Tuning outcome summary returned by sessions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..space import Configuration
from .optimizer import History, Objective, Trial

__all__ = ["TuningResult"]


@dataclass
class TuningResult:
    """What a tuning run produced: the incumbent and the full history."""

    best_config: Configuration
    best_value: float
    objective: Objective
    history: History
    n_trials: int
    total_cost: float

    @property
    def best_trial(self) -> Trial:
        return self.history.best(self.objective)

    def incumbent_curve(self) -> np.ndarray:
        """Best-so-far objective value after each trial."""
        return self.history.incumbent_curve(self.objective)

    def trials_to_reach(self, target: float) -> int | None:
        """Trials needed before the incumbent is at least as good as ``target``.

        Returns None when the target was never reached — the standard
        "evaluations to quality" sample-efficiency metric.
        """
        curve = self.incumbent_curve()
        scores = np.array([self.objective.score(v) if np.isfinite(v) else np.inf for v in curve])
        hits = np.nonzero(scores <= self.objective.score(target))[0]
        return int(hits[0]) + 1 if len(hits) else None

    def cost_to_reach(self, target: float) -> float | None:
        """Cumulative trial cost spent before reaching ``target``."""
        curve = self.incumbent_curve()
        costs = np.cumsum([t.cost for t in self.history])
        scores = np.array([self.objective.score(v) if np.isfinite(v) else np.inf for v in curve])
        hits = np.nonzero(scores <= self.objective.score(target))[0]
        return float(costs[hits[0]]) if len(hits) else None

    def summary(self) -> str:
        goal = "min" if self.objective.minimize else "max"
        return (
            f"TuningResult({goal} {self.objective.name}: best={self.best_value:.4g} "
            f"after {self.n_trials} trials, cost={self.total_cost:.4g})"
        )
