"""The optimizer protocol: suggest/observe over a configuration space.

The tutorial's "Optimizer as a Black Box" slide: *the target function is a
black box to the optimizer, and the optimizer is a black box to the target*.
Every tuning algorithm in this library — grid search through GP-BO through
online RL — speaks the same ask/tell protocol defined here, so the systems
machinery (noise handling, parallel trials, early abort, adapters) composes
with any of them.
"""

from __future__ import annotations

import enum
import hashlib
import json
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..exceptions import OptimizerError
from ..space import Configuration, ConfigurationSpace

__all__ = ["TrialStatus", "Objective", "Trial", "History", "Optimizer", "rng_digest"]


def _canon(value: Any) -> Any:
    """JSON-canonical form of a value for digesting (numpy → Python)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "item") and not isinstance(value, Mapping):
        try:
            return value.item()
        except (TypeError, ValueError):
            pass
    if isinstance(value, Mapping):
        return {str(k): _canon(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_canon(v) for v in value]
    return str(value)


def _digest(payload: Any, length: int = 12) -> str:
    text = json.dumps(_canon(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:length]


def rng_digest(rng: np.random.Generator) -> str:
    """Short, stable digest of a Generator's full bit-generator state.

    Two generators with equal digests produce identical draw streams — the
    provenance layer journals this per trial so ``repro replay`` can prove
    (or pinpoint the loss of) bit-exact determinism.
    """
    return _digest(rng.bit_generator.state)


class TrialStatus(enum.Enum):
    """Lifecycle of one benchmark trial."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"  # system crashed / config undeployable
    ABORTED = "aborted"  # cut short by an early-abort policy or guardrail


@dataclass(frozen=True)
class Objective:
    """A metric to optimize and its direction.

    ``score(value)`` maps the raw metric into canonical *minimize* form so
    optimizers never branch on direction.
    """

    name: str
    minimize: bool = True

    def score(self, value: float) -> float:
        return float(value) if self.minimize else -float(value)

    def unscore(self, score: float) -> float:
        return float(score) if self.minimize else -float(score)


@dataclass
class Trial:
    """One evaluated (or failed) configuration with its measured metrics."""

    trial_id: int
    config: Configuration
    status: TrialStatus = TrialStatus.PENDING
    metrics: dict[str, float] = field(default_factory=dict)
    cost: float = 0.0  # resource cost of the trial (e.g. benchmark seconds)
    fidelity: float | None = None  # multi-fidelity level, None = full fidelity
    context: dict[str, Any] = field(default_factory=dict)  # workload / machine / etc.
    #: Journal-level lineage (seed, optimizer state digest, space version,
    #: ask batch, trace id …) attached when the trial is journaled /
    #: decoded; ``None`` for trials that never crossed a journal.
    provenance: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        return self.status is TrialStatus.SUCCEEDED

    def metric(self, name: str) -> float:
        try:
            return self.metrics[name]
        except KeyError:
            raise OptimizerError(f"trial {self.trial_id} has no metric {name!r}") from None


class History:
    """Append-only record of trials; the optimizer's training data."""

    def __init__(self, objectives: Sequence[Objective]) -> None:
        if not objectives:
            raise OptimizerError("need at least one objective")
        self.objectives = list(objectives)
        self._trials: list[Trial] = []

    @property
    def primary(self) -> Objective:
        return self.objectives[0]

    @property
    def trials(self) -> list[Trial]:
        return list(self._trials)

    def __len__(self) -> int:
        return len(self._trials)

    def __iter__(self):
        return iter(self._trials)

    def add(self, trial: Trial) -> None:
        self._trials.append(trial)

    def completed(self) -> list[Trial]:
        return [t for t in self._trials if t.ok]

    def failed(self) -> list[Trial]:
        return [t for t in self._trials if t.status in (TrialStatus.FAILED, TrialStatus.ABORTED)]

    def with_metrics(self, objective: Objective | None = None) -> list[Trial]:
        """Trials usable as surrogate training data: successes plus
        failures carrying imputed metrics (so models learn crash regions)."""
        obj = objective or self.primary
        return [t for t in self._trials if obj.name in t.metrics]

    def training_data(
        self,
        objective: Objective | None = None,
        crash_penalty_factor: float = 2.0,
    ) -> tuple[list[Trial], np.ndarray]:
        """(trials, scores) for surrogate fitting, with *live* crash imputation.

        Failed trials are re-imputed against the current worst real score at
        every call — a crash observed before any success would otherwise pin
        an arbitrary sentinel into the model's scale forever.
        """
        obj = objective or self.primary
        real = self.completed()
        real_scores = np.array([obj.score(t.metric(obj.name)) for t in real])
        failed = [t for t in self._trials if t.status in (TrialStatus.FAILED, TrialStatus.ABORTED)]
        if len(real_scores) == 0:
            return real, real_scores
        worst = float(real_scores.max())
        imputed = worst + (crash_penalty_factor - 1.0) * abs(worst) + 1e-9
        trials = real + failed
        scores = np.concatenate([real_scores, np.full(len(failed), imputed)])
        return trials, scores

    def scores(self, objective: Objective | None = None) -> np.ndarray:
        """Canonical minimize-scores of completed trials, in trial order."""
        obj = objective or self.primary
        return np.array([obj.score(t.metric(obj.name)) for t in self.completed()])

    def best(self, objective: Objective | None = None) -> Trial:
        obj = objective or self.primary
        done = self.completed()
        if not done:
            raise OptimizerError("no completed trials yet")
        return min(done, key=lambda t: obj.score(t.metric(obj.name)))

    def best_value(self, objective: Objective | None = None) -> float:
        obj = objective or self.primary
        return self.best(obj).metric(obj.name)

    def worst_score(self, objective: Objective | None = None) -> float:
        scores = self.scores(objective)
        if len(scores) == 0:
            raise OptimizerError("no completed trials yet")
        return float(scores.max())

    def incumbent_curve(self, objective: Objective | None = None) -> np.ndarray:
        """Best-so-far metric value after each trial (failed trials repeat).

        This is the convergence curve every offline-tuning figure plots.
        """
        obj = objective or self.primary
        best = np.inf
        curve = []
        for t in self._trials:
            if t.ok:
                best = min(best, obj.score(t.metric(obj.name)))
            curve.append(obj.unscore(best) if np.isfinite(best) else np.nan)
        return np.array(curve)

    def total_cost(self) -> float:
        return float(sum(t.cost for t in self._trials))

    def to_arrays(self, space: ConfigurationSpace, objective: Objective | None = None) -> tuple[np.ndarray, np.ndarray]:
        """(X, y) training data: unit-encoded configs and minimize-scores."""
        obj = objective or self.primary
        done = self.completed()
        if not done:
            return np.empty((0, space.n_dims)), np.empty(0)
        X = np.stack([space.to_unit_array(t.config) for t in done])
        y = np.array([obj.score(t.metric(obj.name)) for t in done])
        return X, y


class Optimizer(ABC):
    """Base class for all tuning algorithms (ask/tell protocol).

    Subclasses implement :meth:`_suggest` (and optionally :meth:`_on_observe`)
    — everything else, including trial bookkeeping and failure imputation, is
    handled here.
    """

    #: Set by subclasses that natively handle >1 objective (e.g. ParEGO).
    supports_multi_objective: bool = False

    #: Whether observations for configurations this optimizer did not
    #: suggest improve its model (surrogate methods) or would corrupt its
    #: internal bookkeeping (generation-based methods match observations to
    #: suggestions by queue order). Ensembles consult this before sharing.
    accepts_foreign_observations: bool = True

    def __init__(
        self,
        space: ConfigurationSpace,
        objectives: Sequence[Objective] | Objective | None = None,
        seed: int | None = None,
        crash_penalty_factor: float = 2.0,
    ) -> None:
        if isinstance(objectives, Objective):
            objectives = [objectives]
        self.space = space
        self.objectives = list(objectives) if objectives else [Objective("score", minimize=True)]
        if len(self.objectives) > 1 and not self.supports_multi_objective:
            raise OptimizerError(
                f"{type(self).__name__} is single-objective; use ParEGOOptimizer "
                "or scalarize the objectives first"
            )
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.history = History(self.objectives)
        self.crash_penalty_factor = float(crash_penalty_factor)
        self._next_trial_id = 0
        # Running digest over everything this optimizer has observed, in
        # order — part of :meth:`state_digest`. Incremental (one sha256
        # update per observe), so journaling provenance stays O(1)/trial.
        self._history_sha = hashlib.sha256()
        #: How many suggestions degraded to random sampling because the
        #: surrogate path failed. Folded into the state digest (only once
        #: nonzero, so healthy runs keep their historic digests) and into
        #: ``surrogate_stats`` where available.
        self._degraded_total = 0

    @property
    def objective(self) -> Objective:
        return self.objectives[0]

    # -- ask ----------------------------------------------------------------
    def suggest(self, n: int = 1) -> list[Configuration]:
        """Propose the next ``n`` configurations to evaluate."""
        if n < 1:
            raise OptimizerError(f"n must be >= 1, got {n}")
        if n > 1:
            batch = self._suggest_batch(n)
            if batch is not None:
                return batch
        return [self._suggest() for _ in range(n)]

    @abstractmethod
    def _suggest(self) -> Configuration:
        """Produce a single suggestion."""

    def _suggest_batch(self, n: int) -> list[Configuration] | None:
        """Optional batched path for ``suggest(n > 1)``.

        Surrogate optimizers override this with constant-liar fantasization
        so a batch of ``n`` costs one model fit instead of ``n``. Returning
        ``None`` falls back to ``n`` independent :meth:`_suggest` calls.
        """
        return None

    def _degraded_suggest(self, stage: str, err: Exception) -> Configuration:
        """Graceful degradation: the surrogate path failed, sample randomly.

        A numerically broken fit (singular kernel, NaN scores) or a failing
        model must not kill a long campaign — the tuner falls back to the
        behaviour it had before the model took over, announces it on the
        event log, and keeps going. The draw comes from ``self.rng``, the
        same stream random sampling uses, so the degraded suggestion is
        exactly as deterministic as a healthy one given the same failure.
        """
        from ..telemetry.spans import emit_event  # deferred: optimizer is telemetry-light

        self._degraded_total += 1
        emit_event(
            "optimizer.degraded",
            severity="warning",
            message=f"{stage} failed ({type(err).__name__}: {err}); suggesting randomly",
            optimizer=type(self).__name__,
            stage=stage,
            degraded_total=self._degraded_total,
        )
        return self.space.sample(self.rng)

    # -- tell ----------------------------------------------------------------
    def observe(
        self,
        config: Configuration,
        metrics: Mapping[str, float] | float,
        cost: float = 1.0,
        status: TrialStatus = TrialStatus.SUCCEEDED,
        fidelity: float | None = None,
        context: Mapping[str, Any] | None = None,
    ) -> Trial:
        """Record a trial result and update the internal model."""
        if isinstance(metrics, (int, float, np.floating, np.integer)):
            metrics = {self.objective.name: float(metrics)}
        trial = Trial(
            trial_id=self._next_trial_id,
            config=config,
            status=status,
            metrics={k: float(v) for k, v in metrics.items()},
            cost=float(cost),
            fidelity=fidelity,
            context=dict(context or {}),
        )
        self._next_trial_id += 1
        if trial.ok:
            for obj in self.objectives:
                if obj.name not in trial.metrics:
                    raise OptimizerError(
                        f"completed trial is missing objective metric {obj.name!r}; got {sorted(trial.metrics)}"
                    )
        self.history.add(trial)
        self._update_history_sha(trial)
        self._on_observe(trial)
        return trial

    def observe_failure(
        self,
        config: Configuration,
        cost: float = 1.0,
        status: TrialStatus = TrialStatus.FAILED,
        context: Mapping[str, Any] | None = None,
    ) -> Trial:
        """Record a crashed/aborted trial, imputing a pessimistic score.

        Knowledge-transfer slide: *Bad: no score (e.g. crashed)? Make it up!
        N × worst_score_measured* — the imputed value steers the model away
        from the crash region without poisoning the scale too badly.
        """
        metrics: dict[str, float] = {}
        for obj in self.objectives:
            scores = self.history.scores(obj)
            if len(scores) > 0:
                worst = float(scores.max())
                # Push strictly further in the bad direction, regardless of
                # the score's sign (maximize objectives have negative scores).
                imputed_score = worst + (self.crash_penalty_factor - 1.0) * abs(worst) + 1e-9
                imputed = obj.unscore(imputed_score)
            else:
                imputed = obj.unscore(1e9)
            metrics[obj.name] = imputed
        trial = Trial(
            trial_id=self._next_trial_id,
            config=config,
            status=status,
            metrics=metrics,
            cost=float(cost),
            context=dict(context or {}),
        )
        self._next_trial_id += 1
        self.history.add(trial)
        self._update_history_sha(trial)
        self._on_observe_failure(trial)
        return trial

    def _on_observe(self, trial: Trial) -> None:
        """Hook: update the surrogate after a successful trial."""

    def _on_observe_failure(self, trial: Trial) -> None:
        """Hook: by default failures (with imputed metrics) train the model too."""
        self._on_observe(trial)

    # -- provenance ---------------------------------------------------------------
    def _update_history_sha(self, trial: Trial) -> None:
        text = json.dumps(
            _canon(
                [
                    trial.trial_id,
                    trial.config.as_dict(),
                    trial.metrics,
                    trial.status.value,
                    trial.cost,
                ]
            ),
            sort_keys=True,
            separators=(",", ":"),
        )
        self._history_sha.update(text.encode("utf-8"))

    def _digest_state(self) -> dict[str, Any]:
        """Hook: model counters folded into :meth:`state_digest`.

        Subclasses return the internal-state summary that should be
        provenance-visible (fit counts, pending lies, per-arm pulls, …).
        An empty dict (the default) omits the ``model`` component.
        """
        return {}

    def state_digest_parts(self) -> dict[str, str]:
        """Named digest components, so replay can report *which* part diverged.

        ``rng`` covers the full bit-generator state, ``history`` is the
        running hash over every observed trial, and ``model`` (when a
        subclass implements :meth:`_digest_state`) covers surrogate/model
        counters.
        """
        parts = {
            "rng": rng_digest(self.rng),
            "history": self._history_sha.hexdigest()[:12],
        }
        state = self._digest_state()
        if self._degraded_total:
            # Degraded (random-fallback) suggestions are provenance-visible:
            # a replay whose surrogate *doesn't* fail must not silently
            # match a journal recorded under degradation.
            state = {**state, "degraded_total": self._degraded_total}
        if state:
            parts["model"] = _digest(state)
        return parts

    def state_digest(self) -> str:
        """One opaque token summarising the optimizer's deterministic state."""
        parts = self.state_digest_parts()
        return _digest("|".join(f"{k}={parts[k]}" for k in sorted(parts)), length=16)

    # -- warm start --------------------------------------------------------------
    def warm_start(self, trials: Iterable[Trial]) -> int:
        """Seed the optimizer with prior trials (knowledge transfer).

        Returns the number of trials ingested. Configurations are re-made in
        this optimizer's space so histories from compatible spaces transfer.
        """
        count = 0
        for t in trials:
            config = self.space.make(
                {k: v for k, v in t.config.as_dict().items() if k in self.space},
                check_constraints=False,
            )
            self.observe(config, t.metrics, cost=t.cost, status=t.status, fidelity=t.fidelity, context=t.context)
            count += 1
        return count

    # -- results -----------------------------------------------------------------
    def best_trial(self) -> Trial:
        return self.history.best()

    def best_config(self) -> Configuration:
        return self.best_trial().config

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(space={self.space.name!r}, n_trials={len(self.history)})"
