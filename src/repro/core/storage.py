"""Legacy persistence API (deprecated shims over the trial-store layer).

The whole-file JSON helpers that used to be the only persistence in the
library now route through the canonical codec
(:mod:`repro.core.codec`) and are superseded by the durable, resumable
:class:`~repro.core.journal.TrialStore` backends in
:mod:`repro.core.stores`:

* new code should journal trials through a store (usually via
  :class:`~repro.core.manager.SessionManager`);
* existing ``save_trials``/``load_trials`` call sites keep working — the
  file format is unchanged — but emit :class:`DeprecationWarning`;
* old files migrate into any store with
  :func:`repro.core.journal.import_legacy_trials`.

Writes here are now atomic (write-temp + ``os.replace``), fixing the
partial-file window the old implementation had.

Prior-bank persistence (:func:`save_prior_bank`/:func:`load_prior_bank`)
is *not* deprecated — banks are cross-session artifacts, not session
state — but shares the codec and atomic-write path.
"""

from __future__ import annotations

import dataclasses
import json
import os
import warnings
from pathlib import Path
from typing import Any, Iterable

from ..exceptions import ReproError
from ..space import ConfigurationSpace
from ..workloads import Workload
from .codec import decode_trial, encode_trial
from .optimizer import Trial

__all__ = [
    "trial_to_dict",
    "trial_from_dict",
    "save_trials",
    "load_trials",
    "workload_to_dict",
    "workload_from_dict",
    "save_prior_bank",
    "load_prior_bank",
]

_FORMAT_VERSION = 1

#: Canonical codec aliases — the historic names many call sites use.
trial_to_dict = encode_trial
trial_from_dict = decode_trial


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.core.storage.{old} is deprecated; persist trials through a "
        f"TrialStore instead ({new})",
        DeprecationWarning,
        stacklevel=3,
    )


def _atomic_write_text(path: str | Path, text: str) -> None:
    path = Path(path)
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


def save_trials(trials: Iterable[Trial], path: str | Path) -> int:
    """Write trials as one JSON document; returns the number written.

    .. deprecated:: use a :class:`~repro.core.journal.TrialStore` (e.g.
       ``JsonJournalStore``/``SqliteTrialStore``) via ``SessionManager``
       for durable, resumable, crash-safe persistence.
    """
    _deprecated("save_trials", "SessionManager.create(...) journals automatically")
    records = [encode_trial(t) for t in trials]
    payload = {"version": _FORMAT_VERSION, "trials": records}
    _atomic_write_text(path, json.dumps(payload, indent=2, default=_json_default))
    return len(records)


def load_trials(path: str | Path, space: ConfigurationSpace) -> list[Trial]:
    """Load trials saved by :func:`save_trials`.

    .. deprecated:: use :func:`repro.core.journal.import_legacy_trials` to
       migrate the file into a :class:`~repro.core.journal.TrialStore`,
       then resume through ``SessionManager``.
    """
    _deprecated("load_trials", "import_legacy_trials(store, path) + SessionManager.resume(...)")
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as err:
        raise ReproError(f"cannot read trial file {path}: {err}") from err
    if payload.get("version") != _FORMAT_VERSION:
        raise ReproError(f"unsupported trial-file version: {payload.get('version')!r}")
    return [decode_trial(r, space) for r in payload.get("trials", [])]


def _json_default(obj: Any):
    # numpy scalars and similar sneak into metrics; coerce to plain floats.
    if hasattr(obj, "item"):
        return obj.item()
    raise TypeError(f"not JSON serialisable: {type(obj)!r}")


# -- workloads ---------------------------------------------------------------


def workload_to_dict(workload: Workload) -> dict[str, Any]:
    out = dataclasses.asdict(workload)
    out["tags"] = list(out["tags"])
    return out


def workload_from_dict(data: dict[str, Any]) -> Workload:
    try:
        data = dict(data)
        data["tags"] = tuple(data.get("tags", ()))
        return Workload(**data)
    except TypeError as err:
        raise ReproError(f"malformed workload record: {err}") from err


# -- prior banks ------------------------------------------------------------------


def save_prior_bank(bank, path: str | Path) -> int:
    """Persist a :class:`~repro.optimizers.transfer.PriorBank` to one JSON file."""
    runs = [
        {
            "workload": workload_to_dict(run.workload),
            "context": dict(run.context),
            "trials": [encode_trial(t) for t in run.trials],
        }
        for run in bank.runs
    ]
    payload = {"version": _FORMAT_VERSION, "runs": runs}
    _atomic_write_text(path, json.dumps(payload, indent=2, default=_json_default))
    return len(runs)


def load_prior_bank(path: str | Path, space: ConfigurationSpace):
    """Load a prior bank; trial configs are re-validated against ``space``."""
    from ..optimizers.transfer import PriorBank, PriorRun

    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as err:
        raise ReproError(f"cannot read prior bank {path}: {err}") from err
    if payload.get("version") != _FORMAT_VERSION:
        raise ReproError(f"unsupported prior-bank version: {payload.get('version')!r}")
    bank = PriorBank()
    for record in payload.get("runs", []):
        bank.add(
            PriorRun(
                workload=workload_from_dict(record["workload"]),
                trials=[decode_trial(t, space) for t in record.get("trials", [])],
                context=dict(record.get("context", {})),
            )
        )
    return bank
