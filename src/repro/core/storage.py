"""Persistence for tuning histories and prior banks.

Knowledge transfer (slide 67) only works if yesterday's trials survive
until today: this module serialises trials, histories, and workloads to
JSON so a :class:`~repro.optimizers.transfer.PriorBank` can live on disk
between tuning campaigns.

Configurations are stored as plain value mappings and re-validated against
the target space at load time — histories transfer across compatible
spaces (extra knobs are dropped, missing ones take defaults), mirroring
how `Optimizer.warm_start` behaves.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Iterable

from ..exceptions import ReproError
from ..space import ConfigurationSpace
from ..workloads import Workload
from .optimizer import History, Objective, Trial, TrialStatus

__all__ = [
    "trial_to_dict",
    "trial_from_dict",
    "save_trials",
    "load_trials",
    "workload_to_dict",
    "workload_from_dict",
    "save_prior_bank",
    "load_prior_bank",
]

_FORMAT_VERSION = 1


def trial_to_dict(trial: Trial) -> dict[str, Any]:
    """JSON-safe representation of one trial."""
    return {
        "trial_id": trial.trial_id,
        "config": trial.config.as_dict(),
        "status": trial.status.value,
        "metrics": dict(trial.metrics),
        "cost": trial.cost,
        "fidelity": trial.fidelity,
        "context": dict(trial.context),
    }


def trial_from_dict(data: dict[str, Any], space: ConfigurationSpace) -> Trial:
    """Rebuild a trial, re-validating the configuration against ``space``."""
    try:
        values = {k: v for k, v in data["config"].items() if k in space}
        config = space.make(values, check_constraints=False)
        return Trial(
            trial_id=int(data["trial_id"]),
            config=config,
            status=TrialStatus(data["status"]),
            metrics={k: float(v) for k, v in data["metrics"].items()},
            cost=float(data.get("cost", 1.0)),
            fidelity=data.get("fidelity"),
            context=dict(data.get("context", {})),
        )
    except (KeyError, ValueError, TypeError) as err:
        raise ReproError(f"malformed trial record: {err}") from err


def save_trials(trials: Iterable[Trial], path: str | Path) -> int:
    """Write trials as a JSON document; returns the number written."""
    records = [trial_to_dict(t) for t in trials]
    payload = {"version": _FORMAT_VERSION, "trials": records}
    Path(path).write_text(json.dumps(payload, indent=2, default=_json_default))
    return len(records)


def load_trials(path: str | Path, space: ConfigurationSpace) -> list[Trial]:
    """Load trials saved by :func:`save_trials`."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as err:
        raise ReproError(f"cannot read trial file {path}: {err}") from err
    if payload.get("version") != _FORMAT_VERSION:
        raise ReproError(f"unsupported trial-file version: {payload.get('version')!r}")
    return [trial_from_dict(r, space) for r in payload.get("trials", [])]


def _json_default(obj: Any):
    # numpy scalars and similar sneak into metrics; coerce to plain floats.
    if hasattr(obj, "item"):
        return obj.item()
    raise TypeError(f"not JSON serialisable: {type(obj)!r}")


# -- workloads ---------------------------------------------------------------


def workload_to_dict(workload: Workload) -> dict[str, Any]:
    out = dataclasses.asdict(workload)
    out["tags"] = list(out["tags"])
    return out


def workload_from_dict(data: dict[str, Any]) -> Workload:
    try:
        data = dict(data)
        data["tags"] = tuple(data.get("tags", ()))
        return Workload(**data)
    except TypeError as err:
        raise ReproError(f"malformed workload record: {err}") from err


# -- prior banks ------------------------------------------------------------------


def save_prior_bank(bank, path: str | Path) -> int:
    """Persist a :class:`~repro.optimizers.transfer.PriorBank` to one JSON file."""
    runs = [
        {
            "workload": workload_to_dict(run.workload),
            "context": dict(run.context),
            "trials": [trial_to_dict(t) for t in run.trials],
        }
        for run in bank.runs
    ]
    payload = {"version": _FORMAT_VERSION, "runs": runs}
    Path(path).write_text(json.dumps(payload, indent=2, default=_json_default))
    return len(runs)


def load_prior_bank(path: str | Path, space: ConfigurationSpace):
    """Load a prior bank; trial configs are re-validated against ``space``."""
    from ..optimizers.transfer import PriorBank, PriorRun

    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as err:
        raise ReproError(f"cannot read prior bank {path}: {err}") from err
    if payload.get("version") != _FORMAT_VERSION:
        raise ReproError(f"unsupported prior-bank version: {payload.get('version')!r}")
    bank = PriorBank()
    for record in payload.get("runs", []):
        bank.add(
            PriorRun(
                workload=workload_from_dict(record["workload"]),
                trials=[trial_from_dict(t, space) for t in record.get("trials", [])],
                context=dict(record.get("context", {})),
            )
        )
    return bank
