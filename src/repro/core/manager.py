"""One lifecycle API for tuning sessions: create, resume, list, complete.

Library code, the CLI, and the HTTP service all construct sessions through
:class:`SessionManager`, so the three surfaces share identical semantics:

* ``create(...)`` serialises the space and optimizer spec into a
  :class:`~repro.core.journal.SessionMeta`, persists it to the attached
  :class:`~repro.core.journal.TrialStore`, and returns a
  :class:`~repro.core.session.TuningSession` wired to journal every trial.
* ``resume(session_id)`` rebuilds the space, optimizer, and full history
  from storage alone — any process holding the store can continue any
  session, which is what makes the service crash-tolerant.

The optimizer registry maps wire-friendly names (``"bo"``, ``"smac"``,
``"random"``, …) to constructors; it is the same table the CLI uses, so a
session created from the command line can be resumed over HTTP and vice
versa.
"""

from __future__ import annotations

import time
import warnings
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from ..exceptions import ReproError
from ..space import ConfigurationSpace
from ..space.serialize import space_from_dict, space_to_dict
from .codec import decode_trial
from .journal import SessionMeta, StorageError, TrialStore, new_session_id
from .optimizer import Objective, Optimizer, TrialStatus
from .session import Evaluator, TuningSession

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..execution import TrialExecutor
    from .callbacks import Callback
    from .replay import ReplayReport

__all__ = ["SessionManager", "make_optimizer", "optimizer_names"]


def _registry() -> dict[str, Callable[..., Optimizer]]:
    # Deferred import: repro.optimizers imports repro.core, so binding the
    # registry at module import time would be circular.
    from ..optimizers import (
        BayesianOptimizer,
        BestConfigOptimizer,
        CMAESOptimizer,
        GridSearchOptimizer,
        ParticleSwarmOptimizer,
        RandomSearchOptimizer,
        SimulatedAnnealingOptimizer,
        SMACOptimizer,
    )

    return {
        "random": RandomSearchOptimizer,
        "grid": GridSearchOptimizer,
        "bo": BayesianOptimizer,
        "smac": SMACOptimizer,
        "anneal": SimulatedAnnealingOptimizer,
        "cmaes": CMAESOptimizer,
        "pso": ParticleSwarmOptimizer,
        "bestconfig": BestConfigOptimizer,
    }


def optimizer_names() -> list[str]:
    """Registered optimizer names usable in session specs."""
    return sorted(_registry())


def make_optimizer(
    name: str,
    space: ConfigurationSpace,
    objectives: Sequence[Objective] | Objective,
    seed: int | None = None,
    options: Mapping[str, Any] | None = None,
) -> Optimizer:
    """Instantiate a registered optimizer from its wire-level spec."""
    try:
        cls = _registry()[name]
    except KeyError:
        raise ReproError(
            f"unknown optimizer {name!r}; choose from {optimizer_names()}"
        ) from None
    try:
        return cls(space, objectives=list(objectives) if isinstance(objectives, Sequence) else objectives, seed=seed, **dict(options or {}))
    except TypeError as err:
        raise ReproError(f"bad options for optimizer {name!r}: {err}") from err


def _normalise_objectives(
    objectives: Sequence[Objective] | Objective | Sequence[Mapping[str, Any]] | Mapping[str, Any] | None,
) -> list[Objective]:
    if objectives is None:
        return [Objective("score", minimize=True)]
    if isinstance(objectives, (Objective, Mapping)):
        objectives = [objectives]
    out = []
    for obj in objectives:
        if isinstance(obj, Objective):
            out.append(obj)
        else:
            out.append(Objective(str(obj["name"]), minimize=bool(obj.get("minimize", True))))
    return out


class SessionManager:
    """Factory and registry of durable tuning sessions over one store.

    Parameters
    ----------
    store:
        The durable backend; defaults to a fresh non-durable
        :class:`~repro.core.stores.MemoryTrialStore`.
    """

    def __init__(self, store: TrialStore | None = None) -> None:
        if store is None:
            from .stores import MemoryTrialStore

            store = MemoryTrialStore()
        self.store = store

    # -- lifecycle ----------------------------------------------------------
    def create(
        self,
        space: ConfigurationSpace,
        optimizer: str = "random",
        objectives: Sequence[Objective] | Objective | None = None,
        max_trials: int = 100,
        max_cost: float | None = None,
        batch_size: int = 1,
        seed: int | None = None,
        optimizer_options: Mapping[str, Any] | None = None,
        session_id: str | None = None,
        evaluator: Evaluator | None = None,
        executor: "TrialExecutor | None" = None,
        callbacks: Sequence["Callback"] = (),
        extra: Mapping[str, Any] | None = None,
        lint: bool = True,
        strict: bool = False,
        lint_ignore: Sequence[str] = (),
    ) -> TuningSession:
        """Create a new durable session and return it ready to drive.

        The space is serialised with ``strict=False``: members that cannot
        cross a process boundary (callable constraints/conditions) stay
        active in *this* process but are listed under ``dropped`` in the
        stored spec, so a resumed session runs without them.

        Every create runs the space linter (:func:`repro.staticcheck.lint_space`)
        unless ``lint=False``: findings are surfaced as a single
        :class:`UserWarning` and attached to the returned session as
        ``session.lint_report``. With ``strict=True`` an ERROR-severity
        finding (unsatisfiable condition, dead parameter, contradictory
        constraints, …) rejects the space with a rule-id-bearing
        :class:`~repro.staticcheck.SpaceLintError` *before* anything is
        persisted. ``lint_ignore`` suppresses individual rule ids.
        """
        lint_report = None
        if lint:
            from ..staticcheck import SpaceLintError, lint_space

            lint_report = lint_space(space, ignore=lint_ignore)
            if strict and not lint_report.ok:
                raise SpaceLintError(lint_report)
            if not lint_report.clean:
                warnings.warn(
                    "space lint found issues (create the session with strict=True "
                    "to reject instead):\n" + lint_report.format(),
                    UserWarning,
                    stacklevel=2,
                )
        objs = _normalise_objectives(objectives)
        sid = session_id or new_session_id()
        meta = SessionMeta(
            session_id=sid,
            space=space_to_dict(space, strict=False),
            optimizer={
                "name": optimizer,
                "seed": seed,
                "options": dict(optimizer_options or {}),
            },
            objectives=[{"name": o.name, "minimize": o.minimize} for o in objs],
            max_trials=int(max_trials),
            max_cost=max_cost,
            batch_size=int(batch_size),
            created_at=time.time(),
            extra=dict(extra or {}),
        )
        self.store.create_session(meta)
        opt = make_optimizer(optimizer, space, objs, seed=seed, options=optimizer_options)
        session = TuningSession(
            opt,
            evaluator,
            max_trials=meta.max_trials,
            max_cost=meta.max_cost,
            batch_size=meta.batch_size,
            callbacks=callbacks,
            executor=executor,
            store=self.store,
            session_id=sid,
        )
        session.lint_report = lint_report
        return session

    def resume(
        self,
        session_id: str,
        evaluator: Evaluator | None = None,
        executor: "TrialExecutor | None" = None,
        callbacks: Sequence["Callback"] = (),
    ) -> TuningSession:
        """Rebuild a session from storage: space, optimizer, full history.

        Journaled trials are replayed into the fresh optimizer with their
        recorded metrics (failed trials keep their stored imputations —
        replay is exact, not re-imputed), so the optimizer's model picks up
        where the dead process left off and trial ids stay contiguous with
        the journal. Tell-idempotency state (seen ``report_id``s) is
        restored as well.
        """
        meta = self.store.get_session(session_id)
        if meta is None:
            raise StorageError(f"unknown session {session_id!r}")
        space = space_from_dict(meta.space)
        objs = _normalise_objectives(meta.objectives)
        opt = make_optimizer(
            meta.optimizer.get("name", "random"),
            space,
            objs,
            seed=meta.optimizer.get("seed"),
            options=meta.optimizer.get("options"),
        )
        records = self.store.load_trials(session_id)
        report_ids: dict[str, int] = {}
        # Records without provenance (pre-provenance journals) count as
        # epoch 0, so any resume over a non-empty journal starts a new one.
        max_epoch = 0 if records else -1
        for record in records:
            trial = decode_trial(record, space)
            if trial.provenance is not None:
                max_epoch = max(max_epoch, int(trial.provenance.get("epoch", 0)))
            replayed = opt.observe(
                trial.config,
                trial.metrics,
                cost=trial.cost,
                status=trial.status,
                fidelity=trial.fidelity,
                context=trial.context,
            )
            if replayed.trial_id != trial.trial_id:
                raise StorageError(
                    f"journal of session {session_id!r} is not contiguous: record "
                    f"{trial.trial_id} replayed as {replayed.trial_id}"
                )
            if record.get("report_id") is not None:
                report_ids[record["report_id"]] = trial.trial_id
        session = TuningSession(
            opt,
            evaluator,
            max_trials=meta.max_trials,
            max_cost=meta.max_cost,
            batch_size=meta.batch_size,
            callbacks=callbacks,
            executor=executor,
            store=self.store,
            session_id=session_id,
        )
        session._report_trial_ids.update(report_ids)
        # Every resume is a new epoch: this process's RNG stream starts
        # fresh from the journal prefix, and the untold asks of the dead
        # process are unrecoverable. Journaling the epoch per trial lets
        # ``repro replay`` simulate exactly these boundaries.
        session.epoch = max_epoch + 1
        return session

    def open(
        self,
        session_id: str,
        evaluator: Evaluator | None = None,
        **kwargs: Any,
    ) -> TuningSession:
        """Resume if the session exists; error otherwise (alias of resume)."""
        return self.resume(session_id, evaluator=evaluator, **kwargs)

    # -- registry views ------------------------------------------------------
    def exists(self, session_id: str) -> bool:
        return self.store.get_session(session_id) is not None

    def meta(self, session_id: str) -> SessionMeta:
        meta = self.store.get_session(session_id)
        if meta is None:
            raise StorageError(f"unknown session {session_id!r}")
        return meta

    def list_sessions(self) -> list[str]:
        return self.store.list_sessions()

    def status(self, session_id: str) -> dict[str, Any]:
        """A JSON-safe status snapshot straight from storage (no replay)."""
        meta = self.meta(session_id)
        records = self.store.load_trials(session_id)
        objective = _normalise_objectives(meta.objectives)[0]
        best_value = None
        best_config = None
        for record in records:
            if record.get("status") != TrialStatus.SUCCEEDED.value:
                continue
            value = record.get("metrics", {}).get(objective.name)
            if value is None:
                continue
            if best_value is None or objective.score(value) < objective.score(best_value):
                best_value = float(value)
                best_config = record.get("config")
        return {
            "session_id": session_id,
            "status": meta.status,
            "n_trials": len(records),
            "max_trials": meta.max_trials,
            "complete": len(records) >= meta.max_trials,
            "objective": {"name": objective.name, "minimize": objective.minimize},
            "best_value": best_value,
            "best_config": best_config,
            "optimizer": meta.optimizer.get("name"),
        }

    def replay_session(self, session_id: str, trace: Any = None) -> "ReplayReport":
        """Re-execute a journaled session and verify it bit-exactly.

        See :func:`repro.core.replay.replay_session` (the engine behind
        ``repro replay``): per journaled epoch a fresh optimizer is built
        from the stored spec, every suggest call is re-executed at its
        recorded history position, crash imputations are re-run, and the
        state digests are compared record by record. Returns a
        :class:`~repro.core.replay.ReplayReport`; the first mismatch is
        reported as its ``divergence``, never raised.
        """
        from .replay import replay_session

        return replay_session(self.store, session_id, trace=trace)

    def complete(self, session_id: str) -> None:
        """Mark a session finished (it can still be resumed read-only)."""
        self.store.update_session(session_id, status="completed")

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
