"""Durable session state: the ``TrialStore`` interface and trial journal.

The paper frames autotuning as a *service*: campaigns outlive processes,
so trials must be durable the moment they are acknowledged. This module
defines the storage contract every backend implements and the metadata
needed to resurrect a session from storage alone.

Design
------
* **Append-only.** A session's history is an ordered journal of trial
  records (the canonical :func:`repro.core.codec.encode_trial` shape).
  Stores never rewrite history — crash recovery is "read the prefix that
  made it to disk".
* **Atomic + idempotent appends.** ``append_trial`` must be atomic (a
  crash mid-write never corrupts previously-acknowledged records) and
  deduplicating: a record whose ``report_id`` was already journaled is
  dropped and reported as a duplicate, which is what makes client retries
  over an unreliable transport safe.
* **Self-describing sessions.** :class:`SessionMeta` persists everything
  a :class:`~repro.core.manager.SessionManager` needs to rebuild the
  session — serialized space, optimizer spec, objectives, budgets — so
  ``resume(session_id)`` works in a process that never saw the session.

Backends live in :mod:`repro.core.stores`: a JSON-lines journal
(:class:`~repro.core.stores.JsonJournalStore`), SQLite in WAL mode
(:class:`~repro.core.stores.SqliteTrialStore`), and an in-memory store
for tests. :func:`import_legacy_trials` migrates pre-service whole-file
JSON dumps (``storage.save_trials``) into any store.
"""

from __future__ import annotations

import json
import uuid
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from ..exceptions import ReproError

__all__ = [
    "StorageError",
    "TransientStorageError",
    "SessionMeta",
    "AppendResult",
    "TrialStore",
    "new_session_id",
    "import_legacy_trials",
]

META_FORMAT_VERSION = 1

#: Version-1 trial files written by the deprecated ``storage.save_trials``.
LEGACY_TRIALS_VERSION = 1


class StorageError(ReproError):
    """A trial store operation failed or the stored state is invalid."""


class TransientStorageError(StorageError):
    """A store operation failed in a way that a retry may fix.

    Raised for contended or momentarily-unavailable storage — SQLite
    ``database is locked``/``busy``, a failed fsync, a full disk, an
    injected chaos fault. The distinction matters end to end: the service
    maps transient errors to HTTP 503 with a ``Retry-After`` hint (clients
    back off and retry) while permanent :class:`StorageError`\\ s map to
    409 (retrying cannot help), and :class:`~repro.core.session.TuningSession`
    spills trials into a bounded in-memory buffer on transient append
    failures instead of failing the tell.

    The contract for raisers: after a :class:`TransientStorageError` from
    ``append_trial`` the journal must be exactly as if the append was never
    attempted (no phantom or torn records surfacing on the next load).
    """


def new_session_id() -> str:
    """A fresh, URL-safe session identifier."""
    return uuid.uuid4().hex


@dataclass
class SessionMeta:
    """Everything needed to rebuild a tuning session from storage.

    ``space`` is the :func:`repro.space.serialize.space_to_dict` form;
    ``optimizer`` is ``{"name": ..., "seed": ..., "options": {...}}``
    resolved against the optimizer registry at resume time. ``extra`` is
    free-form (the service records its target-system spec there).
    """

    session_id: str
    space: dict[str, Any]
    optimizer: dict[str, Any]
    objectives: list[dict[str, Any]]
    max_trials: int
    max_cost: float | None = None
    batch_size: int = 1
    status: str = "active"
    created_at: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": META_FORMAT_VERSION,
            "session_id": self.session_id,
            "space": self.space,
            "optimizer": self.optimizer,
            "objectives": self.objectives,
            "max_trials": self.max_trials,
            "max_cost": self.max_cost,
            "batch_size": self.batch_size,
            "status": self.status,
            "created_at": self.created_at,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SessionMeta":
        version = data.get("version", META_FORMAT_VERSION)
        if version != META_FORMAT_VERSION:
            raise StorageError(f"unsupported session-meta version {version!r}")
        try:
            return cls(
                session_id=str(data["session_id"]),
                space=dict(data["space"]),
                optimizer=dict(data["optimizer"]),
                objectives=[dict(o) for o in data["objectives"]],
                max_trials=int(data["max_trials"]),
                max_cost=None if data.get("max_cost") is None else float(data["max_cost"]),
                batch_size=int(data.get("batch_size", 1)),
                status=str(data.get("status", "active")),
                created_at=float(data.get("created_at", 0.0)),
                extra=dict(data.get("extra", {})),
            )
        except (KeyError, TypeError, ValueError) as err:
            raise StorageError(f"malformed session meta: {err}") from err


@dataclass(frozen=True)
class AppendResult:
    """Outcome of one ``append_trial``: the durable trial id, and whether
    the record was a duplicate of an already-journaled report."""

    trial_id: int
    duplicate: bool = False


class TrialStore(ABC):
    """Abstract durable store of tuning sessions and their trial journals.

    The contract all backends must honour:

    * ``append_trial`` is **atomic** — after a crash at any point, loading
      the session yields exactly the records whose appends were
      acknowledged (a torn trailing write is discarded, never surfaced as
      corruption) — and **idempotent** on ``record["report_id"]``.
    * ``load_trials`` returns records in append order with contiguous
      ``trial_id`` 0..n-1.
    * All methods are thread-safe.
    """

    # -- sessions -----------------------------------------------------------
    @abstractmethod
    def create_session(self, meta: SessionMeta) -> None:
        """Persist a new session. Raises :class:`StorageError` if the id exists."""

    @abstractmethod
    def get_session(self, session_id: str) -> SessionMeta | None:
        """Load a session's metadata, or ``None`` if unknown."""

    @abstractmethod
    def update_session(self, session_id: str, **fields: Any) -> None:
        """Update mutable metadata fields (``status``, ``extra``)."""

    @abstractmethod
    def list_sessions(self) -> list[str]:
        """All known session ids (sorted)."""

    # -- trials -------------------------------------------------------------
    @abstractmethod
    def append_trial(self, session_id: str, record: Mapping[str, Any]) -> AppendResult:
        """Durably append one trial record; returns its id and dup flag.

        The store assigns the journal position as the authoritative
        ``trial_id`` (any id in ``record`` is overwritten), so callers
        cannot create gaps or collisions.
        """

    @abstractmethod
    def load_trials(self, session_id: str) -> list[dict[str, Any]]:
        """All journaled records of a session, in append order."""

    @abstractmethod
    def trial_count(self, session_id: str) -> int:
        """Number of journaled trials (cheaper than ``len(load_trials())``)."""

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:  # pragma: no cover - trivial default
        """Release resources; further use is undefined."""

    def __enter__(self) -> "TrialStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- shared helpers -----------------------------------------------------
    @staticmethod
    def _require_session(meta: SessionMeta | None, session_id: str) -> SessionMeta:
        if meta is None:
            raise StorageError(f"unknown session {session_id!r}")
        return meta


# -- legacy migration --------------------------------------------------------


def iter_legacy_trials(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield trial records from a pre-service ``save_trials`` JSON file."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as err:
        raise StorageError(f"cannot read legacy trial file {path}: {err}") from err
    if payload.get("version") != LEGACY_TRIALS_VERSION:
        raise StorageError(f"unsupported trial-file version: {payload.get('version')!r}")
    for record in payload.get("trials", []):
        yield dict(record)


def import_legacy_trials(
    store: TrialStore,
    path: str | Path,
    session_id: str | None = None,
    space: dict[str, Any] | Any = None,
    objectives: Sequence[Mapping[str, Any]] | None = None,
) -> str:
    """Migrate a whole-file JSON dump into ``store`` as one session.

    ``space`` may be a :class:`~repro.space.ConfigurationSpace` (serialized
    via :func:`~repro.space.serialize.space_to_dict`) or an
    already-serialized dict; when omitted, a minimal space is inferred so
    the records stay loadable, though resuming an *optimizer* over an
    inferred space is best-effort. Returns the session id.
    """
    from ..space import ConfigurationSpace
    from ..space.serialize import space_to_dict

    records = list(iter_legacy_trials(path))
    if isinstance(space, ConfigurationSpace):
        space_spec = space_to_dict(space, strict=False)
    elif isinstance(space, Mapping):
        space_spec = dict(space)
    else:
        space_spec = _infer_space_spec(records, name=Path(path).stem)
    sid = session_id or f"legacy-{Path(path).stem}-{new_session_id()[:8]}"
    metric_names = sorted({name for r in records for name in r.get("metrics", {})})
    objs = [dict(o) for o in objectives] if objectives else (
        [{"name": metric_names[0], "minimize": True}] if metric_names else [{"name": "score", "minimize": True}]
    )
    meta = SessionMeta(
        session_id=sid,
        space=space_spec,
        optimizer={"name": "random", "seed": 0, "options": {}},
        objectives=objs,
        max_trials=max(len(records), 1),
        status="migrated",
        extra={"migrated_from": str(path)},
    )
    store.create_session(meta)
    for record in records:
        store.append_trial(sid, record)
    return sid


def _infer_space_spec(records: Sequence[Mapping[str, Any]], name: str) -> dict[str, Any]:
    """Best-effort space description from the values seen in a legacy file."""
    values_by_knob: dict[str, list[Any]] = {}
    for r in records:
        for knob, value in r.get("config", {}).items():
            values_by_knob.setdefault(knob, []).append(value)
    params: list[dict[str, Any]] = []
    for knob, values in values_by_knob.items():
        if all(isinstance(v, bool) for v in values):
            params.append({"type": "bool", "name": knob, "default": values[0]})
        elif all(isinstance(v, int) and not isinstance(v, bool) for v in values):
            lo, hi = min(values), max(values)
            hi = hi if hi > lo else lo + 1
            params.append({"type": "int", "name": knob, "lower": lo, "upper": hi, "default": values[0]})
        elif all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
            lo, hi = float(min(values)), float(max(values))
            hi = hi if hi > lo else lo + 1.0
            params.append({"type": "float", "name": knob, "lower": lo, "upper": hi, "default": float(values[0])})
        else:
            choices = sorted(set(values), key=repr)
            if len(choices) < 2:
                choices = choices + [f"_not_{choices[0]}"]
            params.append({"type": "categorical", "name": knob, "choices": choices, "default": values[0]})
    if not params:
        params = [{"type": "bool", "name": "placeholder", "default": False}]
    return {"version": 1, "name": name, "parameters": params, "conditions": []}
