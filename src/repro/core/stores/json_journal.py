"""Append-only JSON-lines trial journal, one file pair per session.

Layout under the store root::

    <root>/<session_id>.meta.json      # SessionMeta, rewritten atomically
    <root>/<session_id>.journal.jsonl  # one trial record per line, append-only

Durability contract:

* **Metadata** writes go through write-temp + ``os.replace`` (+ fsync), so
  a crash mid-write leaves either the old or the new metadata, never a
  truncated file.
* **Trial appends** write one ``\\n``-terminated JSON line and fsync before
  acknowledging. A crash mid-append can only tear the *final* line;
  recovery (:meth:`JsonJournalStore.load_trials`) detects the torn tail
  (unterminated or undecodable last line), discards it, and truncates the
  file so the journal is clean for the next append. Records before the
  tail are untouched — acknowledged trials are never lost.
* **Idempotency**: records carrying a ``report_id`` already present in the
  journal are dropped and reported as duplicates.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from pathlib import Path
from typing import Any, Mapping

from ..journal import AppendResult, SessionMeta, StorageError, TransientStorageError, TrialStore

__all__ = ["JsonJournalStore"]

_SESSION_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


def _check_session_id(session_id: str) -> str:
    if not _SESSION_ID_RE.match(session_id):
        raise StorageError(
            f"invalid session id {session_id!r}: use 1-128 chars of [A-Za-z0-9._-], "
            "not starting with '.'"
        )
    return session_id


def _atomic_write(path: Path, text: str, fsync: bool = True) -> None:
    """Write-temp + ``os.replace`` so readers never observe a partial file."""
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)


class JsonJournalStore(TrialStore):
    """Durable JSON-journal store rooted at a directory.

    ``fsync=False`` trades durability-on-power-loss for speed (appends are
    still atomic against *process* crashes thanks to the torn-tail
    recovery); tests use it to keep wall clock down.
    """

    def __init__(self, root: str | Path, fsync: bool = True) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = bool(fsync)
        self._lock = threading.RLock()
        # Per-session journal state, lazily recovered from disk:
        # number of valid records and the set of seen report ids.
        self._counts: dict[str, int] = {}
        self._report_ids: dict[str, set[str]] = {}

    # -- paths --------------------------------------------------------------
    def _meta_path(self, session_id: str) -> Path:
        return self.root / f"{_check_session_id(session_id)}.meta.json"

    def _journal_path(self, session_id: str) -> Path:
        return self.root / f"{_check_session_id(session_id)}.journal.jsonl"

    # -- sessions -----------------------------------------------------------
    def create_session(self, meta: SessionMeta) -> None:
        with self._lock:
            path = self._meta_path(meta.session_id)
            if path.exists():
                raise StorageError(f"session {meta.session_id!r} already exists")
            if not meta.created_at:
                meta.created_at = time.time()
            _atomic_write(path, json.dumps(meta.to_dict(), indent=2), self.fsync)
            self._counts[meta.session_id] = 0
            self._report_ids[meta.session_id] = set()

    def get_session(self, session_id: str) -> SessionMeta | None:
        path = self._meta_path(session_id)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError as err:
            raise StorageError(f"cannot read session meta {path}: {err}") from err
        try:
            return SessionMeta.from_dict(json.loads(text))
        except json.JSONDecodeError as err:
            raise StorageError(f"corrupt session meta {path}: {err}") from err

    def update_session(self, session_id: str, **fields: Any) -> None:
        with self._lock:
            meta = self._require_session(self.get_session(session_id), session_id)
            for key, value in fields.items():
                if not hasattr(meta, key):
                    raise StorageError(f"unknown session-meta field {key!r}")
                setattr(meta, key, value)
            _atomic_write(self._meta_path(session_id), json.dumps(meta.to_dict(), indent=2), self.fsync)

    def list_sessions(self) -> list[str]:
        return sorted(p.name[: -len(".meta.json")] for p in self.root.glob("*.meta.json"))

    # -- trials -------------------------------------------------------------
    def _recover(self, session_id: str) -> None:
        """Load (and if needed repair) a session's journal state from disk."""
        if session_id in self._counts:
            return
        self._require_session(self.get_session(session_id), session_id)
        records = self._read_journal(session_id, repair=True)
        self._counts[session_id] = len(records)
        self._report_ids[session_id] = {
            r["report_id"] for r in records if r.get("report_id") is not None
        }

    def append_trial(self, session_id: str, record: Mapping[str, Any]) -> AppendResult:
        with self._lock:
            self._recover(session_id)
            report_id = record.get("report_id")
            if report_id is not None and report_id in self._report_ids[session_id]:
                trial_id = self._find_trial_id(session_id, report_id)
                return AppendResult(trial_id=trial_id, duplicate=True)
            trial_id = self._counts[session_id]
            payload = dict(record)
            payload["trial_id"] = trial_id
            line = json.dumps(payload, separators=(",", ":"), default=str) + "\n"
            self._append_line(self._journal_path(session_id), line.encode("utf-8"))
            self._counts[session_id] = trial_id + 1
            if report_id is not None:
                self._report_ids[session_id].add(report_id)
            return AppendResult(trial_id=trial_id)

    def _append_line(self, path: Path, data: bytes) -> None:
        """Append one record durably, or leave the journal untouched.

        Disk-full / IO / fsync failures surface as
        :class:`TransientStorageError` (the contract's retryable class),
        and the journal is rolled back to its pre-append length first so a
        half-written or written-but-unacknowledged line can never turn a
        retry into a duplicate record.
        """
        try:
            fh = open(path, "ab")
        except OSError as err:
            raise TransientStorageError(f"cannot open journal {path}: {err}") from err
        try:
            offset = fh.tell()
            try:
                fh.write(data)
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            except OSError as err:
                try:
                    fh.truncate(offset)
                except OSError:  # pragma: no cover - rollback is best-effort
                    pass  # the torn tail is unterminated; recovery discards it
                raise TransientStorageError(
                    f"append to journal {path} failed: {err}"
                ) from err
        finally:
            fh.close()

    def _find_trial_id(self, session_id: str, report_id: str) -> int:
        for record in self._read_journal(session_id, repair=False):
            if record.get("report_id") == report_id:
                return int(record["trial_id"])
        raise StorageError(f"report {report_id!r} tracked but not found in journal")

    def _read_journal(self, session_id: str, repair: bool) -> list[dict[str, Any]]:
        path = self._journal_path(session_id)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return []
        except OSError as err:
            raise StorageError(f"cannot read journal {path}: {err}") from err
        records: list[dict[str, Any]] = []
        valid_bytes = 0
        lines = raw.split(b"\n")
        for i, line in enumerate(lines):
            if not line:
                continue
            torn_tail = i == len(lines) - 1  # no trailing newline -> incomplete append
            if not torn_tail:
                try:
                    records.append(json.loads(line.decode("utf-8")))
                    valid_bytes += len(line) + 1
                    continue
                except (json.JSONDecodeError, UnicodeDecodeError) as err:
                    # An interior line can only be mangled by external
                    # corruption, not by our append protocol: refuse to
                    # guess rather than silently drop history.
                    raise StorageError(
                        f"corrupt journal {path} at line {i + 1}: {err}"
                    ) from err
            # Torn tail: a crash mid-append. Discard it (never acknowledged).
            if repair:
                with open(path, "r+b") as fh:
                    fh.truncate(valid_bytes)
                    if self.fsync:
                        os.fsync(fh.fileno())
        return records

    def load_trials(self, session_id: str) -> list[dict[str, Any]]:
        with self._lock:
            self._require_session(self.get_session(session_id), session_id)
            return self._read_journal(session_id, repair=True)

    def trial_count(self, session_id: str) -> int:
        with self._lock:
            self._recover(session_id)
            return self._counts[session_id]

    def close(self) -> None:
        with self._lock:
            self._counts.clear()
            self._report_ids.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JsonJournalStore(root={str(self.root)!r})"
