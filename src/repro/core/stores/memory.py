"""In-memory trial store: the ``TrialStore`` contract without durability.

Useful for tests and for ephemeral service deployments where resumability
across restarts is not needed. Semantics (append order, id assignment,
report-id deduplication, errors) match the durable backends exactly, so
the contract test-suite runs against all three.
"""

from __future__ import annotations

import copy
import threading
import time
from typing import Any, Mapping

from ..journal import AppendResult, SessionMeta, StorageError, TrialStore

__all__ = ["MemoryTrialStore"]


class MemoryTrialStore(TrialStore):
    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._sessions: dict[str, SessionMeta] = {}
        self._trials: dict[str, list[dict[str, Any]]] = {}
        self._report_ids: dict[str, dict[str, int]] = {}

    def create_session(self, meta: SessionMeta) -> None:
        with self._lock:
            if meta.session_id in self._sessions:
                raise StorageError(f"session {meta.session_id!r} already exists")
            if not meta.created_at:
                meta.created_at = time.time()
            self._sessions[meta.session_id] = copy.deepcopy(meta)
            self._trials[meta.session_id] = []
            self._report_ids[meta.session_id] = {}

    def get_session(self, session_id: str) -> SessionMeta | None:
        with self._lock:
            meta = self._sessions.get(session_id)
            return copy.deepcopy(meta) if meta is not None else None

    def update_session(self, session_id: str, **fields: Any) -> None:
        with self._lock:
            meta = self._require_session(self._sessions.get(session_id), session_id)
            for key, value in fields.items():
                if not hasattr(meta, key):
                    raise StorageError(f"unknown session-meta field {key!r}")
                setattr(meta, key, value)

    def list_sessions(self) -> list[str]:
        with self._lock:
            return sorted(self._sessions)

    def append_trial(self, session_id: str, record: Mapping[str, Any]) -> AppendResult:
        with self._lock:
            self._require_session(self._sessions.get(session_id), session_id)
            report_id = record.get("report_id")
            seen = self._report_ids[session_id]
            if report_id is not None and report_id in seen:
                return AppendResult(trial_id=seen[report_id], duplicate=True)
            trial_id = len(self._trials[session_id])
            payload = copy.deepcopy(dict(record))
            payload["trial_id"] = trial_id
            self._trials[session_id].append(payload)
            if report_id is not None:
                seen[report_id] = trial_id
            return AppendResult(trial_id=trial_id)

    def load_trials(self, session_id: str) -> list[dict[str, Any]]:
        with self._lock:
            self._require_session(self._sessions.get(session_id), session_id)
            return copy.deepcopy(self._trials[session_id])

    def trial_count(self, session_id: str) -> int:
        with self._lock:
            self._require_session(self._sessions.get(session_id), session_id)
            return len(self._trials[session_id])
