"""SQLite trial store: one database file, WAL mode, many sessions.

The service default. Write-ahead logging keeps readers unblocked by the
single writer and makes commits atomic against process kills; a unique
index on ``(session_id, report_id)`` enforces tell idempotency inside the
database itself, so deduplication survives restarts and concurrent
writers without any in-memory bookkeeping.

``synchronous=NORMAL`` is used with WAL: commits are durable against
process crashes (the acceptance scenario — SIGKILL mid-campaign) and the
database can never be corrupted by one; an OS/power failure may lose the
very last commits but never acknowledged-then-rolled-back ones.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Mapping

from ..journal import AppendResult, SessionMeta, StorageError, TransientStorageError, TrialStore

__all__ = ["SqliteTrialStore"]

#: ``sqlite3.OperationalError`` message fragments that mark a *retryable*
#: failure: writer contention or a momentarily full disk. Everything else
#: (malformed database, missing table) is permanent.
_TRANSIENT_MARKERS = ("locked", "busy", "disk is full", "disk i/o error")


def _storage_error(context: str, err: sqlite3.Error) -> StorageError:
    """Wrap a sqlite error, classifying contention/IO as transient."""
    if isinstance(err, sqlite3.OperationalError):
        message = str(err).lower()
        if any(marker in message for marker in _TRANSIENT_MARKERS):
            return TransientStorageError(f"{context}: {err}")
    return StorageError(f"{context}: {err}")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS sessions (
    session_id TEXT PRIMARY KEY,
    meta       TEXT NOT NULL,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS trials (
    session_id TEXT NOT NULL REFERENCES sessions(session_id),
    trial_id   INTEGER NOT NULL,
    report_id  TEXT,
    record     TEXT NOT NULL,
    PRIMARY KEY (session_id, trial_id)
);
CREATE UNIQUE INDEX IF NOT EXISTS trials_report
    ON trials(session_id, report_id) WHERE report_id IS NOT NULL;
"""


class SqliteTrialStore(TrialStore):
    """Durable trial store backed by a single SQLite file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        try:
            self._db = sqlite3.connect(str(self.path), check_same_thread=False)
            self._db.execute("PRAGMA journal_mode=WAL")
            self._db.execute("PRAGMA synchronous=NORMAL")
            # Ride out short writer contention inside SQLite before
            # surfacing a TransientStorageError for the caller to retry.
            self._db.execute("PRAGMA busy_timeout=5000")
            self._db.executescript(_SCHEMA)
            self._db.commit()
        except sqlite3.Error as err:
            raise StorageError(f"cannot open SQLite store {self.path}: {err}") from err

    # -- sessions -----------------------------------------------------------
    def create_session(self, meta: SessionMeta) -> None:
        if not meta.created_at:
            meta.created_at = time.time()
        with self._lock:
            try:
                self._db.execute(
                    "INSERT INTO sessions (session_id, meta, created_at) VALUES (?, ?, ?)",
                    (meta.session_id, json.dumps(meta.to_dict()), meta.created_at),
                )
                self._db.commit()
            except sqlite3.IntegrityError:
                self._db.rollback()
                raise StorageError(f"session {meta.session_id!r} already exists") from None
            except sqlite3.Error as err:
                self._db.rollback()
                raise _storage_error("cannot create session", err) from err

    def get_session(self, session_id: str) -> SessionMeta | None:
        with self._lock:
            row = self._db.execute(
                "SELECT meta FROM sessions WHERE session_id = ?", (session_id,)
            ).fetchone()
        if row is None:
            return None
        try:
            return SessionMeta.from_dict(json.loads(row[0]))
        except json.JSONDecodeError as err:
            raise StorageError(f"corrupt session meta for {session_id!r}: {err}") from err

    def update_session(self, session_id: str, **fields: Any) -> None:
        with self._lock:
            meta = self._require_session(self.get_session(session_id), session_id)
            for key, value in fields.items():
                if not hasattr(meta, key):
                    raise StorageError(f"unknown session-meta field {key!r}")
                setattr(meta, key, value)
            self._db.execute(
                "UPDATE sessions SET meta = ? WHERE session_id = ?",
                (json.dumps(meta.to_dict()), session_id),
            )
            self._db.commit()

    def list_sessions(self) -> list[str]:
        with self._lock:
            rows = self._db.execute("SELECT session_id FROM sessions ORDER BY session_id").fetchall()
        return [r[0] for r in rows]

    # -- trials -------------------------------------------------------------
    def append_trial(self, session_id: str, record: Mapping[str, Any]) -> AppendResult:
        report_id = record.get("report_id")
        with self._lock:
            self._require_session(self.get_session(session_id), session_id)
            try:
                self._db.execute("BEGIN IMMEDIATE")
                if report_id is not None:
                    row = self._db.execute(
                        "SELECT trial_id FROM trials WHERE session_id = ? AND report_id = ?",
                        (session_id, report_id),
                    ).fetchone()
                    if row is not None:
                        self._db.rollback()
                        return AppendResult(trial_id=int(row[0]), duplicate=True)
                row = self._db.execute(
                    "SELECT COALESCE(MAX(trial_id) + 1, 0) FROM trials WHERE session_id = ?",
                    (session_id,),
                ).fetchone()
                trial_id = int(row[0])
                payload = dict(record)
                payload["trial_id"] = trial_id
                self._db.execute(
                    "INSERT INTO trials (session_id, trial_id, report_id, record) VALUES (?, ?, ?, ?)",
                    (session_id, trial_id, report_id, json.dumps(payload, default=str)),
                )
                self._db.commit()
                return AppendResult(trial_id=trial_id)
            except sqlite3.Error as err:
                try:
                    self._db.rollback()
                except sqlite3.Error:  # pragma: no cover - rollback is best-effort
                    pass
                raise _storage_error(f"cannot append trial to {session_id!r}", err) from err

    def load_trials(self, session_id: str) -> list[dict[str, Any]]:
        with self._lock:
            self._require_session(self.get_session(session_id), session_id)
            rows = self._db.execute(
                "SELECT record FROM trials WHERE session_id = ? ORDER BY trial_id",
                (session_id,),
            ).fetchall()
        try:
            return [json.loads(r[0]) for r in rows]
        except json.JSONDecodeError as err:
            raise StorageError(f"corrupt trial record in {session_id!r}: {err}") from err

    def trial_count(self, session_id: str) -> int:
        with self._lock:
            self._require_session(self.get_session(session_id), session_id)
            row = self._db.execute(
                "SELECT COUNT(*) FROM trials WHERE session_id = ?", (session_id,)
            ).fetchone()
        return int(row[0])

    def close(self) -> None:
        with self._lock:
            try:
                self._db.close()
            except sqlite3.Error:  # pragma: no cover - defensive
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SqliteTrialStore(path={str(self.path)!r})"
