"""Trial-store backends implementing :class:`repro.core.journal.TrialStore`.

* :class:`JsonJournalStore` — one append-only JSON-lines journal per
  session, human-inspectable, atomic via fsynced appends + torn-tail
  recovery, metadata via write-temp + ``os.replace``.
* :class:`SqliteTrialStore` — single-file SQLite database in WAL mode;
  the right default for a long-lived service hosting many sessions.
* :class:`MemoryTrialStore` — non-durable, for tests and ephemeral use.

:func:`open_store` picks a backend from a path: ``*.sqlite``/``*.db`` (or
an existing SQLite file) opens SQLite, anything else a journal directory.
"""

from __future__ import annotations

from pathlib import Path

from ..journal import StorageError, TrialStore
from .json_journal import JsonJournalStore
from .memory import MemoryTrialStore
from .sqlite import SqliteTrialStore

__all__ = [
    "JsonJournalStore",
    "MemoryTrialStore",
    "SqliteTrialStore",
    "open_store",
]


def open_store(path: str | Path, backend: str | None = None) -> TrialStore:
    """Open (creating if needed) a durable trial store at ``path``.

    ``backend`` forces ``"sqlite"`` or ``"json"``; by default the choice
    follows the path: SQLite for ``*.sqlite``/``*.sqlite3``/``*.db`` or an
    existing regular file, JSON journal directory otherwise.
    """
    path = Path(path)
    if backend is None:
        if path.suffix in (".sqlite", ".sqlite3", ".db") or path.is_file():
            backend = "sqlite"
        else:
            backend = "json"
    if backend == "sqlite":
        return SqliteTrialStore(path)
    if backend == "json":
        return JsonJournalStore(path)
    raise StorageError(f"unknown store backend {backend!r}; choose 'sqlite' or 'json'")
