"""Parametric workload descriptions.

Real autotuning drives a benchmark kit (YCSB, TPC-C, TPC-H, or a customer
trace) against the target system. Here a :class:`Workload` captures the
characteristics those kits exercise — operation mix, working-set size,
access skew, concurrency — and the simulated systems in :mod:`repro.sysim`
compute performance from them, the same way the real kit's load shapes real
performance.

The numeric :meth:`Workload.signature` doubles as the ground-truth feature
vector for the workload-identification experiments: similar signatures ⇒
similar optimal configurations.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ReproError

__all__ = ["Workload"]


def _check_fraction(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ReproError(f"{name} must be in [0, 1], got {value}")
    return float(value)


@dataclass(frozen=True)
class Workload:
    """One workload: what the clients ask the system to do.

    Attributes
    ----------
    name:
        Human label, e.g. ``"ycsb-a"`` or ``"tpch-sf10"``.
    read_fraction:
        Share of operations that are reads (the rest write).
    scan_fraction:
        Share of reads that are large scans / analytical accesses
        (vs. point lookups).
    data_size_mb:
        Total resident data size.
    working_set_mb:
        Hot-set size actually touched during a run; ≤ ``data_size_mb``.
    skew:
        Access skew in [0, 1]: 0 = uniform, 1 = extremely Zipfian. Skewed
        workloads get high cache-hit ratios from small buffer pools.
    concurrency:
        Offered load: number of concurrent client sessions.
    sort_intensity:
        How much queries rely on sort/join/aggregate memory in [0, 1]
        (drives ``work_mem``-style knob sensitivity).
    commit_sensitivity:
        How much throughput depends on durable-commit latency in [0, 1]
        (drives flush-method knob sensitivity).
    think_time_ms:
        Client think time between operations.
    scale_factor:
        Benchmark scale factor (multi-fidelity lever). Scaling a workload
        multiplies data and working-set sizes.
    tags:
        Free-form labels, e.g. the benchmark family — used as ground-truth
        classes by workload-identification experiments.
    """

    name: str
    read_fraction: float = 0.5
    scan_fraction: float = 0.1
    data_size_mb: float = 10_000.0
    working_set_mb: float = 2_000.0
    skew: float = 0.5
    concurrency: int = 32
    sort_intensity: float = 0.2
    commit_sensitivity: float = 0.5
    think_time_ms: float = 0.0
    scale_factor: float = 1.0
    tags: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        _check_fraction("read_fraction", self.read_fraction)
        _check_fraction("scan_fraction", self.scan_fraction)
        _check_fraction("skew", self.skew)
        _check_fraction("sort_intensity", self.sort_intensity)
        _check_fraction("commit_sensitivity", self.commit_sensitivity)
        if self.data_size_mb <= 0 or self.working_set_mb <= 0:
            raise ReproError("data_size_mb and working_set_mb must be positive")
        if self.working_set_mb > self.data_size_mb + 1e-9:
            raise ReproError(
                f"working_set_mb ({self.working_set_mb}) cannot exceed "
                f"data_size_mb ({self.data_size_mb})"
            )
        if self.concurrency < 1:
            raise ReproError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.think_time_ms < 0:
            raise ReproError(f"think_time_ms must be >= 0, got {self.think_time_ms}")
        if self.scale_factor <= 0:
            raise ReproError(f"scale_factor must be positive, got {self.scale_factor}")

    @property
    def write_fraction(self) -> float:
        return 1.0 - self.read_fraction

    def scaled(self, factor: float, name: str | None = None) -> "Workload":
        """A smaller/larger copy of this workload (multi-fidelity lever).

        Scale factor multiplies data and working-set sizes — exactly the
        TPC-H SF1 vs SF100 situation from the "Systems Challenges of
        Multi-Fidelity" slide, including the hazard that at small scale
        everything fits in memory and I/O knobs stop mattering.
        """
        if factor <= 0:
            raise ReproError(f"scale factor must be positive, got {factor}")
        return dataclasses.replace(
            self,
            name=name or f"{self.name}@sf{factor:g}",
            data_size_mb=self.data_size_mb * factor,
            working_set_mb=self.working_set_mb * factor,
            scale_factor=self.scale_factor * factor,
        )

    def blend(self, other: "Workload", alpha: float, name: str | None = None) -> "Workload":
        """Convex mix of two workloads; ``alpha=0`` is self, 1 is ``other``.

        Used to synthesise gradual workload drift and "not-exactly-alike"
        workloads for identification experiments.
        """
        if not 0.0 <= alpha <= 1.0:
            raise ReproError(f"alpha must be in [0, 1], got {alpha}")

        def mix(a: float, b: float) -> float:
            return (1 - alpha) * a + alpha * b

        return Workload(
            name=name or f"{self.name}*{1 - alpha:g}+{other.name}*{alpha:g}",
            read_fraction=mix(self.read_fraction, other.read_fraction),
            scan_fraction=mix(self.scan_fraction, other.scan_fraction),
            data_size_mb=mix(self.data_size_mb, other.data_size_mb),
            working_set_mb=min(
                mix(self.working_set_mb, other.working_set_mb),
                mix(self.data_size_mb, other.data_size_mb),
            ),
            skew=mix(self.skew, other.skew),
            concurrency=max(1, round(mix(self.concurrency, other.concurrency))),
            sort_intensity=mix(self.sort_intensity, other.sort_intensity),
            commit_sensitivity=mix(self.commit_sensitivity, other.commit_sensitivity),
            think_time_ms=mix(self.think_time_ms, other.think_time_ms),
            scale_factor=mix(self.scale_factor, other.scale_factor),
            tags=tuple(sorted(set(self.tags) | set(other.tags))),
        )

    def perturbed(self, rng: np.random.Generator, magnitude: float = 0.05) -> "Workload":
        """A noisy variant of this workload (same family, different tenant)."""

        def jitter_frac(v: float) -> float:
            return float(np.clip(v + rng.normal(0.0, magnitude), 0.0, 1.0))

        def jitter_pos(v: float) -> float:
            return float(v * np.exp(rng.normal(0.0, magnitude)))

        data = jitter_pos(self.data_size_mb)
        return dataclasses.replace(
            self,
            name=f"{self.name}~",
            read_fraction=jitter_frac(self.read_fraction),
            scan_fraction=jitter_frac(self.scan_fraction),
            data_size_mb=data,
            working_set_mb=min(data, jitter_pos(self.working_set_mb)),
            skew=jitter_frac(self.skew),
            concurrency=max(1, round(jitter_pos(self.concurrency))),
            sort_intensity=jitter_frac(self.sort_intensity),
            commit_sensitivity=jitter_frac(self.commit_sensitivity),
        )

    def signature(self) -> np.ndarray:
        """Ground-truth numeric feature vector (normalised-ish)."""
        return np.array(
            [
                self.read_fraction,
                self.scan_fraction,
                np.log10(self.data_size_mb),
                np.log10(self.working_set_mb),
                self.skew,
                np.log10(self.concurrency + 1.0),
                self.sort_intensity,
                self.commit_sensitivity,
                np.log10(self.think_time_ms + 1.0),
            ]
        )

    #: Names matching :meth:`signature` entries, for reporting.
    SIGNATURE_FIELDS = (
        "read_fraction",
        "scan_fraction",
        "log_data_size",
        "log_working_set",
        "skew",
        "log_concurrency",
        "sort_intensity",
        "commit_sensitivity",
        "log_think_time",
    )
