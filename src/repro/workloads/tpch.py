"""TPC-H decision-support workload: 22 query templates + workload builder.

Each query template carries the coarse characteristics the simulated DBMS
and Spark models consume: how much data it scans, how join/sort heavy it
is, and how well it parallelises. Scale factor SF ≈ 1 GB of data per unit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ReproError
from .base import Workload

__all__ = ["TpchQuery", "TPCH_QUERIES", "tpch", "tpch_query_mix"]


@dataclass(frozen=True)
class TpchQuery:
    """Coarse cost profile of one TPC-H query template.

    Attributes
    ----------
    number:
        Query number, 1–22.
    scan_gb_per_sf:
        Data scanned per unit of scale factor.
    join_intensity:
        0–1: how much of the work is joins (drives memory sensitivity).
    sort_intensity:
        0–1: sort/aggregate memory pressure.
    parallel_fraction:
        Amdahl-style parallelisable share of the work.
    selectivity:
        Fraction of scanned rows surviving filters (drives shuffle volume).
    """

    number: int
    scan_gb_per_sf: float
    join_intensity: float
    sort_intensity: float
    parallel_fraction: float
    selectivity: float

    @property
    def name(self) -> str:
        return f"Q{self.number}"


def _q(n: int, scan: float, join: float, sort: float, par: float, sel: float) -> TpchQuery:
    return TpchQuery(n, scan, join, sort, par, sel)


#: The 22 templates. Values are stylised but keep the well-known ordering:
#: Q1 is a full-lineitem scan+aggregate, Q9/Q21 are the join monsters,
#: Q6 is a cheap selective scan, etc.
TPCH_QUERIES: dict[int, TpchQuery] = {
    q.number: q
    for q in [
        _q(1, 0.75, 0.05, 0.60, 0.95, 0.98),
        _q(2, 0.15, 0.70, 0.30, 0.80, 0.01),
        _q(3, 0.55, 0.55, 0.45, 0.90, 0.10),
        _q(4, 0.45, 0.40, 0.30, 0.90, 0.05),
        _q(5, 0.60, 0.75, 0.40, 0.85, 0.02),
        _q(6, 0.75, 0.00, 0.05, 0.98, 0.02),
        _q(7, 0.60, 0.70, 0.45, 0.85, 0.02),
        _q(8, 0.65, 0.80, 0.40, 0.85, 0.01),
        _q(9, 0.80, 0.90, 0.55, 0.80, 0.05),
        _q(10, 0.55, 0.55, 0.50, 0.90, 0.10),
        _q(11, 0.10, 0.45, 0.35, 0.85, 0.05),
        _q(12, 0.50, 0.35, 0.25, 0.92, 0.05),
        _q(13, 0.25, 0.50, 0.45, 0.88, 0.50),
        _q(14, 0.50, 0.30, 0.15, 0.93, 0.02),
        _q(15, 0.50, 0.35, 0.30, 0.90, 0.03),
        _q(16, 0.15, 0.45, 0.40, 0.88, 0.10),
        _q(17, 0.55, 0.60, 0.25, 0.85, 0.01),
        _q(18, 0.70, 0.70, 0.60, 0.82, 0.05),
        _q(19, 0.55, 0.45, 0.15, 0.92, 0.01),
        _q(20, 0.45, 0.55, 0.30, 0.87, 0.02),
        _q(21, 0.75, 0.90, 0.50, 0.80, 0.03),
        _q(22, 0.15, 0.35, 0.35, 0.88, 0.10),
    ]
}


def tpch_query_mix(queries: list[int] | None = None) -> dict[int, float]:
    """Uniform mix over the given query numbers (default: all 22)."""
    numbers = queries if queries is not None else sorted(TPCH_QUERIES)
    for n in numbers:
        if n not in TPCH_QUERIES:
            raise ReproError(f"unknown TPC-H query number {n}")
    if not numbers:
        raise ReproError("query mix cannot be empty")
    share = 1.0 / len(numbers)
    return {n: share for n in numbers}


def tpch(
    scale_factor: float = 10.0,
    queries: list[int] | None = None,
    concurrency: int = 4,
) -> Workload:
    """Build a TPC-H workload at scale factor ``scale_factor``.

    The aggregate characteristics are the mix-weighted averages of the
    selected query templates; data volume is ~1 GB × SF.
    """
    if scale_factor <= 0:
        raise ReproError(f"scale_factor must be positive, got {scale_factor}")
    mix = tpch_query_mix(queries)
    avg = lambda attr: sum(getattr(TPCH_QUERIES[n], attr) * w for n, w in mix.items())  # noqa: E731
    data_mb = 1024.0 * scale_factor
    scanned_share = min(1.0, avg("scan_gb_per_sf"))
    return Workload(
        name=f"tpch-sf{scale_factor:g}",
        read_fraction=1.0,  # decision support: read only
        scan_fraction=0.95,
        data_size_mb=data_mb,
        working_set_mb=max(1.0, data_mb * scanned_share),
        skew=0.1,  # scans are uniform, little locality
        concurrency=concurrency,
        sort_intensity=min(1.0, avg("sort_intensity") + 0.5 * avg("join_intensity")),
        commit_sensitivity=0.0,
        scale_factor=scale_factor,
        tags=("tpch", "olap"),
    )
