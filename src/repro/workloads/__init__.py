"""Parametric workloads: YCSB, TPC-C, TPC-H, and time-varying traces."""

from .base import Workload
from .shifting import DiurnalTrace, DriftingTrace, PhasedTrace, WorkloadTrace
from .tpcc import MB_PER_WAREHOUSE, TPCC_TX_MIX, tpcc
from .tpch import TPCH_QUERIES, TpchQuery, tpch, tpch_query_mix
from .ycsb import YCSB_MIXES, ycsb

__all__ = [
    "Workload",
    "DiurnalTrace",
    "DriftingTrace",
    "PhasedTrace",
    "WorkloadTrace",
    "MB_PER_WAREHOUSE",
    "TPCC_TX_MIX",
    "tpcc",
    "TPCH_QUERIES",
    "TpchQuery",
    "tpch",
    "tpch_query_mix",
    "YCSB_MIXES",
    "ycsb",
]
