"""YCSB core workloads A–F as parametric :class:`Workload` presets.

The Yahoo! Cloud Serving Benchmark's standard mixes, expressed in the
characteristics our simulated systems consume. Record count and field size
determine data volume; the request distribution determines skew.
"""

from __future__ import annotations

from ..exceptions import ReproError
from .base import Workload

__all__ = ["ycsb", "YCSB_MIXES"]

#: (read_fraction, scan_fraction, skew, commit_sensitivity) per core workload.
#: - A: update heavy 50/50, zipfian
#: - B: read mostly 95/5, zipfian
#: - C: read only, zipfian
#: - D: read latest (inserts + reads), skewed toward recent
#: - E: short ranges (scans) + inserts
#: - F: read-modify-write
YCSB_MIXES: dict[str, tuple[float, float, float, float]] = {
    "a": (0.50, 0.00, 0.8, 0.7),
    "b": (0.95, 0.00, 0.8, 0.3),
    "c": (1.00, 0.00, 0.8, 0.0),
    "d": (0.95, 0.00, 0.9, 0.4),
    "e": (0.95, 0.95, 0.6, 0.4),
    "f": (0.50, 0.00, 0.8, 0.8),
}


def ycsb(
    mix: str,
    record_count: int = 10_000_000,
    field_bytes: int = 1_000,
    concurrency: int = 64,
    hot_fraction: float = 0.2,
) -> Workload:
    """Build a YCSB workload.

    Parameters
    ----------
    mix:
        One of ``"a"``–``"f"`` (case-insensitive).
    record_count, field_bytes:
        Dataset sizing: ``record_count × field_bytes`` bytes of user data.
    concurrency:
        Client threads.
    hot_fraction:
        Share of the data that is hot (working set).
    """
    key = mix.lower().removeprefix("workload").strip() or mix.lower()
    if key not in YCSB_MIXES:
        raise ReproError(f"unknown YCSB mix {mix!r}; expected one of {sorted(YCSB_MIXES)}")
    if record_count < 1 or field_bytes < 1:
        raise ReproError("record_count and field_bytes must be positive")
    if not 0.0 < hot_fraction <= 1.0:
        raise ReproError(f"hot_fraction must be in (0, 1], got {hot_fraction}")
    read_fraction, scan_fraction, skew, commit_sensitivity = YCSB_MIXES[key]
    data_mb = record_count * field_bytes / 1e6
    return Workload(
        name=f"ycsb-{key}",
        read_fraction=read_fraction,
        scan_fraction=scan_fraction,
        data_size_mb=data_mb,
        working_set_mb=max(1.0, data_mb * hot_fraction),
        skew=skew,
        concurrency=concurrency,
        sort_intensity=0.05 if key != "e" else 0.3,
        commit_sensitivity=commit_sensitivity,
        tags=("ycsb", f"ycsb-{key}", "oltp"),
    )
