"""TPC-C order-entry workload as a parametric preset.

TPC-C's five transaction types reduce, for our analytical system models, to
a write-heavy OLTP mix whose data volume grows with the warehouse count
(~85 MB/warehouse fully populated) and whose commit path dominates.
"""

from __future__ import annotations

from ..exceptions import ReproError
from .base import Workload

__all__ = ["tpcc", "TPCC_TX_MIX", "MB_PER_WAREHOUSE"]

#: Standard transaction mix (share of each type).
TPCC_TX_MIX: dict[str, float] = {
    "new_order": 0.45,
    "payment": 0.43,
    "order_status": 0.04,
    "delivery": 0.04,
    "stock_level": 0.04,
}

#: Approximate populated size per warehouse.
MB_PER_WAREHOUSE = 85.0

#: Read share of each transaction type (the rest is write work).
_TX_READ_SHARE: dict[str, float] = {
    "new_order": 0.4,
    "payment": 0.3,
    "order_status": 1.0,
    "delivery": 0.2,
    "stock_level": 1.0,
}

#: Scan share of reads per type (stock-level does range scans).
_TX_SCAN_SHARE: dict[str, float] = {
    "new_order": 0.0,
    "payment": 0.0,
    "order_status": 0.1,
    "delivery": 0.1,
    "stock_level": 0.9,
}


def tpcc(
    warehouses: int = 100,
    terminals_per_warehouse: int = 2,
    tx_mix: dict[str, float] | None = None,
) -> Workload:
    """Build a TPC-C workload for ``warehouses`` warehouses.

    ``tx_mix`` overrides the standard transaction shares (must sum to 1) —
    used by workload-synthesis experiments to reweight the mix.
    """
    if warehouses < 1:
        raise ReproError(f"warehouses must be >= 1, got {warehouses}")
    if terminals_per_warehouse < 1:
        raise ReproError(f"terminals_per_warehouse must be >= 1, got {terminals_per_warehouse}")
    mix = dict(tx_mix) if tx_mix else dict(TPCC_TX_MIX)
    if set(mix) != set(TPCC_TX_MIX):
        raise ReproError(f"tx_mix must cover exactly {sorted(TPCC_TX_MIX)}")
    total = sum(mix.values())
    if total <= 0:
        raise ReproError("tx_mix shares must sum to a positive value")
    mix = {k: v / total for k, v in mix.items()}

    read_fraction = sum(mix[t] * _TX_READ_SHARE[t] for t in mix)
    scans = sum(mix[t] * _TX_READ_SHARE[t] * _TX_SCAN_SHARE[t] for t in mix)
    scan_fraction = scans / read_fraction if read_fraction > 0 else 0.0
    data_mb = warehouses * MB_PER_WAREHOUSE
    return Workload(
        name=f"tpcc-{warehouses}w",
        read_fraction=read_fraction,
        scan_fraction=scan_fraction,
        data_size_mb=data_mb,
        # TPC-C touches most warehouses but skews to a hot district subset.
        working_set_mb=max(1.0, data_mb * 0.4),
        skew=0.6,
        concurrency=warehouses * terminals_per_warehouse,
        sort_intensity=0.1,
        commit_sensitivity=0.9,  # every transaction commits durably
        tags=("tpcc", "oltp"),
    )
