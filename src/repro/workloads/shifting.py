"""Time-varying workloads: phases, gradual drift, diurnal patterns.

Online tuning's central challenge ("Challenge: Workload Shifting" slides):
the workload an agent tunes against keeps changing. A
:class:`WorkloadTrace` maps a time step to the active workload; online
agents and workload-shift detectors consume it step by step.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from ..exceptions import ReproError
from .base import Workload

__all__ = ["WorkloadTrace", "PhasedTrace", "DriftingTrace", "DiurnalTrace"]


class WorkloadTrace(ABC):
    """A workload as a function of (integer) time step."""

    def __init__(self, length: int) -> None:
        if length < 1:
            raise ReproError(f"trace length must be >= 1, got {length}")
        self.length = int(length)

    @abstractmethod
    def at(self, step: int) -> Workload:
        """The workload active at ``step`` (0-based)."""

    def __len__(self) -> int:
        return self.length

    def __iter__(self):
        return (self.at(t) for t in range(self.length))


@dataclass(frozen=True)
class _Phase:
    workload: Workload
    steps: int


class PhasedTrace(WorkloadTrace):
    """Abrupt shifts: run workload A for k steps, then B, then C…

    The classic "they were running TPC-C, but now they're doing something
    else" scenario from the "Deploying Configs Tuned Offline" slide.
    """

    def __init__(self, phases: Sequence[tuple[Workload, int]]) -> None:
        if not phases:
            raise ReproError("need at least one phase")
        self._phases = [_Phase(w, int(s)) for w, s in phases]
        for p in self._phases:
            if p.steps < 1:
                raise ReproError("each phase must last at least one step")
        super().__init__(sum(p.steps for p in self._phases))

    def at(self, step: int) -> Workload:
        if step < 0:
            raise ReproError(f"step must be >= 0, got {step}")
        remaining = min(step, self.length - 1)
        for phase in self._phases:
            if remaining < phase.steps:
                return phase.workload
            remaining -= phase.steps
        return self._phases[-1].workload

    def shift_points(self) -> list[int]:
        """Steps at which the workload changes (for detector ground truth)."""
        points, acc = [], 0
        for phase in self._phases[:-1]:
            acc += phase.steps
            points.append(acc)
        return points


class DriftingTrace(WorkloadTrace):
    """Gradual linear drift from one workload to another."""

    def __init__(self, start: Workload, end: Workload, length: int) -> None:
        super().__init__(length)
        self.start = start
        self.end = end

    def at(self, step: int) -> Workload:
        if step < 0:
            raise ReproError(f"step must be >= 0, got {step}")
        alpha = min(1.0, step / max(1, self.length - 1))
        return self.start.blend(self.end, alpha)


class DiurnalTrace(WorkloadTrace):
    """Sinusoidal day/night load swing around a base workload.

    Concurrency swings by ``amplitude`` (relative) over ``period`` steps;
    the mix shifts slightly read-heavier at the peak (more user traffic).
    """

    def __init__(
        self,
        base: Workload,
        length: int,
        period: int = 24,
        amplitude: float = 0.5,
    ) -> None:
        super().__init__(length)
        if period < 2:
            raise ReproError(f"period must be >= 2, got {period}")
        if not 0.0 <= amplitude < 1.0:
            raise ReproError(f"amplitude must be in [0, 1), got {amplitude}")
        self.base = base
        self.period = int(period)
        self.amplitude = float(amplitude)

    def at(self, step: int) -> Workload:
        if step < 0:
            raise ReproError(f"step must be >= 0, got {step}")
        phase = math.sin(2.0 * math.pi * (step % self.period) / self.period)
        load = 1.0 + self.amplitude * phase
        import dataclasses

        return dataclasses.replace(
            self.base,
            name=f"{self.base.name}@t{step}",
            concurrency=max(1, round(self.base.concurrency * load)),
            read_fraction=min(1.0, self.base.read_fraction * (1.0 + 0.1 * phase)),
        )
