"""Shared resilience primitives: retry backoff and circuit breaking.

The tuning service is a long-running loop over unreliable parts — stores
that hit transient IO errors, a server that sheds load under pressure,
clients that outlive server restarts. Every retry loop in the repository
routes its sleep through one :class:`BackoffPolicy` (full-jitter
exponential backoff, honouring server ``Retry-After`` hints) so overload
never synchronises retry storms, and remote callers wrap their transport
in a :class:`CircuitBreaker` so a dead peer costs a fast failure instead
of a timeout per call.

Both helpers are deterministic given their inputs: the backoff jitter
draws from an injectable ``random.Random`` and the breaker's clock is an
injectable monotonic function, so chaos tests replay exactly.

Static enforcement: rule ``AST105`` (:mod:`repro.staticcheck.astlint`)
flags hand-rolled retry sleeps in ``repro/service/`` that bypass
:meth:`BackoffPolicy.delay`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable

from .exceptions import ReproError
from .telemetry.spans import emit_event

__all__ = [
    "BackoffPolicy",
    "CircuitBreaker",
    "CircuitOpenError",
]

#: Process-wide jitter source used when a caller does not inject its own
#: ``random.Random``. Seeded so sleep schedules are reproducible in tests;
#: jitter needs decorrelation, not entropy.
_JITTER_RNG = random.Random(0x5EED)


@dataclass(frozen=True)
class BackoffPolicy:
    """Full-jitter exponential backoff (the AWS architecture-blog scheme).

    The k-th retry sleeps ``uniform(0, min(cap_s, base_s * multiplier**k))``
    — full jitter decorrelates concurrent retriers, which is exactly what a
    shedding server needs to recover. When the server supplied a
    ``Retry-After`` hint, that hint wins (clamped to ``cap_s``): the server
    knows its own queue better than any client-side curve.
    """

    base_s: float = 0.05
    cap_s: float = 2.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.base_s < 0 or self.cap_s <= 0 or self.multiplier < 1.0:
            raise ReproError(
                "BackoffPolicy needs base_s >= 0, cap_s > 0, multiplier >= 1"
            )

    def ceiling(self, attempt: int) -> float:
        """The jitter window's upper bound for the given 0-based attempt."""
        return min(self.cap_s, self.base_s * self.multiplier ** max(0, int(attempt)))

    def delay(
        self,
        attempt: int,
        rng: random.Random | None = None,
        retry_after: float | None = None,
    ) -> float:
        """Seconds to sleep before retrying ``attempt`` (0-based).

        ``retry_after`` is a server hint (e.g. parsed from an HTTP 429/503
        ``Retry-After`` header); when present it is used verbatim, clamped
        into ``[0, cap_s]``.
        """
        if retry_after is not None:
            return min(max(float(retry_after), 0.0), self.cap_s)
        ceiling = self.ceiling(attempt)
        if ceiling <= 0:
            return 0.0
        return (rng if rng is not None else _JITTER_RNG).random() * ceiling


class CircuitOpenError(ConnectionError, ReproError):
    """The circuit breaker is open: the call was rejected without I/O.

    Subclasses :class:`ConnectionError` so every retry loop that already
    treats connection failures as retryable handles breaker rejections the
    same way — back off and try again once the recovery window passes.
    """


class CircuitBreaker:
    """Per-client circuit breaker with closed / open / half-open states.

    * **closed** — calls flow; ``failure_threshold`` consecutive recorded
      failures trip the breaker open.
    * **open** — :meth:`allow` refuses for ``recovery_s`` seconds (callers
      should raise :class:`CircuitOpenError` and back off).
    * **half-open** — after the recovery window one probe call is let
      through; success closes the breaker, failure re-opens it for another
      window.

    Every state change emits a ``breaker.state_change`` telemetry event, so
    traces show exactly when a client gave up on (and rediscovered) its
    server. Thread-compatible for the asyncio client (single event loop);
    the clock is injectable for deterministic tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_s: float = 1.0,
        name: str = "service",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ReproError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if recovery_s < 0:
            raise ReproError(f"recovery_s must be >= 0, got {recovery_s}")
        self.failure_threshold = int(failure_threshold)
        self.recovery_s = float(recovery_s)
        self.name = name
        self._clock = clock
        self.state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probing = False
        #: Cumulative counters, exposed for metrics absorption.
        self.stats = {"opens": 0, "rejections": 0, "failures": 0, "successes": 0}

    # -- state machine -------------------------------------------------------
    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        previous, self.state = self.state, state
        if state == self.OPEN:
            self.stats["opens"] += 1
            self._opened_at = self._clock()
        emit_event(
            "breaker.state_change",
            severity="warning" if state == self.OPEN else "info",
            message=f"breaker {self.name!r}: {previous} -> {state}",
            breaker=self.name,
            previous=previous,
            state=state,
            consecutive_failures=self._consecutive_failures,
        )

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In the open state this flips to half-open (admitting one probe)
        once the recovery window has elapsed.
        """
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self._clock() - self._opened_at < self.recovery_s:
                self.stats["rejections"] += 1
                return False
            self._transition(self.HALF_OPEN)
            self._probing = True
            return True
        # Half-open: exactly one in-flight probe.
        if self._probing:
            self.stats["rejections"] += 1
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        self.stats["successes"] += 1
        self._consecutive_failures = 0
        self._probing = False
        self._transition(self.CLOSED)

    def record_failure(self) -> None:
        self.stats["failures"] += 1
        self._consecutive_failures += 1
        self._probing = False
        if self.state == self.HALF_OPEN:
            self._transition(self.OPEN)
        elif self.state == self.CLOSED and self._consecutive_failures >= self.failure_threshold:
            self._transition(self.OPEN)

    def reject(self) -> CircuitOpenError:
        """The error to raise when :meth:`allow` refused the call."""
        remaining = max(0.0, self.recovery_s - (self._clock() - self._opened_at))
        return CircuitOpenError(
            f"circuit breaker {self.name!r} is {self.state}; retry in ~{remaining:.2f}s"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircuitBreaker(name={self.name!r}, state={self.state!r})"
