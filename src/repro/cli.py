"""Command-line interface: ``python -m repro <command>``.

Small, scriptable entry points over the library so a tuning run does not
need a Python file:

* ``tune``       — offline-tune a simulated system with a chosen optimizer
* ``compare``    — race several optimizers on the same target
* ``importance`` — rank knob importance from a quick random-search history
* ``game``       — play one autotuner round of the Spark tuning game
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis import LassoImportance, compare_optimizers, format_table
from .core import Objective, TuningSession
from .exceptions import ReproError
from .optimizers import (
    BayesianOptimizer,
    BestConfigOptimizer,
    CMAESOptimizer,
    GridSearchOptimizer,
    ParticleSwarmOptimizer,
    RandomSearchOptimizer,
    SimulatedAnnealingOptimizer,
    SMACOptimizer,
)
from .sysim import CloudEnvironment, NginxServer, RedisServer, SimulatedDBMS, SparkCluster, redis_benchmark_workload, web_workload
from .workloads import tpcc, tpch, ycsb

__all__ = ["main", "build_parser"]

_SYSTEMS = ("dbms", "redis", "nginx", "spark")
_OPTIMIZERS = {
    "random": lambda space, seed, obj: RandomSearchOptimizer(space, obj, seed=seed),
    "grid": lambda space, seed, obj: GridSearchOptimizer(
        space, points_per_dim=4, shuffle=True, objectives=obj, seed=seed
    ),
    "bo": lambda space, seed, obj: BayesianOptimizer(space, objectives=obj, seed=seed, n_candidates=192),
    "smac": lambda space, seed, obj: SMACOptimizer(space, objectives=obj, seed=seed, n_candidates=192),
    "anneal": lambda space, seed, obj: SimulatedAnnealingOptimizer(space, objectives=obj, seed=seed),
    "cmaes": lambda space, seed, obj: CMAESOptimizer(space, objectives=obj, seed=seed),
    "pso": lambda space, seed, obj: ParticleSwarmOptimizer(space, objectives=obj, seed=seed),
    "bestconfig": lambda space, seed, obj: BestConfigOptimizer(space, objectives=obj, seed=seed),
}


def _make_system(name: str, seed: int, noise: float):
    env = CloudEnvironment(seed=seed, transient_noise=noise)
    if name == "dbms":
        return SimulatedDBMS(env=env, seed=seed)
    if name == "redis":
        return RedisServer(env=env, seed=seed)
    if name == "nginx":
        return NginxServer(env=env, seed=seed)
    if name == "spark":
        return SparkCluster(n_nodes=10, env=env, seed=seed)
    raise ReproError(f"unknown system {name!r}; choose from {_SYSTEMS}")


def _make_workload(system: str, name: str):
    if name.startswith("ycsb"):
        return ycsb(name.removeprefix("ycsb-") or "a")
    if name.startswith("tpcc"):
        part = name.removeprefix("tpcc").lstrip("-")
        return tpcc(int(part) if part else 100)
    if name.startswith("tpch"):
        part = name.removeprefix("tpch").lstrip("-")
        return tpch(float(part) if part else 10.0)
    if name == "default":
        return {
            "dbms": tpcc(100),
            "redis": redis_benchmark_workload(),
            "nginx": web_workload(),
            "spark": tpch(10.0, concurrency=4),
        }[system]
    raise ReproError(f"unknown workload {name!r}")


def _objective_for(system: str, metric: str) -> Objective:
    minimize = not metric.startswith("throughput")
    return Objective(metric, minimize=minimize)


def _make_optimizer(name: str, space, seed: int, objective: Objective):
    try:
        factory = _OPTIMIZERS[name]
    except KeyError:
        raise ReproError(f"unknown optimizer {name!r}; choose from {sorted(_OPTIMIZERS)}") from None
    return factory(space, seed, objective)


# -- commands -----------------------------------------------------------------

def _cmd_tune(args: argparse.Namespace) -> int:
    system = _make_system(args.system, args.seed, args.noise)
    workload = _make_workload(args.system, args.workload)
    objective = _objective_for(args.system, args.metric)
    default = system.run(workload, config=system.space.default_configuration()).metric(args.metric)
    optimizer = _make_optimizer(args.optimizer, system.space, args.seed, objective)
    result = TuningSession(
        optimizer, system.evaluator(workload, args.metric), max_trials=args.trials
    ).run()
    print(format_table(
        ["", args.metric],
        [("default", default), ("tuned", result.best_value)],
        title=f"tune {args.system}/{workload.name} with {args.optimizer} ({args.trials} trials)",
    ))
    print("\nbest configuration:")
    for name in system.space.names:
        print(f"  {name} = {result.best_config[name]}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    objective = _objective_for(args.system, args.metric)

    def evaluator_factory(seed):
        system = _make_system(args.system, seed, args.noise)
        workload = _make_workload(args.system, args.workload)
        return system.evaluator(workload, args.metric)

    factories = {}
    for name in args.optimizers.split(","):
        name = name.strip()

        def factory(seed, _name=name):
            space = _make_system(args.system, seed, args.noise).space
            return _make_optimizer(_name, space, seed, objective)

        factories[name] = factory
    results = compare_optimizers(factories, evaluator_factory, max_trials=args.trials, n_seeds=args.seeds)
    rows = [(name, comp.mean_best()) for name, comp in results.items()]
    print(format_table(
        ["optimizer", f"mean best {args.metric}"],
        rows,
        title=f"compare on {args.system}/{args.workload}, {args.trials} trials x {args.seeds} seeds",
    ))
    return 0


def _cmd_importance(args: argparse.Namespace) -> int:
    system = _make_system(args.system, args.seed, args.noise)
    workload = _make_workload(args.system, args.workload)
    objective = _objective_for(args.system, args.metric)
    optimizer = RandomSearchOptimizer(system.space, objective, seed=args.seed)
    TuningSession(
        optimizer, system.evaluator(workload, args.metric), max_trials=args.trials
    ).run()
    ranking = LassoImportance(system.space).rank(optimizer.history)
    rows = [(i + 1, k, s) for i, (k, s) in enumerate(zip(ranking.knobs, ranking.scores))]
    print(format_table(
        ["rank", "knob", "score"],
        rows[: args.top],
        title=f"knob importance on {args.system}/{workload.name} ({args.trials} trials)",
    ))
    return 0


def _cmd_game(args: argparse.Namespace) -> int:
    spark = SparkCluster(n_nodes=10, env=CloudEnvironment(seed=args.seed, transient_noise=args.noise), seed=args.seed)
    evaluate = spark.q1_game_evaluator(scale_factor=args.scale_factor)
    default, _ = evaluate(spark.space.default_configuration())
    objective = Objective("runtime_s", minimize=True)
    optimizer = _make_optimizer(args.optimizer, spark.space, args.seed, objective)

    def wrapped(config):
        value, cost = evaluate(config)
        return {"runtime_s": value}, cost

    result = TuningSession(optimizer, wrapped, max_trials=args.tries).run()
    print(format_table(
        ["player", "Q1 runtime (s)"],
        [("defaults", default), (args.optimizer, result.best_value)],
        title=f"spark tuning game, SF{args.scale_factor:g}, {args.tries} tries",
    ))
    return 0


# -- parser ---------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--system", choices=_SYSTEMS, default="dbms")
        p.add_argument("--workload", default="default",
                       help="ycsb-a..f | tpcc[-N] | tpch[-SF] | default")
        p.add_argument("--metric", default="throughput",
                       help="throughput | latency_avg | latency_p95 | ...")
        p.add_argument("--trials", type=int, default=30)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--noise", type=float, default=0.03)

    p = sub.add_parser("tune", help="offline-tune one system")
    common(p)
    p.add_argument("--optimizer", choices=sorted(_OPTIMIZERS), default="bo")
    p.set_defaults(func=_cmd_tune)

    p = sub.add_parser("compare", help="race several optimizers")
    common(p)
    p.add_argument("--optimizers", default="random,bo,smac",
                   help="comma-separated optimizer names")
    p.add_argument("--seeds", type=int, default=2)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("importance", help="rank knob importance")
    common(p)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=_cmd_importance)

    p = sub.add_parser("game", help="play the Spark tuning game")
    p.add_argument("--optimizer", choices=sorted(_OPTIMIZERS), default="bo")
    p.add_argument("--tries", type=int, default=100)
    p.add_argument("--scale-factor", type=float, default=10.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--noise", type=float, default=0.03)
    p.set_defaults(func=_cmd_game)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
