"""Command-line interface: ``python -m repro <command>``.

Small, scriptable entry points over the library so a tuning run does not
need a Python file:

* ``tune``       — offline-tune a simulated system with a chosen optimizer
* ``compare``    — race several optimizers on the same target
* ``importance`` — rank knob importance from a quick random-search history
* ``game``       — play one autotuner round of the Spark tuning game
* ``trace``      — analyze a trace written by ``tune``/``compare --trace-out``
* ``serve``      — run the durable multi-session tuning service (HTTP)
* ``replay``     — re-execute a journaled session and verify it bit-exactly
  against its journal (provenance-driven deterministic replay)
* ``lint``       — static analysis: ``lint code`` (AST invariants over
  source trees) and ``lint space`` (configuration-space lint of
  registered target systems); see ``docs/static-analysis.md``

``tune`` and ``compare`` accept ``--trace-out FILE`` (full session trace:
trial spans with nested operation spans, events, metrics — feed it to
``repro trace``) and ``--metrics-out FILE`` (metrics registry only;
``.prom``/``.txt`` → Prometheus text exposition, otherwise JSON).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .analysis import LassoImportance, compare_optimizers, format_table
from .core import Objective, TuningSession
from .core.manager import make_optimizer, optimizer_names
from .exceptions import ReproError
from .targets import SYSTEMS as _SYSTEMS
from .targets import make_system as _targets_make_system
from .targets import make_workload as _make_workload
from .targets import objective_for
from .telemetry import SessionTrace, TelemetryCallback, export_chrome_trace
from .telemetry.analyzer import format_report, load_trace
from .sysim import CloudEnvironment, SparkCluster

__all__ = ["main", "build_parser"]

#: Options the CLI bakes into its optimizer specs (matching historic behavior).
_OPTIMIZER_OPTIONS = {
    "grid": {"points_per_dim": 4, "shuffle": True},
    "bo": {"n_candidates": 192},
    "smac": {"n_candidates": 192},
}


def _make_system(name: str, seed: int, noise: float):
    return _targets_make_system(name, seed=seed, noise=noise)


def _objective_for(system: str, metric: str) -> Objective:
    return objective_for(metric)


def _make_optimizer(name: str, space, seed: int, objective: Objective):
    return make_optimizer(name, space, objective, seed=seed, options=_OPTIMIZER_OPTIONS.get(name))


# -- commands -----------------------------------------------------------------

def _summary_line(trace: SessionTrace) -> str:
    """One-line session digest printed after ``tune``/``compare``."""
    s = trace.summary()
    best = s.get("best_value")
    best_txt = f"{best:.6g}" if isinstance(best, float) else "n/a"
    return (
        f"telemetry: {s['trials']} trials, best={best_txt}, "
        f"p95 trial={s['p95_trial_s'] * 1e3:.1f}ms, "
        f"p95 suggest={s['p95_suggest_s'] * 1e3:.1f}ms, "
        f"{s['events']} events"
    )


def _cmd_tune(args: argparse.Namespace) -> int:
    system = _make_system(args.system, args.seed, args.noise)
    workload = _make_workload(args.system, args.workload)
    objective = _objective_for(args.system, args.metric)
    default = system.run(workload, config=system.space.default_configuration()).metric(args.metric)
    optimizer = _make_optimizer(args.optimizer, system.space, args.seed, objective)
    telemetry = TelemetryCallback(
        export_path=args.trace_out,
        metrics_path=args.metrics_out,
        span_attributes={"optimizer": args.optimizer, "seed": args.seed},
    )
    result = TuningSession(
        optimizer, system.evaluator(workload, args.metric), max_trials=args.trials,
        callbacks=[telemetry],
    ).run()
    print(format_table(
        ["", args.metric],
        [("default", default), ("tuned", result.best_value)],
        title=f"tune {args.system}/{workload.name} with {args.optimizer} ({args.trials} trials)",
    ))
    print("\nbest configuration:")
    for name in system.space.names:
        print(f"  {name} = {result.best_config[name]}")
    print("\n" + _summary_line(telemetry.trace))
    if args.trace_out:
        print(f"trace written to {args.trace_out} (analyze with: repro trace {args.trace_out})")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    objective = _objective_for(args.system, args.metric)

    def evaluator_factory(seed):
        system = _make_system(args.system, seed, args.noise)
        workload = _make_workload(args.system, args.workload)
        return system.evaluator(workload, args.metric)

    factories = {}
    for name in args.optimizers.split(","):
        name = name.strip()

        def factory(seed, _name=name):
            space = _make_system(args.system, seed, args.noise).space
            return _make_optimizer(_name, space, seed, objective)

        factories[name] = factory

    # One trace per (optimizer, seed) leg; exported together as a bundle
    # that ``repro trace`` understands.
    runs: list[tuple[str, int, SessionTrace]] = []

    def callbacks_factory(name, seed):
        trace = SessionTrace(name=f"{name}/seed{seed}")
        runs.append((name, seed, trace))
        return [TelemetryCallback(trace=trace, span_attributes={"optimizer": name, "seed": seed})]

    results = compare_optimizers(
        factories, evaluator_factory, max_trials=args.trials, n_seeds=args.seeds,
        callbacks_factory=callbacks_factory,
    )
    rows = [(name, comp.mean_best()) for name, comp in results.items()]
    print(format_table(
        ["optimizer", f"mean best {args.metric}"],
        rows,
        title=f"compare on {args.system}/{args.workload}, {args.trials} trials x {args.seeds} seeds",
    ))
    for name, seed, trace in runs:
        print(f"  {name}/seed{seed}: " + _summary_line(trace))
    if args.trace_out:
        bundle = {
            "kind": "compare",
            "runs": [
                {"optimizer": name, "seed": seed, "trace": trace.to_dict()}
                for name, seed, trace in runs
            ],
        }
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            json.dump(bundle, fh, indent=2, default=str)
        print(f"trace bundle written to {args.trace_out} (analyze with: repro trace {args.trace_out})")
    if args.metrics_out:
        merged = SessionTrace(name="compare").metrics
        for _, _, trace in runs:
            merged.merge(trace.metrics)
        merged.write(args.metrics_out)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    data = load_trace(args.file)
    print(format_report(data, top=args.top, show_events=args.events))
    if args.chrome:
        if "runs" in data and "spans" not in data:
            raise ReproError(
                "--chrome needs a single-session trace; compare bundles hold several"
            )
        export_chrome_trace(data, args.chrome)
        print(f"\nchrome trace written to {args.chrome} (open in ui.perfetto.dev)")
    return 0


def _cmd_importance(args: argparse.Namespace) -> int:
    system = _make_system(args.system, args.seed, args.noise)
    workload = _make_workload(args.system, args.workload)
    objective = _objective_for(args.system, args.metric)
    optimizer = make_optimizer("random", system.space, objective, seed=args.seed)
    telemetry = TelemetryCallback(
        export_path=args.trace_out, metrics_path=args.metrics_out,
        span_attributes={"optimizer": "random", "seed": args.seed},
    )
    TuningSession(
        optimizer, system.evaluator(workload, args.metric), max_trials=args.trials,
        callbacks=[telemetry],
    ).run()
    ranking = LassoImportance(system.space).rank(optimizer.history)
    rows = [(i + 1, k, s) for i, (k, s) in enumerate(zip(ranking.knobs, ranking.scores))]
    print(format_table(
        ["rank", "knob", "score"],
        rows[: args.top],
        title=f"knob importance on {args.system}/{workload.name} ({args.trials} trials)",
    ))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the durable multi-session tuning service until interrupted."""
    import asyncio
    import contextlib
    import signal

    from .service.server import serve

    def _ready(server) -> None:
        print(f"listening on {server.address}", flush=True)
        print(f"store: {args.store}", flush=True)

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        task = asyncio.ensure_future(
            serve(
                args.store,
                host=args.host,
                port=args.port,
                backend=args.backend,
                step_workers=args.step_workers,
                ready=_ready,
            )
        )
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):  # pragma: no cover
                loop.add_signal_handler(sig, task.cancel)
        with contextlib.suppress(asyncio.CancelledError):
            await task

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # fallback when signal handlers are unavailable
        pass
    print("service shut down cleanly", flush=True)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    """Re-execute a journaled session and verify it against the journal."""
    from .core.manager import SessionManager
    from .core.stores import open_store

    with SessionManager(open_store(args.store, backend=args.backend)) as manager:
        report = manager.replay_session(args.session_id)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format())
    return 0 if report.ok else 1


def _cmd_lint_code(args: argparse.Namespace) -> int:
    """AST-lint source paths with the repro invariant checkers."""
    from .staticcheck import lint_paths

    report = lint_paths(args.paths)
    if report.clean and not report.suppressed:
        print(f"lint {report.target}: {report.summary()}")
    else:
        print(report.format(show_suppressed=True))
    return 1 if report.errors or (args.strict_warnings and report.warnings) else 0


def _cmd_lint_space(args: argparse.Namespace) -> int:
    """Space-lint registered target systems (all of them by default)."""
    from .staticcheck import lint_space

    names = [args.system] if args.system else list(_SYSTEMS)
    failed = False
    for name in names:
        system = _make_system(name, seed=0, noise=0.0)
        report = lint_space(system.space, ignore=args.ignore)
        if report.clean and not report.suppressed:
            print(f"lint {report.target}: {report.summary()}")
        else:
            print(report.format(show_suppressed=True))
        failed = failed or bool(report.errors) or (args.strict_warnings and bool(report.warnings))
    return 1 if failed else 0


def _cmd_game(args: argparse.Namespace) -> int:
    spark = SparkCluster(n_nodes=10, env=CloudEnvironment(seed=args.seed, transient_noise=args.noise), seed=args.seed)
    evaluate = spark.q1_game_evaluator(scale_factor=args.scale_factor)
    default, _ = evaluate(spark.space.default_configuration())
    objective = Objective("runtime_s", minimize=True)
    optimizer = _make_optimizer(args.optimizer, spark.space, args.seed, objective)

    def wrapped(config):
        value, cost = evaluate(config)
        return {"runtime_s": value}, cost

    result = TuningSession(optimizer, wrapped, max_trials=args.tries).run()
    print(format_table(
        ["player", "Q1 runtime (s)"],
        [("defaults", default), (args.optimizer, result.best_value)],
        title=f"spark tuning game, SF{args.scale_factor:g}, {args.tries} tries",
    ))
    return 0


# -- parser ---------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--system", choices=_SYSTEMS, default="dbms")
        p.add_argument("--workload", default="default",
                       help="ycsb-a..f | tpcc[-N] | tpch[-SF] | default")
        p.add_argument("--metric", default="throughput",
                       help="throughput | latency_avg | latency_p95 | ...")
        p.add_argument("--trials", type=int, default=30)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--noise", type=float, default=0.03)
        p.add_argument("--trace-out", default=None, metavar="FILE",
                       help="write the full session trace (JSON) here")
        p.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write metrics here (.prom/.txt = Prometheus text, else JSON)")

    p = sub.add_parser("tune", help="offline-tune one system")
    common(p)
    p.add_argument("--optimizer", choices=optimizer_names(), default="bo")
    p.set_defaults(func=_cmd_tune)

    p = sub.add_parser("compare", help="race several optimizers")
    common(p)
    p.add_argument("--optimizers", default="random,bo,smac",
                   help="comma-separated optimizer names")
    p.add_argument("--seeds", type=int, default=2)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("importance", help="rank knob importance")
    common(p)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=_cmd_importance)

    p = sub.add_parser("trace", help="analyze a trace file written by --trace-out")
    p.add_argument("file", help="trace JSON (single session or compare bundle)")
    p.add_argument("--top", type=int, default=5, help="slowest trials to list")
    p.add_argument("--events", action="store_true", help="print the full event log")
    p.add_argument("--chrome", default=None, metavar="OUT",
                   help="also convert to Chrome trace-event JSON (Perfetto)")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("serve", help="run the durable tuning service (HTTP)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765, help="0 = pick a free port")
    p.add_argument("--store", default="tuning-store",
                   help="store path: directory (JSON journal) or *.sqlite file")
    p.add_argument("--backend", choices=("json", "sqlite"), default=None,
                   help="force a backend (default: inferred from --store path)")
    p.add_argument("--step-workers", type=int, default=4,
                   help="thread pool size for server-side /step evaluation")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("replay", help="re-execute a journaled session and verify it bit-exactly")
    p.add_argument("session_id", help="session to replay (see 'GET /sessions' or the store)")
    p.add_argument("--store", required=True,
                   help="store path: directory (JSON journal) or *.sqlite file")
    p.add_argument("--backend", choices=("json", "sqlite"), default=None,
                   help="force a backend (default: inferred from --store path)")
    p.add_argument("--json", action="store_true", help="print the report as JSON")
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser("lint", help="static analysis: AST invariants and space lint")
    lint_sub = p.add_subparsers(dest="lint_command", required=True)

    pc = lint_sub.add_parser("code", help="AST-lint source trees (same checks as CI)")
    pc.add_argument("paths", nargs="*", default=["src"],
                    help="files or directories to lint (default: src)")
    pc.add_argument("--strict-warnings", action="store_true",
                    help="exit nonzero on warnings too, not only errors")
    pc.set_defaults(func=_cmd_lint_code)

    ps = lint_sub.add_parser("space", help="lint registered target-system spaces")
    ps.add_argument("--system", choices=_SYSTEMS, default=None,
                    help="lint one system's space (default: all)")
    ps.add_argument("--ignore", action="append", default=[], metavar="RULE",
                    help="suppress a rule id (repeatable), e.g. --ignore SP402")
    ps.add_argument("--strict-warnings", action="store_true",
                    help="exit nonzero on warnings too, not only errors")
    ps.set_defaults(func=_cmd_lint_space)

    p = sub.add_parser("game", help="play the Spark tuning game")
    p.add_argument("--optimizer", choices=optimizer_names(), default="bo")
    p.add_argument("--tries", type=int, default=100)
    p.add_argument("--scale-factor", type=float, default=10.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--noise", type=float, default=0.03)
    p.set_defaults(func=_cmd_game)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
