"""Contextual Bayesian optimization — the OnlineTune pattern (slide 82).

"OnlineTune: dynamically adapts to workload changes by embedding contextual
features (e.g. data size, query plans) into a Bayesian Optimization
framework." The GP's input is the concatenation of the *observation/context*
vector and the encoded configuration, so one model shares strength across
workload phases and proposals condition on the current context.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import OptimizerError
from ..optimizers.acquisition import AcquisitionFunction, ExpectedImprovement
from ..optimizers.gp import GaussianProcessRegressor, default_kernel
from ..space import Configuration, ConfigurationSpace
from ..space.encoding import OrdinalEncoder
from .agent import OnlinePolicy

__all__ = ["ContextualBOTuner", "StaticConfigPolicy"]


class StaticConfigPolicy(OnlinePolicy):
    """Baseline: always apply one fixed configuration (offline-tuned or default)."""

    def __init__(self, config: Configuration) -> None:
        self.config = config

    def propose(self, observation: np.ndarray) -> Configuration:
        return self.config

    def feedback(self, observation: np.ndarray, config: Configuration, reward: float) -> None:
        pass  # nothing to learn


class ContextualBOTuner(OnlinePolicy):
    """GP over (context ⊕ config) with EI conditioned on the live context.

    Safety comes from trust-region candidates around the best configuration
    seen *in similar contexts*, plus an exploration budget ε of bolder moves.

    Parameters
    ----------
    n_init:
        Random-ish steps before the model activates.
    trust_radius:
        Neighbourhood scale of candidate generation (OnlineTune's subspace
        iteration).
    explore_prob:
        Probability of proposing a global random candidate set instead of
        the trust region.
    max_history:
        GP training window (keeps fitting O(window³) online).
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        n_init: int = 6,
        n_candidates: int = 128,
        trust_radius: float = 0.15,
        explore_prob: float = 0.10,
        max_history: int = 120,
        acquisition: AcquisitionFunction | None = None,
        seed: int | None = None,
    ) -> None:
        if n_init < 1:
            raise OptimizerError(f"n_init must be >= 1, got {n_init}")
        self.space = space
        self.encoder = OrdinalEncoder(space)
        self.n_init = int(n_init)
        self.n_candidates = int(n_candidates)
        self.trust_radius = float(trust_radius)
        self.explore_prob = float(explore_prob)
        self.max_history = int(max_history)
        self.acquisition = acquisition if acquisition is not None else ExpectedImprovement()
        self.rng = np.random.default_rng(seed)
        self._X: list[np.ndarray] = []  # context ⊕ config rows
        self._rewards: list[float] = []
        self._configs: list[Configuration] = []
        self._model: GaussianProcessRegressor | None = None
        self._steps = 0

    def _row(self, observation: np.ndarray, config: Configuration) -> np.ndarray:
        return np.concatenate([np.asarray(observation, dtype=float).ravel(), self.encoder.encode(config)])

    def _best_config(self, observation: np.ndarray | None = None) -> Configuration:
        """Best configuration seen — in *similar contexts* when one is given.

        The optimum moves with the workload, so the trust region must anchor
        on what worked for contexts like the current one, not globally.
        """
        rewards = np.asarray(self._rewards)
        if observation is not None and len(self._X) > 2:
            obs = np.asarray(observation, dtype=float).ravel()
            ctx = np.stack([row[: len(obs)] for row in self._X])
            dists = np.linalg.norm(ctx - obs, axis=1)
            # Nearest ~30% of contexts (ties included): tight enough that a
            # binary context does not collapse to the global best.
            near = dists <= np.quantile(dists, 0.3)
            if near.sum() >= 1:
                idx = np.flatnonzero(near)
                return self._configs[int(idx[np.argmax(rewards[near])])]
        return self._configs[int(np.argmax(rewards))]

    def propose(self, observation: np.ndarray) -> Configuration:
        self._steps += 1
        if len(self._rewards) < self.n_init:
            base = self.space.default_configuration()
            return self.space.neighbor(base, self.rng, scale=0.1)
        if self._model is None:
            self._fit()
        if self.rng.random() < self.explore_prob:
            cands = [self.space.sample(self.rng) for _ in range(self.n_candidates)]
        else:
            best = self._best_config(observation)
            cands = [best] + [
                self.space.neighbor(best, self.rng, scale=float(self.rng.uniform(0.02, self.trust_radius)))
                for _ in range(self.n_candidates - 1)
            ]
        rows = np.stack([self._row(observation, c) for c in cands])
        mean, std = self._model.predict(rows, return_std=True)
        # The GP models rewards (higher better): negate into minimize scores.
        scores = self.acquisition(-mean, std, -float(np.max(self._rewards)))
        return cands[int(np.argmax(scores))]

    def _fit(self) -> None:
        X = np.stack(self._X[-self.max_history:])
        y = np.array(self._rewards[-self.max_history:])
        self._model = GaussianProcessRegressor(kernel=default_kernel(X.shape[1]), seed=0)
        self._model.fit(X, y)

    def feedback(self, observation: np.ndarray, config: Configuration, reward: float) -> None:
        self._X.append(self._row(observation, config))
        self._rewards.append(float(reward))
        self._configs.append(config)
        # Refit lazily but not every step: fitting cost grows cubically.
        if len(self._rewards) >= self.n_init and (self._model is None or self._steps % 5 == 0):
            self._fit()
