"""The online tuning loop: an agent observing and adjusting production.

"Use an 'agent' to continually observe and adjust the system" (deployment
slide). The agent architecture follows slide 78: an **external** side-car
that monitors the target and applies actions through its exposed hooks;
policies are pluggable (RL, GA, bandits — :mod:`repro.online`).

Each step: read the current workload from a trace, let the policy propose a
configuration, run the system, convert the measured metric into a reward,
feed it back, and let the guardrail veto/rollback regressions.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..core import Objective
from ..exceptions import ReproError, SystemCrashError
from ..telemetry.spans import emit_event, span, trial_scope
from ..space import Configuration
from ..sysim.system import SimulatedSystem
from ..workloads import WorkloadTrace
from .safety import Guardrail

__all__ = ["OnlinePolicy", "OnlineTuningAgent", "OnlineStepRecord", "OnlineResult"]


class OnlinePolicy(ABC):
    """A policy that proposes configurations and learns from rewards."""

    @abstractmethod
    def propose(self, observation: np.ndarray) -> Configuration:
        """Next configuration given the current observation vector."""

    @abstractmethod
    def feedback(self, observation: np.ndarray, config: Configuration, reward: float) -> None:
        """Learn from the reward of the configuration just applied.

        Rewards are normalised "higher is better" values.
        """

    def as_optimizer(self, space, objectives=None, observation_fn=None, seed=None):
        """Expose this policy behind the offline ``suggest(n)``/``observe``
        protocol, so sessions, executors, and telemetry can drive it.

        See :class:`repro.online.adapters.OnlinePolicyOptimizer`.
        """
        from .adapters import OnlinePolicyOptimizer  # deferred: avoids a circular import

        return OnlinePolicyOptimizer(
            space, self, objectives=objectives, observation_fn=observation_fn, seed=seed
        )


@dataclass
class OnlineStepRecord:
    """One step of the online loop."""

    step: int
    workload_name: str
    config: Configuration
    value: float  # raw objective metric
    reward: float
    crashed: bool = False
    rolled_back: bool = False


@dataclass
class OnlineResult:
    """Full trace of an online tuning run."""

    records: list[OnlineStepRecord] = field(default_factory=list)

    def values(self) -> np.ndarray:
        return np.array([r.value for r in self.records])

    def cumulative_regret(self, oracle_values: np.ndarray, minimize: bool = True) -> np.ndarray:
        """Cumulative regret against per-step oracle values."""
        values = self.values()
        if len(oracle_values) != len(values):
            raise ReproError("oracle series length mismatch")
        inst = values - oracle_values if minimize else oracle_values - values
        return np.cumsum(np.maximum(inst, 0.0))

    def regression_steps(self, baseline_values: np.ndarray, tolerance: float = 0.1, minimize: bool = True) -> int:
        """How many steps performed worse than baseline by > tolerance.

        The guardrail quality metric of slide 84.
        """
        values = self.values()
        if len(baseline_values) != len(values):
            raise ReproError("baseline series length mismatch")
        if minimize:
            return int(np.sum(values > baseline_values * (1.0 + tolerance)))
        return int(np.sum(values < baseline_values * (1.0 - tolerance)))


class OnlineTuningAgent:
    """Drives an :class:`OnlinePolicy` against a system and workload trace.

    Parameters
    ----------
    system:
        The production system (simulated).
    policy:
        The learning policy.
    objective:
        Metric and direction; rewards are its negated, scale-normalised score.
    guardrail:
        Optional safety monitor; on violation the agent rolls back to the
        last safe configuration and penalises the policy.
    observe:
        Maps (workload, last measurement metrics) to the observation vector
        the policy sees. Defaults to observable load features only — the
        agent cannot read the workload's ground truth.
    trace:
        Optional :class:`~repro.telemetry.SessionTrace`; when given, the
        agent records one span per step (outcome, wall-clock, reward) plus
        crash/rollback counters — the online twin of the session telemetry.
    """

    def __init__(
        self,
        system: SimulatedSystem,
        policy: OnlinePolicy,
        objective: Objective,
        guardrail: Guardrail | None = None,
        duration_s: float = 60.0,
        observe=None,
        trace=None,
    ) -> None:
        self.system = system
        self.policy = policy
        self.objective = objective
        self.guardrail = guardrail
        self.duration_s = duration_s
        self._observe = observe if observe is not None else self._default_observation
        self._last_metrics: dict[str, float] = {}
        self._safe_config = system.current_config
        self._reward_scale: float | None = None
        self.trace = trace

    @staticmethod
    def _default_observation(workload, last_metrics: dict[str, float]) -> np.ndarray:
        return np.array(
            [
                np.log10(workload.concurrency + 1.0) / 3.0,
                workload.read_fraction,
                workload.scan_fraction,
                last_metrics.get("cpu_util", 0.0),
                last_metrics.get("mem_util", 0.0),
                last_metrics.get("io_util", 0.0),
            ]
        )

    def _reward(self, value: float) -> float:
        """Delta-performance reward (the CDBTune convention).

        Positive when the step beat the recent average, negative when it
        regressed — an informative, scale-free signal even when the raw
        metric drifts with the workload.
        """
        score = self.objective.score(value)
        if self._reward_scale is None:
            self._reward_scale = score
            return 0.0
        ema = self._reward_scale
        reward = float(np.clip((ema - score) / (abs(ema) + 1e-12), -2.0, 2.0))
        self._reward_scale = 0.9 * ema + 0.1 * score
        return reward

    def run(self, trace: WorkloadTrace) -> OnlineResult:
        from contextlib import nullcontext

        result = OnlineResult()
        # Activate the attached telemetry trace (if any) so policy/system
        # spans and guardrail/crash events land in it, scoped per step.
        activation = self.trace.activated() if hasattr(self.trace, "activated") else nullcontext()
        with activation:
            for step in range(len(trace)):
                with trial_scope() as ref:
                    if ref is not None:
                        ref.trial_id = step  # online steps have stable ids up front
                    workload = trace.at(step)
                    obs = self._observe(workload, self._last_metrics)
                    step_started = time.perf_counter()
                    with span("policy.propose"):
                        config = self.policy.propose(obs)
                    propose_s = time.perf_counter() - step_started
                    crashed = rolled_back = False
                    try:
                        with span("system.run", workload=workload.name):
                            measurement = self.system.run(workload, duration_s=self.duration_s, config=config)
                        value = measurement.metric(self.objective.name)
                        self._last_metrics = measurement.metrics()
                    except SystemCrashError as exc:
                        crashed = True
                        emit_event(
                            "agent.crash", severity="error", message=str(exc),
                            step=step, workload=workload.name,
                        )
                        # Production pain: a crash step delivers the worst value seen.
                        prior = [r.value for r in result.records if not r.crashed]
                        value = (
                            max(prior) if self.objective.minimize else min(prior)
                        ) if prior else (1e6 if self.objective.minimize else 0.0)
                        self.system.apply(self._safe_config)
                    # A crash gets a flat, strongly negative reward: the policy must
                    # learn the region is off-limits regardless of the metric scale.
                    reward = -2.0 if crashed else self._reward(value)
                    if self.guardrail is not None and not crashed:
                        verdict = self.guardrail.check(self.objective.score(value))
                        if verdict.violated:
                            self.system.apply(self._safe_config)
                            rolled_back = True
                            reward -= verdict.penalty
                            emit_event(
                                "agent.rollback", severity="warning",
                                message="guardrail violation: reverted to last safe configuration",
                                step=step, workload=workload.name, value=float(value),
                            )
                        elif verdict.is_safe_point:
                            self._safe_config = config
                    self.policy.feedback(obs, config, reward)
                    self._record_span(step, workload.name, value, reward, propose_s, step_started, crashed, rolled_back)
                    result.records.append(
                        OnlineStepRecord(step, workload.name, config, float(value), float(reward), crashed, rolled_back)
                    )
        if self.trace is not None:
            self.trace.gauge("steps.total", float(len(result.records)))
        return result

    def _record_span(
        self,
        step: int,
        workload_name: str,
        value: float,
        reward: float,
        propose_s: float,
        step_started: float,
        crashed: bool,
        rolled_back: bool,
    ) -> None:
        """Record one online step into the telemetry trace, if attached."""
        if self.trace is None:
            return
        from ..telemetry import TrialSpan  # deferred: online must not hard-depend on telemetry

        now = self.trace.clock()
        step_s = time.perf_counter() - step_started
        outcome = "crash" if crashed else ("rollback" if rolled_back else "success")
        record = TrialSpan(
            trial_id=step,
            status="failed" if crashed else "succeeded",
            outcome=outcome,
            started_s=now - step_s,
            ended_s=now,
            suggest_latency_s=propose_s,
            evaluate_s=step_s - propose_s,
            cost=self.duration_s,
            attributes={"workload": workload_name, "value": float(value), "reward": float(reward)},
        )
        record.ended_at = time.time()
        record.started_at = record.ended_at - step_s
        self.trace.add_span(record)
        self.trace.incr("steps.total")
        if crashed:
            self.trace.incr("steps.crashes")
        if rolled_back:
            self.trace.incr("steps.rollbacks")
        observe = getattr(self.trace, "observe", None)
        if observe is not None:
            observe("step.seconds", step_s)
            observe("propose.seconds", propose_s)
