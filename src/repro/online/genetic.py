"""Genetic-algorithm tuning (HUNTER's engine, slide 81).

A steady population of configurations evolves by tournament selection,
uniform crossover, and neighbourhood mutation. Usable two ways:

* as a plain ask/tell :class:`GeneticAlgorithmOptimizer` (offline), and
* as an :class:`OnlinePolicy` (:class:`GeneticOnlineTuner`) that evaluates
  one individual per production step — HUNTER's hybrid pattern of trying
  candidates on cloned instances maps to evaluating them on successive
  steps here.
"""

from __future__ import annotations

import numpy as np

from ..core import Objective, Optimizer, Trial
from ..exceptions import OptimizerError
from ..space import Configuration, ConfigurationSpace
from .agent import OnlinePolicy

__all__ = ["GeneticAlgorithmOptimizer", "GeneticOnlineTuner"]


class GeneticAlgorithmOptimizer(Optimizer):
    """Generational GA over configurations.

    Parameters
    ----------
    population_size:
        Individuals per generation.
    elite_fraction:
        Top fraction copied unchanged into the next generation.
    mutation_rate:
        Per-individual probability of a mutation after crossover.
    tournament:
        Tournament size for parent selection.
    """

    #: Observations are matched to suggestions by queue order, so
    #: foreign observations would corrupt the population state.
    accepts_foreign_observations = False

    def __init__(
        self,
        space: ConfigurationSpace,
        population_size: int = 12,
        elite_fraction: float = 0.25,
        mutation_rate: float = 0.3,
        mutation_scale: float = 0.15,
        tournament: int = 3,
        objectives: Objective | list[Objective] | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(space, objectives, seed=seed)
        if population_size < 4:
            raise OptimizerError(f"population_size must be >= 4, got {population_size}")
        if not 0.0 < elite_fraction < 1.0:
            raise OptimizerError(f"elite_fraction must be in (0, 1), got {elite_fraction}")
        if not 0.0 <= mutation_rate <= 1.0:
            raise OptimizerError(f"mutation_rate must be in [0, 1], got {mutation_rate}")
        self.population_size = int(population_size)
        self.elite_fraction = float(elite_fraction)
        self.mutation_rate = float(mutation_rate)
        self.mutation_scale = float(mutation_scale)
        self.tournament = max(2, int(tournament))
        self._population: list[Configuration] = [space.sample(self.rng) for _ in range(self.population_size)]
        self._scores: list[float | None] = [None] * self.population_size
        self._cursor = 0
        self._pending: list[int] = []
        self.generation = 0

    # -- genetic operators -----------------------------------------------------
    def _crossover(self, a: Configuration, b: Configuration) -> Configuration:
        values = {}
        for name in self.space.names:
            values[name] = a[name] if self.rng.random() < 0.5 else b[name]
        try:
            return self.space.make(values)
        except Exception:
            return a  # infeasible child: keep a parent

    def _mutate(self, config: Configuration) -> Configuration:
        if self.rng.random() >= self.mutation_rate:
            return config
        return self.space.neighbor(config, self.rng, scale=self.mutation_scale)

    def _tournament_pick(self, scored: list[tuple[float, Configuration]]) -> Configuration:
        contenders = [scored[int(self.rng.integers(len(scored)))] for _ in range(self.tournament)]
        return min(contenders)[1]

    def _evolve(self) -> None:
        scored = sorted(
            [(s, c) for s, c in zip(self._scores, self._population) if s is not None],
            key=lambda pair: pair[0],
        )
        if len(scored) < 2:
            return
        n_elite = max(1, int(self.population_size * self.elite_fraction))
        next_pop = [c for _, c in scored[:n_elite]]
        while len(next_pop) < self.population_size:
            child = self._crossover(self._tournament_pick(scored), self._tournament_pick(scored))
            next_pop.append(self._mutate(child))
        self._population = next_pop
        self._scores = [None] * self.population_size
        self._cursor = 0
        self.generation += 1

    # -- ask/tell -----------------------------------------------------------------
    def _suggest(self) -> Configuration:
        if self._cursor >= self.population_size:
            self._evolve()
        idx = self._cursor
        self._cursor += 1
        self._pending.append(idx)
        return self._population[idx]

    def _on_observe(self, trial: Trial) -> None:
        if not self._pending:
            return
        idx = self._pending.pop(0)
        obj = self.objective
        self._scores[idx] = obj.score(trial.metric(obj.name))


def _sort_key(pair):  # pragma: no cover - trivial
    return pair[0]


class GeneticOnlineTuner(OnlinePolicy):
    """Online wrapper: one individual evaluated per production step."""

    def __init__(self, ga: GeneticAlgorithmOptimizer) -> None:
        self.ga = ga
        self._last: Configuration | None = None

    def propose(self, observation: np.ndarray) -> Configuration:
        self._last = self.ga.suggest(1)[0]
        return self._last

    def feedback(self, observation: np.ndarray, config: Configuration, reward: float) -> None:
        if self._last is None:
            return
        # The GA minimises canonical scores; rewards are higher-better.
        self.ga.observe(self._last, {self.ga.objective.name: self.ga.objective.unscore(-reward)})
        self._last = None
