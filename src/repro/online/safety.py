"""Safety for online tuning: guardrails and safe exploration (slide 84).

* :class:`Guardrail` — a runtime monitor: if recent performance regresses
  past a tolerance against a trailing baseline, flag a violation so the
  agent rolls back (the "avoid performance regression" pattern shared by
  OnlineTune, LOCAT, and OPPerTune).
* :class:`SafeBayesianOptimizer` — GP-based safe exploration: only propose
  candidates whose *pessimistic* predicted score stays within a tolerance
  of the best known configuration, and search a trust region around it
  ("iteratively optimizes subspaces around the best-known configuration,
  assessing safety via lower-bound estimates").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import OptimizerError
from ..optimizers.bo import BayesianOptimizer
from ..telemetry.spans import emit_event, span
from ..space import Configuration

__all__ = ["Guardrail", "GuardrailVerdict", "SafeBayesianOptimizer"]


@dataclass
class GuardrailVerdict:
    """Outcome of one guardrail check."""

    violated: bool
    is_safe_point: bool  # comfortably within budget: safe to adopt
    penalty: float = 0.0


class Guardrail:
    """Trailing-baseline regression monitor.

    Parameters
    ----------
    tolerance:
        Allowed relative regression vs the baseline score (canonical
        minimize scores; 0.2 = 20 % worse allowed).
    window:
        Trailing window for the baseline estimate (median of recent scores).
    grace:
        Steps before the guardrail activates (needs a baseline first).
    penalty:
        Reward penalty handed to the policy on violation.
    """

    def __init__(self, tolerance: float = 0.2, window: int = 20, grace: int = 5, penalty: float = 0.5) -> None:
        if tolerance < 0:
            raise OptimizerError(f"tolerance must be >= 0, got {tolerance}")
        if window < 2 or grace < 1:
            raise OptimizerError("window must be >= 2 and grace >= 1")
        self.tolerance = float(tolerance)
        self.window = int(window)
        self.grace = int(grace)
        self.penalty = float(penalty)
        self._scores: list[float] = []
        self.violations = 0

    def check(self, score: float) -> GuardrailVerdict:
        """Record a canonical (minimize) score and judge it."""
        history = self._scores[-self.window:]
        self._scores.append(float(score))
        if len(history) < self.grace:
            return GuardrailVerdict(violated=False, is_safe_point=False)
        baseline = float(np.median(history))
        band = abs(baseline) * self.tolerance
        if score > baseline + band:
            self.violations += 1
            emit_event(
                "guardrail.violation", severity="warning",
                message=f"score {score:.6g} exceeded baseline {baseline:.6g} by > {self.tolerance:.0%}",
                score=float(score), baseline=baseline, tolerance=self.tolerance,
            )
            return GuardrailVerdict(violated=True, is_safe_point=False, penalty=self.penalty)
        return GuardrailVerdict(violated=False, is_safe_point=score <= baseline)

    def reset(self) -> None:
        self._scores.clear()


class SafeBayesianOptimizer(BayesianOptimizer):
    """BO that refuses to propose predicted-unsafe configurations.

    A candidate is safe when its pessimistic bound ``μ + κσ`` (minimize
    scores) does not exceed ``(1 + tolerance) ×`` the incumbent's score.
    Candidates come from a trust region around the incumbent, so the safe
    set grows outward as confidence accumulates. Exploration is slower than
    vanilla BO — that is the measured trade-off of E17.
    """

    def __init__(
        self,
        *args,
        safety_tolerance: float = 0.25,
        kappa: float = 1.5,
        trust_radius: float = 0.15,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if safety_tolerance < 0:
            raise OptimizerError(f"safety_tolerance must be >= 0, got {safety_tolerance}")
        if kappa < 0:
            raise OptimizerError(f"kappa must be >= 0, got {kappa}")
        self.safety_tolerance = float(safety_tolerance)
        self.kappa = float(kappa)
        self.trust_radius = float(trust_radius)

    def _candidates(self) -> list[Configuration]:
        try:
            best = self.history.best().config
        except OptimizerError:
            return super()._candidates()
        # Trust region: perturbations of the incumbent at graded radii.
        cands = [best]
        for _ in range(self.n_candidates - 1):
            scale = float(self.rng.uniform(0.01, self.trust_radius))
            cands.append(self.space.neighbor(best, self.rng, scale=scale))
        return cands

    def _suggest(self) -> Configuration:
        n_done = len(self.history.completed())
        if n_done < self.n_init:
            # Even the initial design stays near the running default: start
            # from the space default and expand cautiously.
            base = self.space.default_configuration()
            return self.space.neighbor(base, self.rng, scale=0.05) if n_done else base
        self._ensure_model()
        if not self.model.is_fitted:
            return self.space.sample(self.rng)
        with span("acquisition.optimize", n_candidates=self.n_candidates, safe=True) as op:
            cands = self._candidates()
            X = self.encoder.encode_many(cands)
            mean, std = self.model.predict(X, return_std=True)
            best_score = float(self.history.scores().min())
            limit = best_score + abs(best_score) * self.safety_tolerance
            safe = (mean + self.kappa * std) <= limit
            if op is not None:
                op.set(n_safe=int(safe.sum()))
            if not safe.any():
                # Nothing provably safe: stay on the incumbent.
                return self.history.best().config
            scores = self.acquisition(mean, std, best_score)
            scores = np.where(safe, scores, -np.inf)
            return cands[int(np.argmax(scores))]
