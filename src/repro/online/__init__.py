"""Online tuning: agents, RL policies, GAs, hybrid bandits, safety."""

from .actor_critic import ActorCriticTuner
from .adapters import OnlinePolicyOptimizer, OptimizerPolicy
from .agent import OnlinePolicy, OnlineResult, OnlineStepRecord, OnlineTuningAgent
from .contextual import ContextualBOTuner, StaticConfigPolicy
from .genetic import GeneticAlgorithmOptimizer, GeneticOnlineTuner
from .greedy import GreedyOnlineTuner
from .hybrid import HybridBanditTuner
from .proactive import ProactiveForecastTuner
from .qlearning import QLearningTuner
from .safety import Guardrail, GuardrailVerdict, SafeBayesianOptimizer

__all__ = [
    "ActorCriticTuner",
    "OnlinePolicyOptimizer",
    "OptimizerPolicy",
    "OnlinePolicy",
    "OnlineResult",
    "OnlineStepRecord",
    "OnlineTuningAgent",
    "ContextualBOTuner",
    "StaticConfigPolicy",
    "GeneticAlgorithmOptimizer",
    "GeneticOnlineTuner",
    "GreedyOnlineTuner",
    "HybridBanditTuner",
    "ProactiveForecastTuner",
    "QLearningTuner",
    "Guardrail",
    "GuardrailVerdict",
    "SafeBayesianOptimizer",
]
