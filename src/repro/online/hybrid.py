"""Hybrid bandit tuning — the OPPerTune pattern (slides 81–84).

OPPerTune tunes *discrete* knobs with bandits and *numeric* knobs with a
bandit-feedback gradient method, safely, post-deployment. This module
implements that split:

* categorical/boolean knobs: per-knob exponential-weights (Exp3-style)
  bandits;
* numeric knobs: one-point residual SPSA — perturb around a slowly moving
  center, push the center along reward-weighted perturbations.

Rewards are centred against an exponential moving baseline so the policy
works with any metric scale.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import OptimizerError
from ..space import Configuration, ConfigurationSpace
from ..space.params import CategoricalParameter
from .agent import OnlinePolicy

__all__ = ["HybridBanditTuner"]


class _Exp3Bandit:
    """Exponential-weights bandit over one categorical knob."""

    def __init__(self, n_arms: int, lr: float, rng: np.random.Generator) -> None:
        self.weights = np.zeros(n_arms)
        self.lr = lr
        self.rng = rng
        self.last_arm = 0

    def probabilities(self) -> np.ndarray:
        z = self.weights - self.weights.max()
        p = np.exp(z)
        return p / p.sum()

    def pull(self) -> int:
        self.last_arm = int(self.rng.choice(len(self.weights), p=self.probabilities()))
        return self.last_arm

    def update(self, reward: float) -> None:
        p = self.probabilities()[self.last_arm]
        # Importance-weighted gain estimate.
        self.weights[self.last_arm] += self.lr * reward / max(p, 1e-6)
        self.weights -= self.weights.max()  # keep numerically tame


class HybridBanditTuner(OnlinePolicy):
    """Discrete knobs via Exp3, numeric knobs via one-point SPSA.

    Parameters
    ----------
    perturbation:
        SPSA probe radius in unit-space.
    numeric_lr:
        Step size for the numeric centre update.
    bandit_lr:
        Exponential-weights learning rate for discrete knobs.
    baseline_decay:
        EMA factor of the reward baseline used for centring.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        perturbation: float = 0.08,
        numeric_lr: float = 0.15,
        bandit_lr: float = 0.3,
        baseline_decay: float = 0.9,
        seed: int | None = None,
    ) -> None:
        if not 0.0 < perturbation <= 0.5:
            raise OptimizerError(f"perturbation must be in (0, 0.5], got {perturbation}")
        self.space = space
        self.rng = np.random.default_rng(seed)
        self.perturbation = float(perturbation)
        self.numeric_lr = float(numeric_lr)
        self.baseline_decay = float(baseline_decay)

        self.numeric_knobs = [p.name for p in space.parameters if not isinstance(p, CategoricalParameter)]
        self.discrete_knobs = [p.name for p in space.parameters if isinstance(p, CategoricalParameter)]
        default = space.default_configuration()
        self.center = np.array([space[k].to_unit(default[k]) for k in self.numeric_knobs])
        self.bandits = {
            k: _Exp3Bandit(space[k].n_choices, bandit_lr, self.rng) for k in self.discrete_knobs
        }
        self._baseline: float | None = None
        self._last_delta: np.ndarray | None = None

    def propose(self, observation: np.ndarray) -> Configuration:
        values = {}
        delta = self.rng.choice([-1.0, 1.0], size=len(self.numeric_knobs))
        probe = np.clip(self.center + self.perturbation * delta, 0.0, 1.0)
        self._last_delta = delta
        for k, u in zip(self.numeric_knobs, probe):
            values[k] = self.space[k].from_unit(float(u))
        for k, bandit in self.bandits.items():
            values[k] = self.space[k].choices[bandit.pull()]
        try:
            return self.space.make(values)
        except Exception:
            # Infeasible probe: propose the unperturbed centre instead.
            for k, u in zip(self.numeric_knobs, self.center):
                values[k] = self.space[k].from_unit(float(u))
            return self.space.make(values, check_constraints=False)

    def feedback(self, observation: np.ndarray, config: Configuration, reward: float) -> None:
        if self._baseline is None:
            self._baseline = reward
        advantage = reward - self._baseline
        self._baseline = self.baseline_decay * self._baseline + (1 - self.baseline_decay) * reward
        if self._last_delta is not None:
            # One-point gradient estimate: move toward perturbations that
            # beat the baseline, away from the ones that lost to it.
            self.center = np.clip(
                self.center + self.numeric_lr * advantage * self._last_delta * self.perturbation,
                0.0,
                1.0,
            )
            self._last_delta = None
        for bandit in self.bandits.values():
            bandit.update(advantage)

    def center_config(self) -> Configuration:
        """The current exploitation configuration (centre + greedy arms)."""
        values = {}
        for k, u in zip(self.numeric_knobs, self.center):
            values[k] = self.space[k].from_unit(float(u))
        for k, bandit in self.bandits.items():
            values[k] = self.space[k].choices[int(np.argmax(bandit.probabilities()))]
        return self.space.make(values, check_constraints=False)
