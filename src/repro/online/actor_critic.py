"""Actor-critic with linear function approximation (slide 79).

"Actor-Critic: policy function π(s, a) … value function V(s)." The actor
is a linear-Gaussian policy over the unit-encoded numeric knobs (the
continuous-action formulation CDBTune uses with DDPG, here in its simplest
stable form); the critic is a linear value function trained by TD(0).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import OptimizerError
from ..space import Configuration, ConfigurationSpace
from ..space.params import CategoricalParameter
from .agent import OnlinePolicy

__all__ = ["ActorCriticTuner"]


class ActorCriticTuner(OnlinePolicy):
    """Linear-Gaussian actor + linear TD(0) critic over numeric knobs.

    Categorical knobs stay at their defaults (combine with a bandit layer —
    see :class:`~repro.online.hybrid.HybridBanditTuner` — to tune those).

    Parameters
    ----------
    actor_lr, critic_lr:
        Gradient step sizes.
    sigma:
        Exploration noise of the Gaussian policy, annealed by
        ``sigma_decay`` each step.
    gamma:
        Discount factor.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        knobs: Sequence[str] | None = None,
        actor_lr: float = 0.05,
        critic_lr: float = 0.10,
        sigma: float = 0.15,
        sigma_decay: float = 0.997,
        sigma_min: float = 0.02,
        gamma: float = 0.9,
        seed: int | None = None,
    ) -> None:
        self.space = space
        names = list(knobs) if knobs is not None else list(space.names)
        self.knobs = [
            n for n in names if not isinstance(space[n], CategoricalParameter)
        ]
        if not self.knobs:
            raise OptimizerError("actor-critic needs at least one numeric knob")
        if sigma <= 0:
            raise OptimizerError(f"sigma must be positive, got {sigma}")
        self.actor_lr = float(actor_lr)
        self.critic_lr = float(critic_lr)
        self.sigma = float(sigma)
        self.sigma_decay = float(sigma_decay)
        self.sigma_min = float(sigma_min)
        self.gamma = float(gamma)
        self.rng = np.random.default_rng(seed)

        self._n_actions = len(self.knobs)
        self._W: np.ndarray | None = None  # actor weights (actions × features)
        self._b: np.ndarray | None = None  # actor bias = initial knob positions
        self._v: np.ndarray | None = None  # critic weights
        self._last: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None  # (features, action, mean)

    def _features(self, observation: np.ndarray) -> np.ndarray:
        obs = np.asarray(observation, dtype=float).ravel()
        return np.concatenate([[1.0], obs])  # bias feature

    def _lazy_init(self, phi: np.ndarray) -> None:
        if self._W is not None:
            return
        self._W = np.zeros((self._n_actions, len(phi)))
        default = self.space.default_configuration()
        self._b = np.array([self.space[k].to_unit(default[k]) for k in self.knobs])
        self._v = np.zeros(len(phi))

    def _mean_action(self, phi: np.ndarray) -> np.ndarray:
        return np.clip(self._W @ phi + self._b, 0.0, 1.0)

    # -- OnlinePolicy --------------------------------------------------------
    def propose(self, observation: np.ndarray) -> Configuration:
        phi = self._features(observation)
        self._lazy_init(phi)
        mean = self._mean_action(phi)
        action = np.clip(mean + self.rng.normal(0.0, self.sigma, self._n_actions), 0.0, 1.0)
        self._last = (phi, action, mean)
        values = self.space.default_configuration().as_dict()
        for k, u in zip(self.knobs, action):
            values[k] = self.space[k].from_unit(float(u))
        try:
            return self.space.make(values)
        except Exception:
            # Infeasible joint move: fall back to the mean action.
            for k, u in zip(self.knobs, mean):
                values[k] = self.space[k].from_unit(float(u))
            return self.space.make(values, check_constraints=False)

    def feedback(self, observation: np.ndarray, config: Configuration, reward: float) -> None:
        if self._last is None:
            return
        phi, action, mean = self._last
        next_phi = self._features(observation)
        # TD(0) critic update.
        v_s = float(self._v @ phi)
        v_next = float(self._v @ next_phi)
        delta = float(np.clip(reward + self.gamma * v_next - v_s, -2.0, 2.0))
        self._v += self.critic_lr * delta * phi
        # Policy gradient for a Gaussian policy: ∇ log π ∝ (a − μ)/σ².
        # Normalised by σ (not σ²) — a natural-gradient-style step that keeps
        # update magnitudes O(1) as exploration noise anneals.
        grad_mean = (action - mean) / self.sigma
        self._W += self.actor_lr * delta * np.outer(grad_mean, phi)
        self._b += self.actor_lr * delta * grad_mean
        self._b = np.clip(self._b, 0.0, 1.0)
        self.sigma = max(self.sigma_min, self.sigma * self.sigma_decay)

    def greedy_config(self, observation: np.ndarray) -> Configuration:
        """The deterministic (mean) policy output — for deployment."""
        phi = self._features(observation)
        self._lazy_init(phi)
        mean = self._mean_action(phi)
        values = self.space.default_configuration().as_dict()
        for k, u in zip(self.knobs, mean):
            values[k] = self.space[k].from_unit(float(u))
        return self.space.make(values, check_constraints=False)
