"""Tabular Q-learning for online knob tuning (slide 79).

"Q-Learning: Q(s, a) — the expected reward when taking action a at state
s." Following CDBTune/QTune's framing, the action space is knob
*adjustments* (nudge one knob up or down, or hold), states are discretized
observation vectors, and learning is standard ε-greedy temporal-difference.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

import numpy as np

from ..exceptions import OptimizerError
from ..space import Configuration, ConfigurationSpace
from ..space.params import CategoricalParameter
from .agent import OnlinePolicy

__all__ = ["QLearningTuner"]


class QLearningTuner(OnlinePolicy):
    """ε-greedy tabular Q-learning over single-knob adjustment actions.

    Parameters
    ----------
    space:
        Knobs under control.
    knobs:
        Subset of knob names to act on (default: all).
    step:
        Adjustment size in unit-space per action.
    n_state_bins:
        Discretization resolution for each observation dimension.
    alpha, gamma, epsilon:
        Learning rate, discount, exploration rate. ``epsilon_decay``
        multiplies ε each step (anneal exploration as confidence grows).
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        knobs: Sequence[str] | None = None,
        step: float = 0.12,
        n_state_bins: int = 3,
        alpha: float = 0.3,
        gamma: float = 0.8,
        epsilon: float = 0.25,
        epsilon_decay: float = 0.995,
        seed: int | None = None,
    ) -> None:
        self.space = space
        self.knobs = list(knobs) if knobs is not None else list(space.names)
        for k in self.knobs:
            if k not in space:
                raise OptimizerError(f"unknown knob {k!r}")
        if not 0.0 < step <= 1.0:
            raise OptimizerError(f"step must be in (0, 1], got {step}")
        self.step = float(step)
        self.n_state_bins = int(n_state_bins)
        self.alpha = float(alpha)
        self.gamma = float(gamma)
        self.epsilon = float(epsilon)
        self.epsilon_decay = float(epsilon_decay)
        self.rng = np.random.default_rng(seed)
        # Actions: (knob_index, direction) plus a no-op.
        self._actions: list[tuple[int, int]] = [(-1, 0)]
        for i, _ in enumerate(self.knobs):
            self._actions.extend([(i, +1), (i, -1)])
        self.q: dict[tuple, np.ndarray] = defaultdict(lambda: np.zeros(len(self._actions)))
        self._config = space.default_configuration()
        self._last: tuple[tuple, int] | None = None

    # -- state/action plumbing ----------------------------------------------
    def _state_key(self, observation: np.ndarray) -> tuple:
        bins = np.clip((np.asarray(observation) * self.n_state_bins).astype(int), 0, self.n_state_bins - 1)
        return tuple(int(b) for b in bins)

    def _apply_action(self, action: int) -> Configuration:
        knob_idx, direction = self._actions[action]
        if knob_idx < 0:
            return self._config
        name = self.knobs[knob_idx]
        param = self.space[name]
        values = self._config.as_dict()
        if isinstance(param, CategoricalParameter):
            values[name] = param.neighbor(values[name], self.rng)
        else:
            u = param.to_unit(values[name]) + direction * self.step
            values[name] = param.from_unit(float(np.clip(u, 0.0, 1.0)))
        try:
            return self.space.make(values)
        except Exception:
            return self._config  # infeasible move: hold position

    # -- OnlinePolicy -----------------------------------------------------------
    def propose(self, observation: np.ndarray) -> Configuration:
        state = self._state_key(observation)
        if self.rng.random() < self.epsilon:
            action = int(self.rng.integers(len(self._actions)))
        else:
            qvals = self.q[state]
            action = int(self.rng.choice(np.flatnonzero(qvals == qvals.max())))
        self._last = (state, action)
        self._config = self._apply_action(action)
        return self._config

    def feedback(self, observation: np.ndarray, config: Configuration, reward: float) -> None:
        if self._last is None:
            return
        state, action = self._last
        next_state = self._state_key(observation)
        td_target = reward + self.gamma * float(self.q[next_state].max())
        self.q[state][action] += self.alpha * (td_target - self.q[state][action])
        self.epsilon *= self.epsilon_decay

    @property
    def n_states_visited(self) -> int:
        return len(self.q)
