"""Online/offline symmetry: one ask/tell surface over both tuning worlds.

The offline world speaks :class:`~repro.core.optimizer.Optimizer`'s
``suggest(n)`` / ``observe(trial)``; the online world speaks
:class:`~repro.online.agent.OnlinePolicy`'s ``propose(observation)`` /
``feedback(observation, config, reward)``. The two protocols differ only
in what flows alongside the configuration (an observation vector and a
scale-free reward instead of metrics and cost), so thin adapters make
either side usable from the other:

* :class:`OnlinePolicyOptimizer` wraps an online policy behind the
  offline protocol — sessions, executors, and telemetry then drive RL/GA
  policies exactly like any Bayesian optimizer;
* :class:`OptimizerPolicy` wraps an offline optimizer behind the online
  protocol — the :class:`~repro.online.agent.OnlineTuningAgent` (with its
  guardrail) can then deploy GP-BO or random search as its policy.

Where semantics genuinely differ the adapters stay deliberately simple and
say so: rewards are *relative* delta-performance signals, metrics are
*absolute* — the conversions below preserve ordering, not scale.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..core.optimizer import Objective, Optimizer, Trial
from ..space import Configuration, ConfigurationSpace
from .agent import OnlinePolicy

__all__ = ["OnlinePolicyOptimizer", "OptimizerPolicy"]

#: Dimensionality of the default (all-zeros) observation vector, matching
#: :meth:`OnlineTuningAgent._default_observation`.
_DEFAULT_OBS_DIM = 6


class OnlinePolicyOptimizer(Optimizer):
    """Adapter: an :class:`OnlinePolicy` exposed as an offline optimizer.

    ``suggest`` obtains an observation (from ``observation_fn``; zeros when
    none is given) and asks the policy to propose; ``observe`` converts the
    trial's objective metric into the same delta-performance EMA reward the
    online agent computes and feeds it back. Failed trials feed the flat
    ``-2.0`` crash reward, mirroring the agent's crash handling.

    Semantic caveats (the "thin adapter" contract):

    * policies that alternate incumbent/probe measurements (greedy hill
      climbers) see batch suggestions as consecutive steps — sensible, but
      not identical to their behavior under the online agent;
    * the reward is relative to the run's own history, so warm-starting
      this adapter re-anchors the policy's reward scale.
    """

    accepts_foreign_observations = False

    def __init__(
        self,
        space: ConfigurationSpace,
        policy: OnlinePolicy,
        objectives: Sequence[Objective] | Objective | None = None,
        observation_fn: Callable[[], np.ndarray] | None = None,
        seed: int | None = None,
        crash_penalty_factor: float = 2.0,
    ) -> None:
        super().__init__(space, objectives, seed=seed, crash_penalty_factor=crash_penalty_factor)
        self.policy = policy
        self._observation_fn = observation_fn or (lambda: np.zeros(_DEFAULT_OBS_DIM))
        self._pending: list[tuple[Configuration, np.ndarray]] = []
        self._reward_scale: float | None = None

    # -- ask ----------------------------------------------------------------
    def _suggest(self) -> Configuration:
        observation = np.asarray(self._observation_fn(), dtype=float)
        config = self.policy.propose(observation)
        self._pending.append((config, observation))
        return config

    # -- tell ---------------------------------------------------------------
    def _pop_observation(self, config: Configuration) -> np.ndarray:
        for i, (pending_config, observation) in enumerate(self._pending):
            if pending_config == config:
                del self._pending[i]
                return observation
        return np.zeros(_DEFAULT_OBS_DIM)

    def _reward(self, value: float) -> float:
        """Delta-performance reward, identical to the online agent's."""
        score = self.objective.score(value)
        if self._reward_scale is None:
            self._reward_scale = score
            return 0.0
        ema = self._reward_scale
        reward = float(np.clip((ema - score) / (abs(ema) + 1e-12), -2.0, 2.0))
        self._reward_scale = 0.9 * ema + 0.1 * score
        return reward

    def _on_observe(self, trial: Trial) -> None:
        observation = self._pop_observation(trial.config)
        if trial.ok:
            reward = self._reward(trial.metric(self.objective.name))
        else:
            reward = -2.0  # the agent's flat crash penalty
        self.policy.feedback(observation, trial.config, reward)


class OptimizerPolicy(OnlinePolicy):
    """Adapter: an offline :class:`Optimizer` exposed as an online policy.

    ``propose`` asks the optimizer for one suggestion; ``feedback`` records
    the (higher-is-better) reward as the optimizer's objective metric via
    ``unscore(-reward)`` so that better rewards rank as better trials. The
    optimizer therefore learns the *ordering* of configurations under the
    agent's reward, not the raw system metric — the honest translation, as
    the online loop never shows the policy absolute metrics either.
    """

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer

    def propose(self, observation: np.ndarray) -> Configuration:
        return self.optimizer.suggest(1)[0]

    def feedback(self, observation: np.ndarray, config: Configuration, reward: float) -> None:
        objective = self.optimizer.objective
        value = objective.unscore(-float(reward))
        self.optimizer.observe(
            config,
            {objective.name: value},
            context={"observation": [float(x) for x in np.asarray(observation).ravel()]},
        )
