"""AutoSteer-style greedy online search (slide 81, slide 84).

"AutoSteer: applies greedy search to incrementally improve configurations,
balancing exploration & exploitation." The policy holds a current
configuration, proposes single-knob moves, adopts a move when its measured
reward beats the incumbent's running estimate, and reverts otherwise —
cautious, explainable ("we changed exactly one knob and it helped"), and
inherently regression-limited.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import OptimizerError
from ..space import Configuration, ConfigurationSpace
from .agent import OnlinePolicy

__all__ = ["GreedyOnlineTuner"]


class GreedyOnlineTuner(OnlinePolicy):
    """Hill climbing with single-knob moves and revert-on-regression.

    Parameters
    ----------
    step:
        Unit-space move size per numeric-knob proposal.
    patience:
        Consecutive failed moves before the step size grows (escape
        plateaus) — the "balancing exploration & exploitation" dial.
    ema:
        Smoothing for the incumbent's reward estimate.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        knobs: Sequence[str] | None = None,
        step: float = 0.1,
        patience: int = 6,
        ema: float = 0.5,
        seed: int | None = None,
    ) -> None:
        if not 0.0 < step <= 0.5:
            raise OptimizerError(f"step must be in (0, 0.5], got {step}")
        if patience < 1:
            raise OptimizerError(f"patience must be >= 1, got {patience}")
        self.space = space
        self.knobs = list(knobs) if knobs is not None else list(space.names)
        for k in self.knobs:
            if k not in space:
                raise OptimizerError(f"unknown knob {k!r}")
        self.step = float(step)
        self.base_step = float(step)
        self.patience = int(patience)
        self.ema = float(ema)
        self.rng = np.random.default_rng(seed)
        self.current = space.default_configuration()
        self._current_reward: float | None = None
        self._pending: Configuration | None = None
        self._fails = 0
        self.moves_adopted = 0
        self.moves_reverted = 0

    def _propose_move(self) -> Configuration:
        name = self.knobs[int(self.rng.integers(len(self.knobs)))]
        param = self.space[name]
        values = self.current.as_dict()
        if param.is_numeric:
            u = param.to_unit(values[name]) + float(self.rng.choice([-1.0, 1.0])) * self.step
            values[name] = param.from_unit(float(np.clip(u, 0.0, 1.0)))
        else:
            values[name] = param.neighbor(values[name], self.rng)
        try:
            return self.space.make(values)
        except Exception:
            return self.current

    def propose(self, observation: np.ndarray) -> Configuration:
        # Alternate: re-measure the incumbent, then try one move.
        if self._current_reward is None or self._pending is not None:
            self._pending = None
            return self.current
        self._pending = self._propose_move()
        return self._pending

    def feedback(self, observation: np.ndarray, config: Configuration, reward: float) -> None:
        if self._pending is None or config != self._pending:
            # Incumbent measurement: update its running estimate.
            if self._current_reward is None:
                self._current_reward = reward
            else:
                self._current_reward = self.ema * self._current_reward + (1 - self.ema) * reward
            return
        # Verdict on the attempted move.
        if reward > self._current_reward:
            self.current = self._pending
            self._current_reward = reward
            self._fails = 0
            self.step = self.base_step
            self.moves_adopted += 1
        else:
            self._fails += 1
            self.moves_reverted += 1
            if self._fails >= self.patience:
                self.step = min(0.5, self.step * 2.0)  # widen the search
                self._fails = 0
        self._pending = None
