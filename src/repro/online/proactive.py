"""Proactive online tuning: forecast the load, switch configs *before* it
arrives.

Reactive agents pay one bad step per shift; with a diurnal workload (the
common cloud case) the load curve is predictable, so the agent can apply
the configuration the *next* step needs. The policy:

1. forecast the next step's load with a
   :class:`~repro.workload_id.forecasting.SeasonalForecaster`;
2. bucket loads into bands; keep a per-band incumbent configuration,
   refined online by a tuning sub-policy (one knob world per band);
3. propose the forecast band's incumbent (explore within the band with a
   small probability).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ReproError
from ..space import Configuration, ConfigurationSpace
from ..workload_id.forecasting import SeasonalForecaster
from .agent import OnlinePolicy

__all__ = ["ProactiveForecastTuner"]


class ProactiveForecastTuner(OnlinePolicy):
    """Per-load-band incumbents, selected by a seasonal forecast.

    Parameters
    ----------
    load_index:
        Which observation-vector entry carries the load signal (the default
        observation's index 0 is log-concurrency).
    n_bands:
        Number of load bands (each with its own incumbent config).
    period:
        Seasonality of the load signal, in agent steps.
    explore_prob:
        Probability of probing a neighbour of the band incumbent instead
        of exploiting it.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        period: int,
        load_index: int = 0,
        n_bands: int = 3,
        explore_prob: float = 0.3,
        seed: int | None = None,
    ) -> None:
        if n_bands < 2:
            raise ReproError(f"need >= 2 load bands, got {n_bands}")
        if not 0.0 <= explore_prob <= 1.0:
            raise ReproError(f"explore_prob must be in [0, 1], got {explore_prob}")
        self.space = space
        self.load_index = int(load_index)
        self.n_bands = int(n_bands)
        self.explore_prob = float(explore_prob)
        self.rng = np.random.default_rng(seed)
        self.forecaster = SeasonalForecaster(period=period)
        self._loads: list[float] = []
        default = space.default_configuration()
        self._incumbent = [default for _ in range(self.n_bands)]
        self._incumbent_reward = [-np.inf] * self.n_bands
        self._last: tuple[int, Configuration] | None = None

    # -- load banding -----------------------------------------------------------
    def _band_of(self, load: float) -> int:
        if len(self._loads) < 8:
            return 0
        lo, hi = np.min(self._loads), np.max(self._loads)
        if hi <= lo:
            return 0
        frac = (load - lo) / (hi - lo)
        return int(np.clip(frac * self.n_bands, 0, self.n_bands - 1))

    def _predicted_load(self, current: float) -> float:
        if self.forecaster.is_fitted:
            return float(self.forecaster.forecast(1)[0])
        return current

    # -- OnlinePolicy ------------------------------------------------------------
    def propose(self, observation: np.ndarray) -> Configuration:
        load = float(np.asarray(observation).ravel()[self.load_index])
        self._loads.append(load)
        self.forecaster.update(load)
        band = self._band_of(self._predicted_load(load))
        incumbent = self._incumbent[band]
        if self.rng.random() < self.explore_prob:
            candidate = self.space.neighbor(incumbent, self.rng, scale=0.15)
        else:
            candidate = incumbent
        self._last = (band, candidate)
        return candidate

    def feedback(self, observation: np.ndarray, config: Configuration, reward: float) -> None:
        if self._last is None:
            return
        band, candidate = self._last
        if reward > self._incumbent_reward[band]:
            self._incumbent[band] = candidate
            self._incumbent_reward[band] = reward
        else:
            # Incumbent estimates decay slowly so stale bests get re-earned.
            self._incumbent_reward[band] *= 0.995 if self._incumbent_reward[band] > 0 else 1.005
        self._last = None

    @property
    def band_incumbents(self) -> list[Configuration]:
        return list(self._incumbent)
