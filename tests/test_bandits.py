"""Unit tests for multi-armed bandit optimizers."""

import numpy as np
import pytest

from repro.core import Objective
from repro.exceptions import OptimizerError
from repro.optimizers import MultiArmedBanditOptimizer
from repro.space import ConfigurationSpace, FloatParameter


@pytest.fixture
def arm_space():
    space = ConfigurationSpace("arms", seed=0)
    space.add(FloatParameter("x", 0.0, 1.0))
    return space


def make_arms(space, values):
    return [space.make({"x": v}) for v in values]


def pull_loop(opt, latency_of, n=200):
    for _ in range(n):
        cfg = opt.suggest(1)[0]
        opt.observe(cfg, latency_of(cfg))


@pytest.mark.parametrize("policy", ["epsilon", "ucb1", "thompson"])
class TestPolicies:
    def test_finds_best_arm(self, arm_space, policy, rng):
        arms = make_arms(arm_space, [0.1, 0.3, 0.5, 0.7, 0.9])
        opt = MultiArmedBanditOptimizer(
            arm_space, arms=arms, policy=policy, objectives=Objective("lat"), seed=1
        )

        def latency(cfg):
            return abs(cfg["x"] - 0.7) + rng.normal(0, 0.02)

        pull_loop(opt, latency)
        assert opt.best_arm()["x"] == 0.7

    def test_exploits_more_over_time(self, arm_space, policy):
        arms = make_arms(arm_space, [0.1, 0.9])
        opt = MultiArmedBanditOptimizer(
            arm_space, arms=arms, policy=policy, objectives=Objective("lat"), seed=1
        )
        pull_loop(opt, lambda cfg: cfg["x"], n=150)  # lower x is better
        pulls = [s.pulls for s in opt.stats]
        assert pulls[0] > pulls[1]  # best arm pulled more


class TestMechanics:
    def test_every_arm_pulled_once_first(self, arm_space):
        arms = make_arms(arm_space, [0.1, 0.3, 0.5, 0.7])
        opt = MultiArmedBanditOptimizer(arm_space, arms=arms, seed=0)
        first = []
        for _ in range(4):
            c = opt.suggest(1)[0]
            opt.observe(c, 1.0)
            first.append(c)
        assert set(first) == set(arms)

    def test_random_arms_when_unspecified(self, arm_space):
        opt = MultiArmedBanditOptimizer(arm_space, n_arms=7, seed=0)
        assert len(opt.arms) == 7

    def test_non_arm_observation_ignored(self, arm_space):
        arms = make_arms(arm_space, [0.1, 0.9])
        opt = MultiArmedBanditOptimizer(arm_space, arms=arms, seed=0)
        foreign = arm_space.make({"x": 0.5})
        opt.observe(foreign, 1.0)
        assert opt.total_pulls == 0

    def test_best_arm_requires_pulls(self, arm_space):
        arms = make_arms(arm_space, [0.1, 0.9])
        opt = MultiArmedBanditOptimizer(arm_space, arms=arms, seed=0)
        with pytest.raises(OptimizerError):
            opt.best_arm()

    def test_welford_stats(self):
        from repro.optimizers.bandits import BanditArmStats

        stats = BanditArmStats()
        data = [1.0, 2.0, 3.0, 4.0]
        for v in data:
            stats.update(v)
        assert stats.mean == pytest.approx(np.mean(data))
        assert stats.variance == pytest.approx(np.var(data, ddof=1))

    def test_validation(self, arm_space):
        with pytest.raises(OptimizerError):
            MultiArmedBanditOptimizer(arm_space, policy="bogus")
        with pytest.raises(OptimizerError):
            MultiArmedBanditOptimizer(arm_space, arms=[arm_space.make({})])
        with pytest.raises(OptimizerError):
            MultiArmedBanditOptimizer(arm_space, epsilon=1.5)
