"""Unit tests for the tuning session loop."""

import pytest

from repro.core import Objective, StopWhenReached, TrialStatus, TuningSession
from repro.exceptions import OptimizerError, SystemCrashError, TrialAbortedError
from repro.optimizers import RandomSearchOptimizer

from .conftest import quadratic_evaluator


class TestBudgets:
    def test_trial_budget(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, seed=0)
        res = TuningSession(opt, quadratic_evaluator(), max_trials=17).run()
        assert res.n_trials == 17

    def test_cost_budget(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, seed=0)

        def pricey(config):
            return 1.0, 10.0

        res = TuningSession(opt, pricey, max_trials=100, max_cost=35.0).run()
        assert res.n_trials == 4  # stops once >= 35 spent

    def test_batch_size(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, seed=0)
        res = TuningSession(opt, quadratic_evaluator(), max_trials=10, batch_size=4).run()
        assert res.n_trials == 10  # final partial batch trimmed

    def test_validation(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, seed=0)
        with pytest.raises(OptimizerError):
            TuningSession(opt, quadratic_evaluator(), max_trials=0)
        with pytest.raises(OptimizerError):
            TuningSession(opt, quadratic_evaluator(), max_trials=5, batch_size=0)


class TestEvaluatorShapes:
    def test_plain_float(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, Objective("score"), seed=0)
        res = TuningSession(opt, lambda c: 2.5, max_trials=3).run()
        assert res.best_value == 2.5
        assert res.history.trials[0].cost == 1.0  # default cost

    def test_metrics_mapping(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, Objective("lat"), seed=0)
        res = TuningSession(opt, lambda c: {"lat": 1.0, "cpu": 0.4}, max_trials=2).run()
        assert res.history.trials[0].metric("cpu") == 0.4

    def test_tuple_with_cost(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, seed=0)
        res = TuningSession(opt, lambda c: (3.0, 7.0), max_trials=2).run()
        assert res.total_cost == 14.0


class TestFailureHandling:
    def test_crash_becomes_failed_trial(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, Objective("lat"), seed=0)
        calls = {"n": 0}

        def flaky(config):
            calls["n"] += 1
            if calls["n"] % 3 == 0:
                raise SystemCrashError("oom")
            return 1.0

        res = TuningSession(opt, flaky, max_trials=9).run()
        assert len(res.history.failed()) == 3
        assert res.n_trials == 9

    def test_abort_without_censored_metrics(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, Objective("lat"), seed=0)

        def aborting(config):
            raise TrialAbortedError("cut")

        session = TuningSession(opt, aborting, max_trials=2)
        res = session.run()
        assert all(t.status is TrialStatus.ABORTED for t in res.history.trials)

    def test_abort_with_censored_metrics_counts_as_success(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, Objective("lat"), seed=0)
        calls = {"n": 0}

        def censoring(config):
            calls["n"] += 1
            if calls["n"] == 1:
                return 5.0
            err = TrialAbortedError("cut at bound")
            err.censored_metrics = {"lat": 10.0}
            err.cost = 10.0
            return (_ for _ in ()).throw(err)

        res = TuningSession(opt, censoring, max_trials=3).run()
        assert res.best_value == 5.0
        censored = res.history.trials[1]
        assert censored.ok and censored.metric("lat") == 10.0


class TestCallbacks:
    def test_stop_when_reached(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, Objective("lat"), seed=0)
        values = iter([9.0, 5.0, 1.0, 0.5, 0.4])

        session = TuningSession(
            opt,
            lambda c: next(values),
            max_trials=5,
            callbacks=[StopWhenReached(1.0)],
        )
        res = session.run()
        assert res.n_trials == 3  # stopped after hitting 1.0

    def test_convergence_tracker(self, simple_space):
        from repro.core import ConvergenceTracker

        opt = RandomSearchOptimizer(simple_space, Objective("lat"), seed=0)
        tracker = ConvergenceTracker()
        TuningSession(opt, quadratic_evaluator(), max_trials=8, callbacks=[tracker]).run()
        assert len(tracker.best_so_far) == 8
        assert tracker.cumulative_cost[-1] == 8.0

    def test_trial_hooks_called(self, simple_space):
        from repro.core import Callback

        class Counter(Callback):
            def __init__(self):
                self.starts = self.ends = self.sessions = 0

            def on_trial_start(self, session, i):
                self.starts += 1

            def on_trial_end(self, session, trial):
                self.ends += 1

            def on_session_end(self, session):
                self.sessions += 1

        counter = Counter()
        opt = RandomSearchOptimizer(simple_space, seed=0)
        TuningSession(opt, quadratic_evaluator(), max_trials=5, callbacks=[counter]).run()
        assert counter.starts == 5 and counter.ends == 5 and counter.sessions == 1


class TestResult:
    def test_trials_to_reach(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, Objective("lat"), seed=0)
        values = iter([9.0, 5.0, 2.0, 1.0])
        res = TuningSession(opt, lambda c: next(values), max_trials=4).run()
        assert res.trials_to_reach(5.0) == 2
        assert res.trials_to_reach(1.0) == 4
        assert res.trials_to_reach(0.1) is None

    def test_cost_to_reach(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, Objective("lat"), seed=0)
        values = iter([9.0, 5.0, 2.0])
        res = TuningSession(opt, lambda c: (next(values), 10.0), max_trials=3).run()
        assert res.cost_to_reach(5.0) == 20.0

    def test_summary_string(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, Objective("lat"), seed=0)
        res = TuningSession(opt, lambda c: 1.0, max_trials=2).run()
        assert "min lat" in res.summary()
