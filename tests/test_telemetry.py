"""Telemetry: spans per trial, counters, JSON export, runner/agent wiring."""

from __future__ import annotations

import json

import pytest

from repro.core import Objective, TuningSession
from repro.exceptions import SystemCrashError
from repro.execution import RetryPolicy, ThreadedExecutor
from repro.optimizers import RandomSearchOptimizer
from repro.telemetry import SessionTrace, TelemetryCallback, TrialSpan


class TestSessionTrace:
    def test_counters_and_gauges(self):
        trace = SessionTrace("t")
        trace.incr("a")
        trace.incr("a", 2.0)
        trace.gauge("g", 1.0)
        trace.gauge("g", 3.0)
        assert trace.counters["a"] == 3.0
        assert trace.gauges["g"] == 3.0  # gauges hold the latest value

    def test_span_lookup_and_outcomes(self):
        trace = SessionTrace()
        trace.add_span(TrialSpan(trial_id=0, outcome="success"))
        trace.add_span(TrialSpan(trial_id=1, outcome="crash", status="failed"))
        assert trace.span_for(1).outcome == "crash"
        assert trace.span_for(99) is None
        assert trace.outcome_counts() == {"success": 1, "crash": 1}

    def test_json_roundtrip(self, tmp_path):
        trace = SessionTrace("roundtrip")
        trace.add_span(TrialSpan(trial_id=0, retries=2, outcome="success", cost=1.5))
        trace.incr("trials.total")
        path = tmp_path / "trace.json"
        trace.export(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["name"] == "roundtrip"
        assert loaded["n_spans"] == 1
        assert loaded["spans"][0]["retries"] == 2
        assert loaded["counters"]["trials.total"] == 1.0


class TestTelemetryCallback:
    def test_one_span_per_trial_with_outcome_and_retries(self, simple_space, tmp_path):
        def crashy(config):
            if int(config["n"]) % 2 == 0:
                raise SystemCrashError("even n crashes")
            return {"lat": float(config["x"])}

        path = tmp_path / "trace.json"
        callback = TelemetryCallback(export_path=str(path))
        opt = RandomSearchOptimizer(simple_space, Objective("lat"), seed=0)
        with ThreadedExecutor(max_workers=4, retry=RetryPolicy(max_retries=1, backoff_s=0.0)) as executor:
            res = TuningSession(
                opt, crashy, max_trials=8, batch_size=4, callbacks=[callback], executor=executor
            ).run()

        trace = callback.trace
        assert len(trace.spans) == res.n_trials == 8
        assert sorted(s.trial_id for s in trace.spans) == list(range(8))
        for span in trace.spans:
            assert span.outcome in ("success", "crash")
            assert span.retries >= 0
        crashes = [s for s in trace.spans if s.outcome == "crash"]
        assert crashes  # deterministic: even n crashes (even after 1 retry)
        assert all(s.retries == 1 for s in crashes)  # retried once, still crashed
        assert trace.counters["trials.total"] == 8
        assert trace.counters["trials.failed"] == len(crashes)
        assert trace.counters["trials.errors"] == len(crashes)
        assert trace.counters["batches.total"] == 2
        assert trace.gauges["best.value"] == res.best_value

        exported = json.loads(path.read_text())
        assert exported["n_spans"] == 8
        assert all("outcome" in s and "retries" in s for s in exported["spans"])

    def test_all_failed_session_still_exports(self, simple_space):
        def always_crash(config):
            raise SystemCrashError("boom")

        callback = TelemetryCallback()
        opt = RandomSearchOptimizer(simple_space, Objective("lat"), seed=0)
        TuningSession(opt, always_crash, max_trials=3, callbacks=[callback]).run()
        assert callback.trace.counters["trials.failed"] == 3
        assert "best.value" not in callback.trace.gauges


class TestBenchmarkRunnerTrace:
    def test_runner_counts_runs_and_seconds(self, quiet_dbms):
        from repro.benchmarking import BenchmarkRunner
        from repro.workloads import tpcc

        trace = SessionTrace()
        runner = BenchmarkRunner(
            quiet_dbms, tpcc(), Objective("throughput", minimize=False),
            duration_s=10.0, repeats=2, trace=trace,
        )
        runner(quiet_dbms.space.default_configuration())
        assert trace.counters["benchmark.runs"] == 2
        assert trace.counters["benchmark.seconds"] == pytest.approx(runner.total_benchmark_seconds)


class TestOnlineAgentTrace:
    def test_agent_records_step_spans(self):
        from repro.online import GreedyOnlineTuner, OnlineTuningAgent
        from repro.sysim import QUIET_CLOUD, RedisServer, redis_benchmark_workload
        from repro.workloads import PhasedTrace

        server = RedisServer(env=QUIET_CLOUD(seed=0), seed=0)
        policy = GreedyOnlineTuner(server.space, seed=0)
        trace = SessionTrace("online")
        agent = OnlineTuningAgent(
            server, policy, Objective("latency_p95"), duration_s=5.0, trace=trace
        )
        workloads = PhasedTrace([(redis_benchmark_workload(), 6)])
        result = agent.run(workloads)
        assert len(trace.spans) == len(result.records) == 6
        assert trace.counters["steps.total"] == 6
        assert all(s.attributes["workload"] for s in trace.spans)
        assert trace.gauges["steps.total"] == 6


class TestTraceContext:
    """W3C traceparent parsing/formatting and ambient trace binding."""

    def test_format_parse_round_trip(self):
        from repro.telemetry import format_traceparent, parse_traceparent

        header = format_traceparent("ab" * 16)
        ctx = parse_traceparent(header)
        assert ctx is not None
        assert ctx.trace_id == "ab" * 16
        assert len(ctx.span_id) == 16

    @pytest.mark.parametrize("header", [
        None,
        "",
        "not-a-traceparent",
        "00-short-0123456789abcdef-01",
        f"ff-{'ab' * 16}-{'cd' * 8}-01",   # forbidden version
        f"00-{'0' * 32}-{'cd' * 8}-01",    # all-zero trace id
        f"00-{'ab' * 16}-{'0' * 16}-01",   # all-zero span id
    ])
    def test_malformed_headers_parse_to_none(self, header):
        from repro.telemetry import parse_traceparent

        assert parse_traceparent(header) is None

    def test_bind_trace_wins_over_activation(self):
        """An inbound trace context takes precedence over the activated
        trace's own id — the server-side stitching rule."""
        from repro.telemetry import bind_trace
        from repro.telemetry.spans import span

        trace = SessionTrace("local")
        with bind_trace("cd" * 16):
            with trace.activated():
                with span("optimizer.suggest", n=1):
                    pass
        assert trace.ops[0].trace_id == "cd" * 16

    def test_activation_binds_own_trace_id(self):
        from repro.telemetry.spans import span

        trace = SessionTrace("local")
        with trace.activated():
            with span("optimizer.suggest", n=1):
                pass
        assert trace.ops[0].trace_id == trace.trace_id
