"""Unit tests for knob importance, convergence comparison, reporting."""

import numpy as np
import pytest

from repro.analysis import (
    ComparisonResult,
    LassoImportance,
    compare_optimizers,
    format_table,
    format_value,
    lasso_coordinate_descent,
    permutation_importance,
)
from repro.core import Objective, TuningSession
from repro.exceptions import OptimizerError, ReproError
from repro.optimizers import BayesianOptimizer, RandomSearchOptimizer
from repro.space import CategoricalParameter, ConfigurationSpace, FloatParameter

from .conftest import quadratic_evaluator


def importance_space():
    """Two knobs that matter a lot, one mild, three junk, one categorical."""
    space = ConfigurationSpace("imp", seed=0)
    for name in ("big1", "big2", "mild", "junk1", "junk2", "junk3"):
        space.add(FloatParameter(name, 0.0, 1.0))
    space.add(CategoricalParameter("engine", ["x", "y"]))
    return space


def importance_evaluator(config):
    # big1's effect is monotone: Lasso is a *linear* screen (OtterTune's
    # known limitation — it can miss purely symmetric effects).
    value = (
        5.0 * (config["big1"] - 0.1) ** 2
        + 4.0 * abs(config["big2"] - 0.3)
        + 0.4 * config["mild"]
        + (1.0 if config["engine"] == "y" else 0.0)
    )
    return value, 1.0


def build_history(n=80, seed=0):
    space = importance_space()
    opt = RandomSearchOptimizer(space, Objective("score"), seed=seed)
    TuningSession(opt, importance_evaluator, max_trials=n).run()
    return space, opt.history


class TestLassoSolver:
    def test_recovers_sparse_coefficients(self, rng):
        X = rng.standard_normal((200, 6))
        true_w = np.array([3.0, 0.0, -2.0, 0.0, 0.0, 0.0])
        y = X @ true_w + rng.normal(0, 0.05, 200)
        w = lasso_coordinate_descent(X, y, alpha=0.05)
        assert abs(w[0] - 3.0) < 0.3 and abs(w[2] + 2.0) < 0.3
        assert np.abs(w[[1, 3, 4, 5]]).max() < 0.1

    def test_strong_alpha_zeroes_everything(self, rng):
        X = rng.standard_normal((50, 3))
        y = X[:, 0]
        w = lasso_coordinate_descent(X, y, alpha=100.0)
        assert np.allclose(w, 0.0)

    def test_zero_alpha_is_least_squares(self, rng):
        X = rng.standard_normal((100, 2))
        y = 2.0 * X[:, 0] - 1.0 * X[:, 1]
        w = lasso_coordinate_descent(X, y, alpha=0.0)
        assert np.allclose(w, [2.0, -1.0], atol=0.05)

    def test_validation(self):
        with pytest.raises(OptimizerError):
            lasso_coordinate_descent(np.zeros((3, 2)), np.zeros(4), 0.1)
        with pytest.raises(OptimizerError):
            lasso_coordinate_descent(np.zeros((3, 2)), np.zeros(3), -0.1)


class TestLassoImportance:
    def test_important_knobs_rank_first(self):
        space, history = build_history()
        ranking = LassoImportance(space).rank(history)
        top3 = ranking.top(3)
        assert "big1" in top3 and "big2" in top3

    def test_junk_ranks_last(self):
        space, history = build_history()
        ranking = LassoImportance(space).rank(history)
        bottom = ranking.knobs[-3:]
        assert len(set(bottom) & {"junk1", "junk2", "junk3"}) >= 2

    def test_score_lookup(self):
        space, history = build_history()
        ranking = LassoImportance(space).rank(history)
        assert ranking.score_of("big1") > ranking.score_of("junk1")
        with pytest.raises(OptimizerError):
            ranking.score_of("nope")

    def test_needs_trials(self):
        space = importance_space()
        opt = RandomSearchOptimizer(space, Objective("score"), seed=0)
        with pytest.raises(OptimizerError):
            LassoImportance(space).rank(opt.history)


class TestPermutationImportance:
    def test_important_knobs_rank_first(self):
        space, history = build_history()
        ranking = permutation_importance(space, history, seed=0)
        assert set(ranking.top(3)) & {"big1", "big2"}

    def test_junk_scores_near_zero(self):
        space, history = build_history()
        ranking = permutation_importance(space, history, seed=0)
        assert ranking.score_of("junk1") < ranking.score_of("big1") / 5


class TestCompareOptimizers:
    def test_runs_all_factories_and_seeds(self, simple_space):
        results = compare_optimizers(
            {
                "random": lambda s: RandomSearchOptimizer(simple_space, Objective("score"), seed=s),
            },
            lambda s: quadratic_evaluator(),
            max_trials=10,
            n_seeds=2,
        )
        comp = results["random"]
        assert len(comp.results) == 2
        assert comp.curves().shape == (2, 10)
        assert comp.mean_curve().shape == (10,)

    def test_metrics(self, simple_space):
        results = compare_optimizers(
            {"r": lambda s: RandomSearchOptimizer(simple_space, Objective("score"), seed=s)},
            lambda s: quadratic_evaluator(),
            max_trials=15,
            n_seeds=2,
        )
        comp = results["r"]
        assert 1 <= comp.mean_trials_to(1.0) <= 15
        assert 0.0 <= comp.reach_rate(0.0001) <= 1.0
        assert comp.mean_best() >= 0.0

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            ComparisonResult("x").curves()


class TestReporting:
    def test_format_value(self):
        assert format_value(0.000123) == "0.000123"
        assert format_value(1234567.0) == "1.23e+06"
        assert format_value(True) == "True"
        assert format_value("abc") == "abc"
        assert format_value(0.0) == "0"

    def test_table_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1.0], ["long-name", 123456.0]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "== T =="
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows padded to same width
