"""Unit tests for the GP Bayesian optimizer."""

import numpy as np
import pytest

from repro.core import Objective, TuningSession
from repro.exceptions import OptimizerError
from repro.optimizers import (
    BayesianOptimizer,
    LowerConfidenceBound,
    RandomSearchOptimizer,
)
from repro.space import CategoricalParameter, ConfigurationSpace, FloatParameter

from .conftest import quadratic_evaluator


def bowl_space(n=2):
    space = ConfigurationSpace("bowl", seed=0)
    for i in range(n):
        space.add(FloatParameter(f"x{i}", 0.0, 1.0))
    return space


class TestConvergence:
    def test_beats_target_on_bowl(self):
        space = bowl_space(2)
        opt = BayesianOptimizer(space, n_init=6, seed=0, n_candidates=128)
        res = TuningSession(opt, quadratic_evaluator(), max_trials=30).run()
        assert res.best_value < 0.01

    def test_more_sample_efficient_than_random(self):
        """The tutorial's central offline claim, in miniature."""
        space = bowl_space(3)
        target = 0.05
        bo_hits, rs_hits = [], []
        for seed in range(3):
            bo = BayesianOptimizer(bowl_space(3), n_init=6, seed=seed, n_candidates=128)
            rs = RandomSearchOptimizer(bowl_space(3), seed=seed)
            bo_res = TuningSession(bo, quadratic_evaluator(), max_trials=25).run()
            rs_res = TuningSession(rs, quadratic_evaluator(), max_trials=25).run()
            bo_hits.append(bo_res.best_value)
            rs_hits.append(rs_res.best_value)
        assert np.mean(bo_hits) < np.mean(rs_hits)

    def test_initial_design_is_random(self):
        space = bowl_space(1)
        opt = BayesianOptimizer(space, n_init=5, seed=0)
        configs = opt.suggest(5)
        for c in configs:
            opt.observe(c, 1.0)
        assert not opt.model.is_fitted  # model only built after init phase


class TestEncodings:
    def test_onehot_encoding_works(self):
        space = bowl_space(1)
        space.add(CategoricalParameter("mode", ["a", "b", "c"]))

        def eval_cat(config):
            penalty = {"a": 0.0, "b": 0.5, "c": 1.0}[config["mode"]]
            return (config["x0"] - 0.3) ** 2 + penalty, 1.0

        opt = BayesianOptimizer(space, n_init=6, encoding="onehot", seed=0, n_candidates=128)
        res = TuningSession(opt, eval_cat, max_trials=30).run()
        assert res.best_config["mode"] == "a"

    def test_bad_encoding_rejected(self):
        with pytest.raises(OptimizerError):
            BayesianOptimizer(bowl_space(1), encoding="weird")


class TestBatchSuggest:
    def test_constant_liar_diversifies(self):
        space = bowl_space(2)
        opt = BayesianOptimizer(space, n_init=4, seed=0, n_candidates=128)
        for _ in range(6):
            c = opt.suggest(1)[0]
            opt.observe(c, quadratic_evaluator()(c)[0])
        batch = opt.suggest(4)
        assert len(set(batch)) >= 3  # fantasies prevent 4 identical picks

    def test_lies_cleared_after_batch(self):
        space = bowl_space(1)
        opt = BayesianOptimizer(space, n_init=2, seed=0, n_candidates=64)
        for _ in range(3):
            c = opt.suggest(1)[0]
            opt.observe(c, 0.5)
        opt.suggest(3)
        assert opt._lies == []


class TestAcquisitionPlumbing:
    def test_custom_acquisition(self):
        space = bowl_space(1)
        opt = BayesianOptimizer(
            space, n_init=3, acquisition=LowerConfidenceBound(beta=1.0),
            seed=0, n_candidates=64,
        )
        res = TuningSession(opt, quadratic_evaluator(), max_trials=15).run()
        assert res.best_value < 0.05

    def test_surrogate_prediction_shape(self):
        space = bowl_space(1)
        opt = BayesianOptimizer(space, n_init=2, seed=0, n_candidates=64)
        for _ in range(4):
            c = opt.suggest(1)[0]
            opt.observe(c, quadratic_evaluator()(c)[0])
        configs = [space.sample(np.random.default_rng(0)) for _ in range(5)]
        mean, std = opt.surrogate_prediction(configs)
        assert mean.shape == (5,) and std.shape == (5,)
        assert np.all(std > 0)


class TestCrashHandling:
    def test_learns_to_avoid_crash_region(self):
        """Imputed crash scores should steer BO away from the bad half."""
        space = bowl_space(1)
        from repro.exceptions import SystemCrashError

        def crashy(config):
            if config["x0"] > 0.6:
                raise SystemCrashError("boom")
            return (config["x0"] - 0.4) ** 2, 1.0

        opt = BayesianOptimizer(space, n_init=6, seed=0, n_candidates=128)
        TuningSession(opt, crashy, max_trials=30).run()
        # Late-phase suggestions should mostly stay out of the crash zone.
        # (suggest(1) repeatedly, not a batch: constant-liar fantasies would
        # deliberately push a batch away from the incumbent.)
        late = [opt.suggest(1)[0] for _ in range(10)]
        crash_rate = sum(c["x0"] > 0.6 for c in late) / 10
        assert crash_rate <= 0.3

    def test_validation(self):
        with pytest.raises(OptimizerError):
            BayesianOptimizer(bowl_space(1), n_init=0)
        with pytest.raises(OptimizerError):
            BayesianOptimizer(bowl_space(1), n_candidates=1)
