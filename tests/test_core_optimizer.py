"""Unit tests for the ask/tell protocol, Trial, History, Objective."""

import numpy as np
import pytest

from repro.core import Objective, Optimizer, Trial, TrialStatus
from repro.exceptions import OptimizerError
from repro.optimizers import RandomSearchOptimizer


class TestObjective:
    def test_minimize_score_identity(self):
        obj = Objective("latency", minimize=True)
        assert obj.score(5.0) == 5.0
        assert obj.unscore(5.0) == 5.0

    def test_maximize_negates(self):
        obj = Objective("throughput", minimize=False)
        assert obj.score(5.0) == -5.0
        assert obj.unscore(-5.0) == 5.0

    def test_roundtrip(self):
        for minimize in (True, False):
            obj = Objective("m", minimize=minimize)
            assert obj.unscore(obj.score(3.7)) == 3.7


class TestHistory:
    def make_opt(self, simple_space, minimize=True):
        return RandomSearchOptimizer(simple_space, Objective("m", minimize=minimize), seed=0)

    def test_best_tracks_direction(self, simple_space):
        opt = self.make_opt(simple_space, minimize=False)
        for v in (1.0, 5.0, 3.0):
            opt.observe(opt.suggest(1)[0], v)
        assert opt.history.best_value() == 5.0

    def test_best_requires_completed(self, simple_space):
        opt = self.make_opt(simple_space)
        with pytest.raises(OptimizerError):
            opt.history.best()

    def test_incumbent_curve_monotone(self, simple_space, rng):
        opt = self.make_opt(simple_space)
        for _ in range(20):
            opt.observe(opt.suggest(1)[0], float(rng.random()))
        curve = opt.history.incumbent_curve()
        assert len(curve) == 20
        assert np.all(np.diff(curve) <= 1e-12)

    def test_incumbent_curve_nan_before_first_success(self, simple_space):
        opt = self.make_opt(simple_space)
        opt.history.add(Trial(0, simple_space.default_configuration(), TrialStatus.FAILED))
        opt.observe(opt.suggest(1)[0], 2.0)
        curve = opt.history.incumbent_curve()
        assert np.isnan(curve[0]) and curve[1] == 2.0

    def test_scores_canonical(self, simple_space):
        opt = self.make_opt(simple_space, minimize=False)
        opt.observe(opt.suggest(1)[0], 10.0)
        assert opt.history.scores()[0] == -10.0

    def test_total_cost(self, simple_space):
        opt = self.make_opt(simple_space)
        opt.observe(opt.suggest(1)[0], 1.0, cost=3.0)
        opt.observe(opt.suggest(1)[0], 1.0, cost=4.0)
        assert opt.history.total_cost() == 7.0

    def test_to_arrays(self, simple_space):
        opt = self.make_opt(simple_space)
        for v in (1.0, 2.0):
            opt.observe(opt.suggest(1)[0], v)
        X, y = opt.history.to_arrays(simple_space)
        assert X.shape == (2, simple_space.n_dims)
        assert list(y) == [1.0, 2.0]

    def test_to_arrays_empty(self, simple_space):
        opt = self.make_opt(simple_space)
        X, y = opt.history.to_arrays(simple_space)
        assert X.shape == (0, simple_space.n_dims) and len(y) == 0


class TestObserve:
    def test_scalar_metrics_named_after_objective(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, Objective("latency"), seed=0)
        trial = opt.observe(opt.suggest(1)[0], 3.0)
        assert trial.metrics == {"latency": 3.0}

    def test_mapping_metrics_kept(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, Objective("latency"), seed=0)
        trial = opt.observe(opt.suggest(1)[0], {"latency": 3.0, "cpu": 0.5})
        assert trial.metric("cpu") == 0.5

    def test_missing_objective_metric_rejected(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, Objective("latency"), seed=0)
        with pytest.raises(OptimizerError):
            opt.observe(opt.suggest(1)[0], {"other": 1.0})

    def test_trial_ids_increment(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, seed=0)
        t0 = opt.observe(opt.suggest(1)[0], 1.0)
        t1 = opt.observe(opt.suggest(1)[0], 1.0)
        assert (t0.trial_id, t1.trial_id) == (0, 1)

    def test_suggest_n_validates(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, seed=0)
        with pytest.raises(OptimizerError):
            opt.suggest(0)

    def test_context_recorded(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, seed=0)
        trial = opt.observe(opt.suggest(1)[0], 1.0, context={"workload": "ycsb-a"})
        assert trial.context["workload"] == "ycsb-a"


class TestFailureImputation:
    def test_crash_imputes_worse_than_worst(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, Objective("latency"), seed=0)
        opt.observe(opt.suggest(1)[0], 10.0)
        opt.observe(opt.suggest(1)[0], 50.0)
        failed = opt.observe_failure(opt.suggest(1)[0])
        assert failed.status is TrialStatus.FAILED
        assert failed.metric("latency") > 50.0 * 1.9  # ~2x worst

    def test_crash_imputation_maximize(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, Objective("tput", minimize=False), seed=0)
        opt.observe(opt.suggest(1)[0], 100.0)
        failed = opt.observe_failure(opt.suggest(1)[0])
        # Imputed throughput must be far below anything observed.
        assert failed.metric("tput") < 100.0

    def test_crash_with_no_history_uses_sentinel(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, Objective("latency"), seed=0)
        failed = opt.observe_failure(opt.suggest(1)[0])
        assert failed.metric("latency") >= 1e9

    def test_failed_not_in_completed(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, seed=0)
        opt.observe_failure(opt.suggest(1)[0])
        assert len(opt.history.completed()) == 0
        assert len(opt.history.failed()) == 1

    def test_best_ignores_failures(self, simple_space):
        opt = RandomSearchOptimizer(simple_space, Objective("latency"), seed=0)
        opt.observe(opt.suggest(1)[0], 10.0)
        opt.observe_failure(opt.suggest(1)[0])
        assert opt.history.best_value() == 10.0


class TestWarmStart:
    def test_transfers_trials(self, simple_space):
        src = RandomSearchOptimizer(simple_space, Objective("m"), seed=0)
        for v in (3.0, 1.0, 2.0):
            src.observe(src.suggest(1)[0], v)
        dst = RandomSearchOptimizer(simple_space, Objective("m"), seed=1)
        assert dst.warm_start(src.history.trials) == 3
        assert dst.history.best_value() == 1.0

    def test_transfers_across_subspace(self, simple_space):
        src = RandomSearchOptimizer(simple_space, Objective("m"), seed=0)
        src.observe(src.suggest(1)[0], 1.0)
        sub = simple_space.subspace(["x", "y"])
        dst = RandomSearchOptimizer(sub, Objective("m"), seed=1)
        assert dst.warm_start(src.history.trials) == 1


class TestMultiObjectiveGuard:
    def test_single_objective_optimizer_rejects_two(self, simple_space):
        with pytest.raises(OptimizerError):
            RandomSearchOptimizer(
                simple_space, [Objective("a"), Objective("b")], seed=0
            )
